"""Command-line entry point of the invariant linter.

Usage::

    PYTHONPATH=src python -m repro.devtools.lint [paths...] [options]

With no paths, lints ``src tests benchmarks examples`` (resolved against
the current directory — run from the checkout root, as CI does).

Exit-code contract (what the CI step keys off):

* ``0`` — no active violations (suppressed findings do not fail);
* ``1`` — at least one active violation (including RPR000 hygiene
  findings such as malformed suppressions or syntax errors);
* ``2`` — usage error: unknown rule id in ``--select``/``--ignore``,
  or a path that does not exist.

``--graph`` adds the whole-program pass (RPR006-RPR009): the scanned
``src/repro`` files are joined into one import/call graph, the
worker-reachable set is computed, and the cross-module rules run over
it.  ``--graph-json FILE`` (implies ``--graph``) dumps the import
graph, call graph, import cycles and worker-reachable set as a
deterministic artifact for CI diffing.

The ``--json`` report is deterministic (no timestamps, sorted
violations) so two runs on the same tree are byte-identical — except
the ``profile.rule_seconds`` wall times, which exist precisely to show
where analysis time goes.  The CI artifact still diffs cleanly on
everything that matters.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.devtools.core import META_RULE, LintReport, run_lint
from repro.devtools.rules import all_graph_rules, all_rules

#: What a bare ``python -m repro.devtools.lint`` lints.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based linter for the repo's architecture "
                    "invariants (RPR001-RPR005 per file, RPR006-RPR009 "
                    "whole-program with --graph).",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: %(default)s)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--json", metavar="FILE", dest="json_path",
        help="also write the machine-readable report to FILE "
             "('-' for stdout)",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="also run the whole-program rules (RPR006-RPR009) over "
             "the project import/call graph",
    )
    parser.add_argument(
        "--graph-json", metavar="FILE", dest="graph_json_path",
        help="write the import graph, call graph and worker-reachable "
             "set to FILE ('-' for stdout); implies --graph",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="print suppressed findings (with their justifications) too",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the summary line",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _split_rules(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [rule.strip() for rule in raw.split(",") if rule.strip()]


def list_rules() -> str:
    lines = [f"{META_RULE}  linter hygiene: syntax errors, malformed or "
             f"unjustified suppressions (always on, never suppressable)"]
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.description}")
    for rule in all_graph_rules():
        lines.append(f"{rule.rule_id}  [--graph] {rule.description}")
    return "\n".join(lines)


def render(report: LintReport, *, show_suppressed: bool = False,
           quiet: bool = False) -> str:
    """The human-readable report body."""
    lines: list[str] = []
    if not quiet:
        for violation in report.violations:
            if violation.suppressed and not show_suppressed:
                continue
            lines.append(violation.format())
    active = len(report.active)
    lines.append(
        f"repro-lint: {report.files_scanned} files scanned, "
        f"{active} violation{'s' if active != 1 else ''} "
        f"({len(report.suppressed)} suppressed)"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    graph = bool(args.graph or args.graph_json_path)
    try:
        report = run_lint(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            graph=graph,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    print(render(report, show_suppressed=args.show_suppressed,
                 quiet=args.quiet))
    if args.json_path:
        payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if args.graph_json_path and report.graph is not None:
        payload = json.dumps(report.graph.to_json(), indent=2,
                             sort_keys=True)
        if args.graph_json_path == "-":
            print(payload)
        else:
            with open(args.graph_json_path, "w",
                      encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
