"""Whole-program analysis: import graph, call graph, worker-reachable set.

The PR-6 rule engine is strictly per-file; the invariants that gate the
upcoming distributed ``RemoteBackend`` are *cross-module* properties:
which code is reachable on the worker side of ``Backend.submit``,
whether everything crossing that boundary is serializable, and whether
worker-reachable code writes shared module state.  This module parses
nothing new — it consumes the same :class:`~repro.devtools.core.FileContext`
objects the per-file rules already run on — and builds three structures
over every scanned file that maps into the ``repro`` package:

* the **project import graph**: module → the ``repro.*`` modules it
  imports, with module-level imports separated from function-level ones
  (only the former participate in cycle detection, because a
  function-scoped import is the sanctioned cycle-breaking idiom);
* an **intra-project call graph**: alias-resolved where the receiver is
  static (imported names, module attributes, ``ClassName.method``,
  locals assigned from a project-class constructor, ``self``), and
  *conservative on dynamic dispatch* — a call on a receiver whose type
  cannot be inferred edges to every project **method** with that name,
  so reachability over-approximates rather than misses.  Functions
  passed as arguments (``pool.submit(_execute_chunk, ...)``,
  ``loop.run_in_executor(pool, execute_spec, ...)``) also produce
  edges, which is exactly how ``execute_spec`` becomes reachable from
  every backend's ``submit``;
* the **worker-reachable set**: every function transitively reachable
  from the backend task entry points in :data:`WORKER_ROOTS` — the code
  that today runs in forked pool workers and tomorrow runs on N remote
  machines.  RPR007/RPR008 key off this set.

Scoping runs on ``FileContext.rel`` (the ``treat-as``-overridable path),
so the self-test corpus can impersonate any module — including
``repro.exec.backends`` itself — without living in ``src/``.

Nodes are identified as ``<module>.<qualname>`` strings, e.g.
``repro.exec.backends.ProcessPoolBackend.submit``.  Nested functions
and lambdas are merged into their enclosing function (their calls may
happen whenever the encloser runs — conservative and cheap); calls at
module level belong to the pseudo-node ``<module>.<module>`` (import
time), which is deliberately *not* a worker root: import-time execution
in a re-importing worker is the sanctioned registration channel.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.devtools.core import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    import_aliases,
)

#: Pseudo-qualname for a module's import-time (top-level) code.
MODULE_BODY = "<module>"

#: Backend task entry points: what a pool worker (or, structurally, a
#: remote worker) actually executes.  ``execute_spec`` / ``_execute_chunk``
#: are the functions handed to executors; the three ``submit`` methods
#: are the boundary itself, so anything they call in-process before the
#: hand-off (serial fallbacks, chunk planning) counts as worker-side
#: too — the conservative choice for a set used to *forbid* hazards.
WORKER_ROOTS: tuple[tuple[str, str], ...] = (
    ("repro.exec.backends", "execute_spec"),
    ("repro.exec.backends", "_execute_chunk"),
    ("repro.exec.backends", "SerialBackend.submit"),
    ("repro.exec.backends", "ProcessPoolBackend.submit"),
    ("repro.exec.backends", "AsyncLocalBackend.submit"),
)


def module_name_for(rel: str) -> str | None:
    """The dotted module a project-relative path maps to, or ``None``.

    Only ``src/**.py`` files are project modules; ``__init__.py`` maps
    to its package.  Works on the *scoping* path, so a corpus file with
    ``treat-as=src/repro/exec/backends.py`` becomes that module.
    """
    if not rel.startswith("src/") or not rel.endswith(".py"):
        return None
    parts = rel[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or parts[0] != "repro":
        return None
    return ".".join(parts)


def package_of(module: str) -> str:
    """Top-level subpackage of a module (``""`` for ``repro`` itself)."""
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


@dataclass
class FunctionInfo:
    """One call-graph node: a function, method, or module body."""

    module: str
    qualname: str
    node: ast.AST
    class_name: str | None = None
    lineno: int = 1

    @property
    def id(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """A module-level class and its directly defined methods."""

    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ImportEdge:
    """One ``repro.*`` import statement, resolved to its target module.

    For ``from X import a, b`` the imported names are kept: when
    ``X.a`` is itself a scanned module the edge really targets that
    submodule, not the package ``__init__`` — collapsing it onto the
    package would fabricate an import cycle out of the standard
    ``from package import submodule`` idiom.
    """

    node: ast.stmt
    target: str
    top_level: bool
    names: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Everything the graph pass knows about one project module."""

    name: str
    ctx: FileContext
    package: str
    imports: list[ImportEdge] = field(default_factory=list)
    #: local name -> ("module", mod) | ("symbol", mod, sym)
    symbols: dict[str, tuple] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level assignments: name -> value expression (last wins)
    module_globals: dict[str, ast.expr] = field(default_factory=dict)


def _collect_imports(module: ModuleInfo) -> None:
    """Populate ``imports`` (all repro.* targets) and ``symbols``."""
    tree = module.ctx.tree
    # imports inside function bodies are the sanctioned cycle-breaking
    # idiom: they stay out of the cycle check but still count for
    # layering, so edges record whether they were module level
    in_function: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    in_function.add(id(inner))

    for node in ast.walk(tree):
        top = id(node) not in in_function
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    module.imports.append(
                        ImportEdge(node=node, target=alias.name,
                                   top_level=top)
                    )
                    local = alias.asname or alias.name.split(".", 1)[0]
                    if alias.asname:
                        module.symbols[local] = ("module", alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = module.name.split(".")
                # `from . import x` in a plain module resolves against
                # its package; __init__ modules resolve against themselves
                if not module.ctx.rel.endswith("/__init__.py"):
                    base = base[:-1]
                base = base[:len(base) - (node.level - 1)]
                source = ".".join(base + (node.module or "").split("."))
                source = source.rstrip(".")
            else:
                source = node.module or ""
            if not (source == "repro" or source.startswith("repro.")):
                continue
            names = tuple(
                alias.name for alias in node.names if alias.name != "*"
            )
            module.imports.append(
                ImportEdge(node=node, target=source, top_level=top,
                           names=names)
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.symbols[local] = ("symbol", source, alias.name)


def _collect_definitions(module: ModuleInfo) -> None:
    """Populate functions/classes/module_globals from the module body."""
    tree = module.ctx.tree
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = FunctionInfo(
                module=module.name, qualname=stmt.name, node=stmt,
                lineno=stmt.lineno,
            )
        elif isinstance(stmt, ast.ClassDef):
            info = ClassInfo(name=stmt.name, node=stmt)
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    fn = FunctionInfo(
                        module=module.name,
                        qualname=f"{stmt.name}.{member.name}",
                        node=member, class_name=stmt.name,
                        lineno=member.lineno,
                    )
                    info.methods[member.name] = fn
                    module.functions[fn.qualname] = fn
            module.classes[stmt.name] = info
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module.module_globals[target.id] = stmt.value
        elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
              and isinstance(stmt.target, ast.Name)):
            module.module_globals[stmt.target.id] = stmt.value
    # the import-time pseudo-function: module-level statements outside
    # any def (class bodies included — default expressions run at import)
    module.functions[MODULE_BODY] = FunctionInfo(
        module=module.name, qualname=MODULE_BODY, node=tree, lineno=1,
    )


def _function_body_nodes(fn: FunctionInfo) -> Iterable[ast.AST]:
    """AST nodes attributed to *fn* (nested defs merged, methods split).

    For the ``<module>`` pseudo-function this yields everything outside
    function bodies; for a real function it yields its whole subtree
    (nested functions and lambdas execute, at the latest, under it).
    """
    if fn.qualname == MODULE_BODY:
        skip: set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                for inner in ast.walk(node):
                    if inner is not node:
                        skip.add(id(inner))
        for node in ast.walk(fn.node):
            if id(node) not in skip:
                yield node
    else:
        yield from ast.walk(fn.node)


class ProjectGraph:
    """The whole-program view the RPR006–RPR009 rules analyse."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: module -> sorted tuple of *scanned* modules it imports
        self.import_edges: dict[str, tuple[str, ...]] = {}
        #: same, restricted to module-level imports (cycle detection)
        self.top_level_import_edges: dict[str, tuple[str, ...]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.call_edges: dict[str, tuple[str, ...]] = {}
        self._method_index: dict[str, tuple[str, ...]] = {}
        self._build()
        self.worker_roots: tuple[str, ...] = tuple(
            f"{mod}.{qual}" for mod, qual in WORKER_ROOTS
            if f"{mod}.{qual}" in self.functions
        )
        self.worker_reachable: frozenset[str] = self.reachable_from(
            self.worker_roots
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for module in self.modules.values():
            for fn in module.functions.values():
                self.functions[fn.id] = fn
        index: dict[str, list[str]] = {}
        for fn in self.functions.values():
            if fn.class_name is not None:
                index.setdefault(fn.name, []).append(fn.id)
        self._method_index = {
            name: tuple(sorted(ids)) for name, ids in index.items()
        }
        for name, module in self.modules.items():
            targets: set[str] = set()
            top: set[str] = set()
            for edge in module.imports:
                resolved = self._edge_targets(edge)
                targets |= resolved
                if edge.top_level:
                    top |= resolved
            self.import_edges[name] = tuple(sorted(
                t for t in targets if t != name
            ))
            self.top_level_import_edges[name] = tuple(sorted(
                t for t in top if t != name
            ))
        for module in self.modules.values():
            aliases = import_aliases(module.ctx.tree)
            for fn in module.functions.values():
                callees: set[str] = set()
                local_types = self._local_constructor_types(module, fn)
                for node in _function_body_nodes(fn):
                    if isinstance(node, ast.Call):
                        callees |= self._callee_ids(
                            module, fn, node, local_types, aliases
                        )
                callees.discard(fn.id)
                self.call_edges[fn.id] = tuple(sorted(callees))

    def _edge_targets(self, edge: ImportEdge) -> set[str]:
        """The scanned modules one import edge really lands on.

        ``from repro.analysis import experiments`` targets the
        submodule ``repro.analysis.experiments``; the package
        ``__init__`` is only a target when at least one imported name
        is a genuine symbol of it (or for a plain ``import package``).
        """
        resolved: set[str] = set()
        if edge.names:
            package_symbols = False
            for imported in edge.names:
                submodule = f"{edge.target}.{imported}"
                if submodule in self.modules:
                    resolved.add(submodule)
                else:
                    package_symbols = True
            if not package_symbols:
                return resolved
        scanned = self._scanned_target(edge.target)
        if scanned is not None:
            resolved.add(scanned)
        return resolved

    def _scanned_target(self, target: str) -> str | None:
        """Map an import target onto a scanned module (prefix-tolerant).

        ``from repro.exec import backends`` records target
        ``repro.exec``; if only ``repro.exec.backends`` was scanned the
        edge still lands there via the symbols table, so here the plain
        module (or its scanned ancestor package) is enough.
        """
        probe = target
        while probe:
            if probe in self.modules:
                return probe
            probe = probe.rpartition(".")[0]
        return None

    def _resolve_symbol(self, module: ModuleInfo, name: str,
                        _visited: frozenset = frozenset()) -> tuple | None:
        """What local *name* refers to, following re-export chains.

        Returns ``("function", FunctionInfo)``, ``("class", ModuleInfo,
        ClassInfo)``, ``("module", ModuleInfo)`` or ``None``.
        """
        key = (module.name, name)
        if key in _visited:
            return None
        _visited = _visited | {key}
        if name in module.classes:
            return ("class", module, module.classes[name])
        fn = module.functions.get(name)
        if fn is not None and name != MODULE_BODY:
            return ("function", fn)
        binding = module.symbols.get(name)
        if binding is None:
            return None
        if binding[0] == "module":
            target = self.modules.get(binding[1])
            return ("module", target) if target is not None else None
        _, source, symbol = binding
        submodule = self.modules.get(f"{source}.{symbol}")
        if submodule is not None:
            return ("module", submodule)
        origin = self.modules.get(source)
        if origin is None:
            return None
        return self._resolve_symbol(origin, symbol, _visited)

    def _annotated_class(self, module: ModuleInfo,
                         annotation: ast.expr | None) -> tuple | None:
        """The project class an annotation names, unwrapping Optional.

        Handles ``DeviceSpec``, ``arch.DeviceSpec``, ``"DeviceSpec"``
        (string annotation) and the optional forms ``X | None`` /
        ``Optional[X]``.
        """
        if annotation is None:
            return None
        if (isinstance(annotation, ast.Constant)
                and isinstance(annotation.value, str)):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if (isinstance(annotation, ast.BinOp)
                and isinstance(annotation.op, ast.BitOr)):
            for side in (annotation.left, annotation.right):
                resolved = self._annotated_class(module, side)
                if resolved is not None:
                    return resolved
            return None
        if (isinstance(annotation, ast.Subscript)
                and dotted_name(annotation.value) in ("Optional",
                                                      "typing.Optional")):
            return self._annotated_class(module, annotation.slice)
        name = dotted_name(annotation)
        if name is None:
            return None
        resolved = self._resolve_dotted_symbol(module, name)
        if resolved is not None and resolved[0] == "class":
            return resolved
        return None

    def _local_constructor_types(
        self, module: ModuleInfo, fn: FunctionInfo,
    ) -> dict[str, tuple[ModuleInfo, ClassInfo]]:
        """Statically typed locals, by name: parameters whose annotation
        names a project class, plus locals assigned from a project-class
        constructor."""
        types: dict[str, tuple[ModuleInfo, ClassInfo]] = {}
        for node in _function_body_nodes(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (*args.posonlyargs, *args.args,
                            *args.kwonlyargs):
                    resolved = self._annotated_class(module,
                                                     arg.annotation)
                    if resolved is not None:
                        types[arg.arg] = (resolved[1], resolved[2])
                continue
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
                target, value = node.target, node.value
            if not isinstance(target, ast.Name):
                continue
            if (isinstance(node, ast.AnnAssign)
                    and node.annotation is not None):
                resolved = self._annotated_class(module, node.annotation)
                if resolved is not None:
                    types[target.id] = (resolved[1], resolved[2])
                    continue
            if not isinstance(value, ast.Call):
                continue
            ctor = dotted_name(value.func)
            if ctor is None:
                continue
            resolved = self._resolve_dotted_symbol(module, ctor)
            if resolved is not None and resolved[0] == "class":
                types[target.id] = (resolved[1], resolved[2])
        return types

    def _resolve_dotted_symbol(self, module: ModuleInfo,
                               dotted: str) -> tuple | None:
        """Resolve ``a.b.c`` through local symbols and module prefixes."""
        if dotted == "repro" or dotted.startswith("repro."):
            probe = dotted
            while probe and probe not in self.modules:
                probe = probe.rpartition(".")[0]
            if probe:
                remainder = dotted[len(probe):].lstrip(".")
                target = self.modules[probe]
                if not remainder:
                    return ("module", target)
                return self._resolve_chain(target, remainder.split("."))
        head, _, tail = dotted.partition(".")
        resolved = self._resolve_symbol(module, head)
        if resolved is None or not tail:
            return resolved
        if resolved[0] == "module":
            return self._resolve_chain(resolved[1], tail.split("."))
        if resolved[0] == "class" and "." not in tail:
            method = resolved[2].methods.get(tail)
            if method is not None:
                return ("function", method)
        return None

    def _resolve_chain(self, module: ModuleInfo,
                       parts: Sequence[str]) -> tuple | None:
        resolved: tuple | None = ("module", module)
        for i, part in enumerate(parts):
            if resolved is None:
                return None
            if resolved[0] == "module":
                resolved = self._resolve_symbol(resolved[1], part)
            elif resolved[0] == "class" and i == len(parts) - 1:
                method = resolved[2].methods.get(part)
                resolved = ("function", method) if method else None
            else:
                return None
        return resolved

    def _callee_ids(self, module: ModuleInfo, fn: FunctionInfo,
                    call: ast.Call,
                    local_types: dict[str, tuple[ModuleInfo, ClassInfo]],
                    aliases: dict[str, str]) -> set[str]:
        targets: set[str] = set()
        func = call.func
        if isinstance(func, ast.Name):
            targets |= self._class_or_function_ids(
                self._resolve_symbol(module, func.id)
            )
        elif isinstance(func, ast.Attribute):
            targets |= self._attribute_call_ids(
                module, fn, func, local_types, aliases
            )
        # higher-order flow: project functions passed as arguments are
        # assumed callable by the callee (pool.submit(execute_spec, ...))
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            name = dotted_name(arg)
            if name is None:
                continue
            resolved = self._resolve_dotted_symbol(module, name)
            if resolved is not None and resolved[0] == "function":
                targets.add(resolved[1].id)
        return targets

    def _attribute_call_ids(
        self, module: ModuleInfo, fn: FunctionInfo, func: ast.Attribute,
        local_types: dict[str, tuple[ModuleInfo, ClassInfo]],
        aliases: dict[str, str],
    ) -> set[str]:
        attr = func.attr
        dotted = dotted_name(func)
        if dotted is None:
            # computed receiver (call result, subscript): conservative
            # name-match over every project method with this name
            return set(self._method_index.get(attr, ()))
        head = dotted.split(".", 1)[0]
        # receiver with a locally inferred constructor type
        if head in local_types and "." not in dotted[len(head) + 1:]:
            _, class_info = local_types[head]
            method = class_info.methods.get(attr)
            if method is not None:
                return {method.id}
            # method not defined on the class (inherited): fall back
            return set(self._method_index.get(attr, ()))
        if head in ("self", "cls") and fn.class_name is not None:
            own = module.classes.get(fn.class_name)
            if own is not None:
                method = own.methods.get(attr)
                if method is not None:
                    return {method.id}
            return set(self._method_index.get(attr, ()))
        resolved = self._resolve_dotted_symbol(module, dotted)
        if resolved is not None:
            return self._class_or_function_ids(resolved)
        alias = aliases.get(head)
        if alias is not None and not (alias == "repro"
                                      or alias.startswith("repro.")):
            # a call into an external module (numpy, json, …): no
            # project edge, and no name-match fallback either
            return set()
        if head in module.symbols or head in module.classes:
            # project symbol whose attribute did not resolve (e.g. a
            # class attribute): nothing callable found statically
            return set()
        # plain dynamic receiver (parameter, local without constructor)
        return set(self._method_index.get(attr, ()))

    def _class_or_function_ids(self, resolved: tuple | None) -> set[str]:
        if resolved is None:
            return set()
        if resolved[0] == "function":
            return {resolved[1].id}
        if resolved[0] == "class":
            _, owner, class_info = resolved
            ids = set()
            for ctor in ("__init__", "__post_init__", "__new__"):
                method = class_info.methods.get(ctor)
                if method is not None:
                    ids.add(method.id)
            return ids
        return set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_from(self, roots: Iterable[str]) -> frozenset[str]:
        """Transitive call-graph closure of *roots* (roots included)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(
                callee for callee in self.call_edges.get(node, ())
                if callee not in seen
            )
        return frozenset(seen)

    def import_cycles(self) -> list[tuple[str, ...]]:
        """Module-level import cycles, as deterministic sorted tuples.

        Tarjan SCCs of size > 1 (plus self-loops) over the *top-level*
        import edges; each cycle is rotated to start at its smallest
        module name and cycles are returned sorted.
        """
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        sccs: list[list[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in self.top_level_import_edges.get(node, ()):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

        for node in sorted(self.modules):
            if node not in index:
                strongconnect(node)

        cycles: list[tuple[str, ...]] = []
        for component in sccs:
            # no self-loop case: a module importing itself is a runtime
            # no-op (already in sys.modules) and the graph drops
            # self-edges at construction time
            if len(component) > 1:
                smallest = min(component)
                pivot = component.index(smallest)
                cycles.append(tuple(component[pivot:] + component[:pivot]))
        return sorted(cycles)

    def module_for(self, function_id: str) -> ModuleInfo | None:
        fn = self.functions.get(function_id)
        return self.modules.get(fn.module) if fn is not None else None

    def to_json(self) -> dict:
        """The deterministic ``--graph-json`` artifact payload."""
        return {
            "version": 1,
            "modules": {
                name: info.ctx.real_rel
                for name, info in sorted(self.modules.items())
            },
            "import_graph": {
                name: list(edges)
                for name, edges in sorted(self.import_edges.items())
            },
            "import_cycles": [list(cycle) for cycle in self.import_cycles()],
            "call_graph": {
                node: list(edges)
                for node, edges in sorted(self.call_edges.items())
                if edges
            },
            "worker_roots": sorted(self.worker_roots),
            "worker_reachable": sorted(self.worker_reachable),
        }


def build_graph(contexts: Iterable[FileContext]) -> ProjectGraph:
    """Build the project graph from already-parsed file contexts.

    Contexts whose scoping path does not map into the ``repro`` package
    (tests, benchmarks, examples without a ``treat-as``) are ignored —
    they are linted per-file but are not project modules.  When two
    contexts map to one module (a corpus file impersonating a real one,
    linted together) the last one wins.
    """
    modules: dict[str, ModuleInfo] = {}
    for ctx in contexts:
        name = module_name_for(ctx.rel)
        if name is None:
            continue
        module = ModuleInfo(name=name, ctx=ctx, package=package_of(name))
        _collect_imports(module)
        _collect_definitions(module)
        modules[name] = module
    return ProjectGraph(modules)


class GraphRule(Rule):
    """Base class for whole-program rules (RPR006–RPR009).

    Instead of per-file :meth:`check`, subclasses implement
    :meth:`check_project` over the full :class:`ProjectGraph`; the
    engine routes each finding through the suppression directives of
    the file it is anchored in, exactly like per-file findings.
    """

    requires_graph = True

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        return ()

    def check_project(self, project: ProjectGraph) -> Iterable[Violation]:
        raise NotImplementedError
