"""Rule engine of the repro invariant linter.

The linter is a small static-analysis framework: every file is parsed
once into an :mod:`ast` tree plus a comment stream, wrapped in a
:class:`FileContext`, and handed to each enabled :class:`Rule`.  Rules
never import or execute the code they inspect — everything is pure AST
and token analysis, so linting a file with missing optional dependencies
(or deliberately broken corpus code) is safe.

Two comment directives drive the engine:

``# repro-lint: disable=RPR001[,RPR002] -- <justification>``
    Suppresses the named rules on that line (or the line directly
    below, for comments placed above a long call).  The justification
    text after ``--`` is **required**: a disable without one is rejected
    — the original violation stays active and the malformed directive
    is reported as :data:`META_RULE`.

``# repro-lint: treat-as=<relative/path.py>``
    Overrides the project-relative path used for rule scoping.  This is
    how the self-test corpus under ``tests/lint_corpus/`` exercises
    path-scoped rules (e.g. a corpus file pretending to live in
    ``src/repro/analysis/``) without actually living there.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

#: Rule id reserved for the linter's own hygiene findings: syntax errors
#: in scanned files, malformed suppressions, unknown rule ids in a
#: ``disable=`` list.  RPR000 findings can never be suppressed.
META_RULE = "RPR000"

#: Comment grammar: ``# repro-lint: disable=RPR001,RPR002 -- why``.
_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_DISABLE_RE = re.compile(
    r"disable=(?P<rules>[A-Z0-9,\s]+?)(?:\s+--\s*(?P<why>.+))?$"
)
_TREAT_AS_RE = re.compile(r"treat-as=(?P<path>\S+)$")

#: Directory names never descended into when expanding directory inputs.
#: ``lint_corpus`` holds deliberately-violating self-test fixtures; they
#: are linted only when named explicitly (as the corpus tests do).
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".venv", "node_modules", "lint_corpus"}
)


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location and a human-readable message."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.suppressed:
            text += f"  [suppressed: {self.justification}]"
        return text

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``disable=`` directive attached to one source line."""

    line: int
    rules: tuple[str, ...]
    justification: str


@dataclass
class FileContext:
    """Everything a rule may inspect about one file.

    ``rel`` is the project-root-relative posix path used for all rule
    scoping decisions; a ``treat-as`` directive replaces it, so corpus
    files can impersonate any location in the tree.  ``real_rel`` always
    keeps the true path for reporting.
    """

    path: Path
    root: Path
    rel: str
    real_rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, list[Suppression]] = field(default_factory=dict)

    def in_dir(self, *prefixes: str) -> bool:
        """True when the scoping path lives under any of *prefixes*."""
        return any(self.rel.startswith(prefix) for prefix in prefixes)

    def is_file(self, *names: str) -> bool:
        """True when the scoping path is exactly one of *names*."""
        return self.rel in names

    def is_test_code(self) -> bool:
        """True for pytest files: ``tests/``, ``test_*.py``, conftest."""
        basename = self.rel.rsplit("/", 1)[-1]
        return (self.rel.startswith("tests/")
                or basename.startswith("test_")
                or basename == "conftest.py")


class Rule:
    """Base class every lint rule derives from.

    Subclasses set :attr:`rule_id` / :attr:`description`, narrow
    :meth:`applies_to` when they are path-scoped, and yield
    :class:`Violation` objects from :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        """A finding anchored at *node* (reported at the real path)."""
        return Violation(
            rule=self.rule_id,
            path=ctx.real_rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# Import-alias resolution shared by the rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they import.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from time
    import time`` yields ``{"time": "time.time"}``.  Relative imports
    are skipped — the rules only canonicalise stdlib / third-party
    call sites.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                canonical = name.name if name.asname else local
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def canonical_call_name(node: ast.Call,
                        aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted name a call resolves to, if static.

    ``np.random.default_rng(7)`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``.  Calls on computed expressions (method
    calls on locals, subscripted lookups) return ``None``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return name
    return f"{resolved}.{tail}" if tail else resolved


# ----------------------------------------------------------------------
# File loading: comments, directives, suppressions
# ----------------------------------------------------------------------
def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(line, text) for every comment; tolerant of tokenize failures."""
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the ast.parse error path reports the file itself
    return comments


def parse_directives(
    source: str, real_rel: str,
) -> tuple[dict[int, list[Suppression]], str | None, list[Violation]]:
    """Extract suppressions and the treat-as override from comments.

    Returns ``(suppressions by line, treat_as path or None, meta
    violations)`` — malformed directives (no justification, unparsable
    body) become unsuppressable :data:`META_RULE` findings.
    """
    suppressions: dict[int, list[Suppression]] = {}
    treat_as: str | None = None
    meta: list[Violation] = []
    if "repro-lint" not in source:
        # fast path: most files carry no directive, and the substring
        # probe is ~100x cheaper than a full tokenize pass
        return suppressions, treat_as, meta
    for line, text in _comment_tokens(source):
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        treat = _TREAT_AS_RE.match(body)
        if treat is not None:
            treat_as = treat.group("path")
            continue
        disable = _DISABLE_RE.match(body)
        if disable is None:
            meta.append(Violation(
                rule=META_RULE, path=real_rel, line=line, col=1,
                message=f"unrecognised repro-lint directive {body!r} "
                        f"(expected 'disable=RULE[,RULE] -- justification' "
                        f"or 'treat-as=path')",
            ))
            continue
        rules = tuple(
            rule.strip() for rule in disable.group("rules").split(",")
            if rule.strip()
        )
        justification = (disable.group("why") or "").strip()
        if META_RULE in rules:
            meta.append(Violation(
                rule=META_RULE, path=real_rel, line=line, col=1,
                message=f"{META_RULE} (linter hygiene) cannot be suppressed",
            ))
            continue
        if not justification:
            meta.append(Violation(
                rule=META_RULE, path=real_rel, line=line, col=1,
                message="suppression needs a justification: "
                        "'# repro-lint: disable="
                        + ",".join(rules) + " -- <why this is safe>'",
            ))
            continue  # rejected: the original violation stays active
        suppressions.setdefault(line, []).append(
            Suppression(line=line, rules=rules, justification=justification)
        )
    return suppressions, treat_as, meta


def load_context(path: Path, root: Path) -> tuple[FileContext | None,
                                                  list[Violation]]:
    """Parse *path* into a :class:`FileContext` (or a syntax finding)."""
    try:
        real_rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        real_rel = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, [Violation(rule=META_RULE, path=real_rel, line=1,
                                col=1, message=f"unreadable file: {exc}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [Violation(rule=META_RULE, path=real_rel,
                                line=exc.lineno or 1, col=1,
                                message=f"syntax error: {exc.msg}")]
    suppressions, treat_as, meta = parse_directives(source, real_rel)
    ctx = FileContext(path=path, root=root, rel=treat_as or real_rel,
                      real_rel=real_rel, source=source, tree=tree,
                      suppressions=suppressions)
    return ctx, meta


def apply_suppressions(ctx: FileContext,
                       violations: Iterable[Violation]) -> list[Violation]:
    """Mark findings covered by a same-line / previous-line disable."""
    out: list[Violation] = []
    for violation in violations:
        matched: Suppression | None = None
        for line in (violation.line, violation.line - 1):
            for suppression in ctx.suppressions.get(line, ()):
                if violation.rule in suppression.rules:
                    matched = suppression
                    break
            if matched is not None:
                break
        if matched is not None:
            violation = Violation(
                rule=violation.rule, path=violation.path,
                line=violation.line, col=violation.col,
                message=violation.message, suppressed=True,
                justification=matched.justification,
            )
        out.append(violation)
    return out


# ----------------------------------------------------------------------
# Running a rule set over a path set
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run: every finding plus scan bookkeeping.

    ``rule_seconds`` is wall time per rule id (plus ``graph_build`` when
    the whole-program pass ran); ``file_counts`` is per-file
    active/suppressed totals.  Both feed the JSON ``profile`` section —
    the report stays byte-deterministic *except* for the timing values.
    ``graph`` holds the :class:`~repro.devtools.graph.ProjectGraph` when
    graph rules ran (for ``--graph-json``); it is not serialized here.
    """

    violations: list[Violation] = field(default_factory=list)
    files_scanned: int = 0
    rules: tuple[str, ...] = ()
    rule_seconds: dict[str, float] = field(default_factory=dict)
    file_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    graph: Any = None

    @property
    def active(self) -> list[Violation]:
        """Findings that actually fail the run (not suppressed)."""
        return [v for v in self.violations if not v.suppressed]

    @property
    def suppressed(self) -> list[Violation]:
        return [v for v in self.violations if v.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_json(self) -> dict:
        return {
            "version": 2,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "active": len(self.active),
            "suppressed": len(self.suppressed),
            "violations": [v.to_json() for v in self.violations],
            "profile": {
                "rule_seconds": {
                    rule: round(seconds, 6)
                    for rule, seconds in sorted(self.rule_seconds.items())
                },
                "files": {
                    path: counts
                    for path, counts in sorted(self.file_counts.items())
                },
            },
        }


def find_project_root(start: Path) -> Path:
    """Walk up from *start* to the checkout root (``src/repro`` marker)."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if ((candidate / "src" / "repro").is_dir()
                or (candidate / ".git").exists()):
            return candidate
    return probe


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand file/directory inputs into the python files to lint.

    Directories are walked recursively, skipping :data:`SKIP_DIR_NAMES`;
    a path given explicitly as a file is always included (that is how
    the self-test corpus gets linted despite living in a skipped
    directory).  Missing paths raise ``FileNotFoundError``.
    """
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in SKIP_DIR_NAMES for part in candidate.parts):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def run_lint(paths: Sequence[str | Path], *,
             rules: Sequence[Rule] | None = None,
             select: Sequence[str] | None = None,
             ignore: Sequence[str] | None = None,
             root: str | Path | None = None,
             graph: bool = False) -> LintReport:
    """Lint *paths* with the given (or registered) rule set.

    ``select`` keeps only the named rule ids, ``ignore`` drops the named
    ones; :data:`META_RULE` hygiene findings are always reported.
    Unknown ids in either list raise ``ValueError`` so a typo in CI
    cannot silently disable a gate.

    ``graph=True`` adds the whole-program rules (RPR006-RPR009): after
    the per-file pass, every scanned file that maps into the ``repro``
    package joins one :class:`~repro.devtools.graph.ProjectGraph` and
    each graph rule runs once over it.  Graph findings route through
    the suppression directives of the file they are anchored in,
    exactly like per-file findings.  Passing graph rules explicitly via
    ``rules`` also enables the pass.
    """
    from repro.devtools.rules import all_graph_rules, all_rules

    if rules is not None:
        chosen = list(rules)
    else:
        chosen = all_rules()
        if graph:
            chosen.extend(all_graph_rules())
    known = {rule.rule_id for rule in chosen} | {META_RULE}
    for requested in (*(select or ()), *(ignore or ())):
        if requested not in known:
            raise ValueError(
                f"unknown rule id {requested!r}; known: "
                + ", ".join(sorted(known))
            )
    if select:
        chosen = [rule for rule in chosen if rule.rule_id in set(select)]
    if ignore:
        chosen = [rule for rule in chosen if rule.rule_id not in set(ignore)]

    per_file_rules = [rule for rule in chosen
                      if not getattr(rule, "requires_graph", False)]
    graph_rules = [rule for rule in chosen
                   if getattr(rule, "requires_graph", False)]

    report = LintReport(rules=tuple(rule.rule_id for rule in chosen))
    timings = {rule.rule_id: 0.0 for rule in chosen}
    files = discover_files(paths)
    anchor = files[0] if files else Path.cwd()
    resolved_root = (Path(root) if root is not None
                     else find_project_root(anchor))
    contexts: dict[str, FileContext] = {}
    for path in files:
        ctx, meta = load_context(path, resolved_root)
        report.violations.extend(meta)  # never suppressable
        if ctx is None:
            continue
        report.files_scanned += 1
        contexts[ctx.real_rel] = ctx
        findings: list[Violation] = []
        for rule in per_file_rules:
            if rule.applies_to(ctx):
                started = time.perf_counter()
                found = list(rule.check(ctx))
                timings[rule.rule_id] += time.perf_counter() - started
                findings.extend(found)
        report.violations.extend(apply_suppressions(ctx, findings))

    if graph_rules:
        from repro.devtools.graph import build_graph

        started = time.perf_counter()
        project = build_graph(contexts.values())
        timings["graph_build"] = time.perf_counter() - started
        report.graph = project
        for rule in graph_rules:
            started = time.perf_counter()
            found = list(rule.check_project(project))
            timings[rule.rule_id] += time.perf_counter() - started
            by_path: dict[str, list[Violation]] = {}
            for violation in found:
                by_path.setdefault(violation.path, []).append(violation)
            for vpath in sorted(by_path):
                anchor_ctx = contexts.get(vpath)
                if anchor_ctx is not None:
                    report.violations.extend(
                        apply_suppressions(anchor_ctx, by_path[vpath])
                    )
                else:
                    report.violations.extend(by_path[vpath])

    report.rule_seconds = timings
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    for violation in report.violations:
        entry = report.file_counts.setdefault(
            violation.path, {"active": 0, "suppressed": 0}
        )
        entry["suppressed" if violation.suppressed else "active"] += 1
    return report
