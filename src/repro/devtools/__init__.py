"""Developer tooling: the invariant linter (``repro-lint``).

``python -m repro.devtools.lint src tests benchmarks examples`` runs an
AST-based static-analysis pass that mechanically enforces the ROADMAP's
architecture invariants — determinism (RPR001), engine routing
(RPR002), cache-key stability (RPR003), import-time scenario
registration (RPR004) and swallowed-exception hygiene (RPR005) — and is
wired into CI as a blocking step.  See the README section "Invariant
linting" for the rule table, the suppression grammar and how to add a
rule.
"""

from __future__ import annotations

from repro.devtools.core import (
    META_RULE,
    FileContext,
    LintReport,
    Rule,
    Suppression,
    Violation,
    run_lint,
)
from repro.devtools.rules import all_rules

__all__ = [
    "META_RULE",
    "FileContext",
    "LintReport",
    "Rule",
    "Suppression",
    "Violation",
    "all_rules",
    "run_lint",
]
