"""RPR001 — determinism: no global RNG state, no wall-clock in results.

The repo's determinism contract (ROADMAP "Architecture invariants")
derives every stochastic draw from an explicit seed — each shot owns a
generator seeded from ``(seed, global shot index)`` — and results must
be bit-identical across any worker/shard/backend split.  Two things
break that silently:

* **global RNG state** — module-function calls on :mod:`random`
  (``random.random()``, ``random.seed()``, …), the legacy
  ``numpy.random.*`` global API, an unseeded ``random.Random()`` /
  ``numpy.random.default_rng()``, or ``random.SystemRandom`` anywhere.
  Seeded constructions (``random.Random(7)``,
  ``np.random.default_rng(seed)``) and passing ``Generator`` objects
  around are the sanctioned pattern and are not flagged.
* **wall-clock reads in result-producing code** — ``time.time()`` /
  ``datetime.now()`` outputs end up inside results and make reruns
  differ byte-for-byte.  Monotonic timing (``time.perf_counter`` /
  ``monotonic``) is fine everywhere: it only ever lands in telemetry
  fields like ``wall_time_s`` that the cache key ignores.  Modules in
  :data:`WALL_CLOCK_ALLOWLIST` (timing/telemetry-only code) are exempt
  from the wall-clock check but still covered by the RNG checks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.core import (
    FileContext,
    Rule,
    Violation,
    canonical_call_name,
    import_aliases,
)

#: Path prefixes whose wall-clock reads are telemetry by design: the
#: linter's own report generation, and the observability plane —
#: ``repro.obs`` trace records need epoch timestamps to be comparable
#: across processes, and by contract never touch spec keys or result
#: bytes (``tests/test_obs.py`` pins traced-vs-untraced bit-identity).
#: Extend the tuple (with a PR-reviewed justification) rather than
#: suppressing inline when a whole module is timing/telemetry code.
WALL_CLOCK_ALLOWLIST: tuple[str, ...] = (
    "src/repro/devtools/",
    "src/repro/obs/",
)

#: Calls that read the wall clock.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Module-level functions of :mod:`random` that mutate/read the hidden
#: global generator.
_RANDOM_GLOBAL = frozenset({
    "random.betavariate", "random.choice", "random.choices",
    "random.expovariate", "random.gammavariate", "random.gauss",
    "random.getrandbits", "random.lognormvariate", "random.normalvariate",
    "random.paretovariate", "random.randbytes", "random.randint",
    "random.random", "random.randrange", "random.sample", "random.seed",
    "random.shuffle", "random.triangular", "random.uniform",
    "random.vonmisesvariate", "random.weibullvariate",
})

#: ``numpy.random`` attributes that are fine to call: explicit-seed
#: generator constructors and bit generators.
_NUMPY_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
})


class DeterminismRule(Rule):
    rule_id = "RPR001"
    description = (
        "no global RNG state (random.* module functions, legacy "
        "numpy.random.*, unseeded Random()/default_rng()) and no "
        "wall-clock reads (time.time, datetime.now) outside "
        "timing/telemetry allowlisted modules"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        aliases = import_aliases(ctx.tree)
        wall_clock_ok = ctx.in_dir(*WALL_CLOCK_ALLOWLIST)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node, aliases)
            if name is None:
                continue
            if name in _WALL_CLOCK and not wall_clock_ok:
                yield self.violation(
                    ctx, node,
                    f"wall-clock read {name}() in result-producing code "
                    f"breaks rerun bit-identity; use time.perf_counter() "
                    f"for durations, or add the module to the "
                    f"determinism WALL_CLOCK_ALLOWLIST if it is "
                    f"telemetry-only",
                )
            elif name in _RANDOM_GLOBAL:
                yield self.violation(
                    ctx, node,
                    f"{name}() uses the hidden module-global generator; "
                    f"derive an explicit random.Random(seed) (the "
                    f"(seed, shot index) contract) instead",
                )
            elif name == "random.SystemRandom":
                yield self.violation(
                    ctx, node,
                    "random.SystemRandom is OS-entropy-backed and can "
                    "never replay; use a seeded random.Random",
                )
            elif name == "random.Random" and not (node.args or node.keywords):
                yield self.violation(
                    ctx, node,
                    "unseeded random.Random() seeds from OS entropy; "
                    "pass an explicit seed",
                )
            elif name.startswith("numpy.random."):
                attr = name.rsplit(".", 1)[1]
                if attr == "default_rng":
                    if not (node.args or node.keywords):
                        yield self.violation(
                            ctx, node,
                            "unseeded numpy.random.default_rng() seeds "
                            "from OS entropy; pass an explicit seed "
                            "(e.g. default_rng((seed, shot_index)))",
                        )
                elif attr not in _NUMPY_OK:
                    yield self.violation(
                        ctx, node,
                        f"legacy global-state numpy.random.{attr}() "
                        f"call; draw from an explicit "
                        f"numpy.random.Generator instead",
                    )
