"""The repo's invariant rule set, RPR001-RPR009.

Each rule lives in its own module and pins one ROADMAP architecture
invariant; :func:`all_rules` builds a fresh instance list in id order.
RPR001-RPR005 are per-file; RPR006-RPR009 are whole-program rules over
the :mod:`repro.devtools.graph` project graph and come from
:func:`all_graph_rules` (enabled by ``run_lint(..., graph=True)`` /
``lint --graph``).  Adding a rule = a new module with a
:class:`~repro.devtools.core.Rule` subclass, an entry here,
positive/negative corpus files under ``tests/lint_corpus/``, and a row
in the README rule table.
"""

from __future__ import annotations

from repro.devtools.core import Rule
from repro.devtools.rules.determinism import DeterminismRule
from repro.devtools.rules.engine_routing import EngineRoutingRule
from repro.devtools.rules.exceptions import SwallowedExceptionRule
from repro.devtools.rules.layering import LayeringRule
from repro.devtools.rules.scenarios import ScenarioRegistrationRule
from repro.devtools.rules.seed_dataflow import SeedDataflowRule
from repro.devtools.rules.shared_state import SharedStateRule
from repro.devtools.rules.spec_keys import SpecKeyStabilityRule
from repro.devtools.rules.worker_boundary import WorkerBoundaryRule

__all__ = [
    "DeterminismRule",
    "EngineRoutingRule",
    "LayeringRule",
    "ScenarioRegistrationRule",
    "SeedDataflowRule",
    "SharedStateRule",
    "SpecKeyStabilityRule",
    "SwallowedExceptionRule",
    "WorkerBoundaryRule",
    "all_graph_rules",
    "all_rules",
]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    DeterminismRule,
    EngineRoutingRule,
    SpecKeyStabilityRule,
    ScenarioRegistrationRule,
    SwallowedExceptionRule,
)

_GRAPH_RULE_CLASSES: tuple[type[Rule], ...] = (
    LayeringRule,
    WorkerBoundaryRule,
    SharedStateRule,
    SeedDataflowRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every per-file rule, in rule-id order."""
    return [rule_class() for rule_class in _RULE_CLASSES]


def all_graph_rules() -> list[Rule]:
    """Fresh instances of the whole-program rules, in rule-id order."""
    return [rule_class() for rule_class in _GRAPH_RULE_CLASSES]
