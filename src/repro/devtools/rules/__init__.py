"""The repo's invariant rule set, RPR001-RPR005.

Each rule lives in its own module and pins one ROADMAP architecture
invariant; :func:`all_rules` builds a fresh instance list in id order.
Adding a rule = a new module with a :class:`~repro.devtools.core.Rule`
subclass, an entry here, positive/negative corpus files under
``tests/lint_corpus/``, and a row in the README rule table.
"""

from __future__ import annotations

from repro.devtools.core import Rule
from repro.devtools.rules.determinism import DeterminismRule
from repro.devtools.rules.engine_routing import EngineRoutingRule
from repro.devtools.rules.exceptions import SwallowedExceptionRule
from repro.devtools.rules.scenarios import ScenarioRegistrationRule
from repro.devtools.rules.spec_keys import SpecKeyStabilityRule

__all__ = [
    "DeterminismRule",
    "EngineRoutingRule",
    "ScenarioRegistrationRule",
    "SpecKeyStabilityRule",
    "SwallowedExceptionRule",
    "all_rules",
]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    DeterminismRule,
    EngineRoutingRule,
    SpecKeyStabilityRule,
    ScenarioRegistrationRule,
    SwallowedExceptionRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in rule-id order."""
    return [rule_class() for rule_class in _RULE_CLASSES]
