"""RPR003 — cache-key stability: JobSpec drift must update the fixture.

Cache keys are load-bearing (ROADMAP "Architecture invariants"): a
:func:`~repro.exec.jobs.spec_key` computed today must equal the key of
the same logical job computed by any past or future checkout, or every
on-disk :class:`~repro.exec.cache.ResultCache` and durable
:class:`~repro.exec.store.RunStore` silently invalidates — and, worse, a
*colliding* change can serve stale results as cache hits.

The contract is pinned twice from one golden fixture,
``tests/fixtures/spec_keys.json``:

* ``tests/test_spec_keys.py`` recomputes representative spec keys at
  runtime and asserts byte-identity against the fixture;
* this rule cross-checks the ``JobSpec`` dataclass **AST** (field names,
  annotations and default expressions, in order) against the fixture's
  ``jobspec_fields`` snapshot — so the PR diff that edits the dataclass
  fails lint *until the same PR regenerates the fixture* (``python
  tests/test_spec_keys.py --update``) and the author has consciously
  reviewed key compatibility / bumped the cache version.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable

from repro.devtools.core import FileContext, Rule, Violation

#: Fixture location, relative to the project root.
FIXTURE_REL_PATH = "tests/fixtures/spec_keys.json"

#: How to regenerate, quoted in every finding.
UPDATE_HINT = (
    "regenerate with 'PYTHONPATH=src python tests/test_spec_keys.py "
    "--update', review whether existing cache keys survive, and bump "
    "the cache version if result semantics changed"
)


def extract_dataclass_fields(tree: ast.Module,
                             class_name: str) -> list[dict] | None:
    """``[{name, annotation, default}]`` for *class_name*'s AST fields.

    Shared by the rule and the fixture generator so both sides of the
    comparison come from one extraction.  Returns ``None`` when the
    class is absent.  Only annotated assignments count — that is the
    dataclass field contract; ``ClassVar`` docstrings and methods are
    ignored.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: list[dict] = []
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    fields.append({
                        "name": stmt.target.id,
                        "annotation": ast.unparse(stmt.annotation),
                        "default": (ast.unparse(stmt.value)
                                    if stmt.value is not None else None),
                    })
            return fields
    return None


class SpecKeyStabilityRule(Rule):
    rule_id = "RPR003"
    description = (
        "the JobSpec dataclass (fields, annotations, defaults) must "
        "match the committed golden fixture "
        "tests/fixtures/spec_keys.json — editing one without "
        "regenerating the other is cache-key drift"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.rel == "src/repro/exec/jobs.py"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        fields = extract_dataclass_fields(ctx.tree, "JobSpec")
        anchor = ctx.tree.body[0] if ctx.tree.body else ctx.tree
        if fields is None:
            yield self.violation(
                ctx, anchor,
                "expected the JobSpec dataclass in this module (the "
                "cache-key contract is pinned to it); if it moved, "
                "update the spec-key lint rule and fixture together",
            )
            return
        fixture_path = Path(ctx.root) / FIXTURE_REL_PATH
        try:
            recorded = json.loads(fixture_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            yield self.violation(
                ctx, anchor,
                f"golden spec-key fixture {FIXTURE_REL_PATH} is missing; "
                f"{UPDATE_HINT}",
            )
            return
        except (OSError, json.JSONDecodeError) as exc:
            yield self.violation(
                ctx, anchor,
                f"golden spec-key fixture {FIXTURE_REL_PATH} is "
                f"unreadable ({exc}); {UPDATE_HINT}",
            )
            return
        expected = recorded.get("jobspec_fields")
        if expected is None:
            yield self.violation(
                ctx, anchor,
                f"{FIXTURE_REL_PATH} lacks the 'jobspec_fields' "
                f"snapshot; {UPDATE_HINT}",
            )
            return
        if fields != expected:
            drift = _describe_drift(expected, fields)
            yield self.violation(
                ctx, anchor,
                f"JobSpec drifted from the golden fixture ({drift}); "
                f"any field/default change moves cache keys — "
                f"{UPDATE_HINT}",
            )


def _describe_drift(expected: list[dict], actual: list[dict]) -> str:
    """A compact human-readable diff of the two field snapshots."""
    expected_by_name = {f["name"]: f for f in expected}
    actual_by_name = {f["name"]: f for f in actual}
    parts: list[str] = []
    for name in actual_by_name.keys() - expected_by_name.keys():
        parts.append(f"added field {name!r}")
    for name in expected_by_name.keys() - actual_by_name.keys():
        parts.append(f"removed field {name!r}")
    for name, field in actual_by_name.items():
        recorded = expected_by_name.get(name)
        if recorded is not None and recorded != field:
            parts.append(f"changed field {name!r}")
    if not parts:  # same set, different order
        parts.append("field order changed")
    return ", ".join(sorted(parts))
