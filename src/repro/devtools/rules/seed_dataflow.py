"""RPR009 — seed dataflow: RNG seeds must derive from parameters.

RPR001 polices *construction* (no unseeded generators, no global numpy
API); this rule polices the *seed expression itself* in the physics
core — ``sim/`` and ``exec/sampling.py``, the code whose outputs the
paper's figures are built from.  Every argument to a
``default_rng``/``Random``/``RandomState`` constructor there must be
**derived**: its dataflow (intraprocedural, flow-insensitive) must root
in function parameters — ``seed``, ``shot_index``, ``spec.seed``,
``(seed, shot_index)`` tuples, arithmetic thereon — because that is
what makes shot streams reproducible *and* shard-stable: the engine can
re-derive the exact stream for shot *k* on any worker from
``(spec.seed, k)`` alone.

Violations:

* a **constant** seed (``default_rng(1234)``): every call site shares
  one stream, so sharding silently correlates shots;
* any **ambient** leaf (module global, imported symbol, anything not
  rooted in a parameter): the stream depends on process state that a
  remote worker will not share;
* **module-level** RNG construction: the generator's stream position
  becomes import-order state.

Unseeded calls (``default_rng()``) are RPR001's finding, not ours — a
missing seed expression is a determinism bug before it is a dataflow
bug, and one finding per defect keeps suppressions honest.

Names are classified ``derived`` / ``constant`` / ``ambient`` by a
small fixpoint over assignments; ambient dominates derived dominates
constant (flow-insensitive, biased to over-report ambient).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.core import (
    Violation,
    canonical_call_name,
    import_aliases,
)
from repro.devtools.graph import (
    MODULE_BODY,
    FunctionInfo,
    GraphRule,
    ModuleInfo,
    ProjectGraph,
    _function_body_nodes,
)

#: Terminal names of RNG constructors whose seed argument we audit.
RNG_CONSTRUCTORS = frozenset({"default_rng", "Random", "RandomState"})

DERIVED = "derived"
CONSTANT = "constant"
AMBIENT = "ambient"


def _in_scope(module: ModuleInfo) -> bool:
    return (module.ctx.in_dir("src/repro/sim/")
            or module.ctx.is_file("src/repro/exec/sampling.py"))


def _name_leaves(expr: ast.expr) -> Iterator[str]:
    """Root names the value of *expr* depends on.

    An attribute chain contributes its head (``spec.seed`` -> ``spec``);
    a call contributes its arguments but not its (dotted) callee name.
    """
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            if not isinstance(node.func, (ast.Name, ast.Attribute)):
                stack.append(node.func)
            stack.extend(node.args)
            stack.extend(kw.value for kw in node.keywords)
        elif isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            head: ast.expr = node
            while isinstance(head, ast.Attribute):
                head = head.value
            if isinstance(head, ast.Name):
                yield head.id
            else:
                stack.append(head)
        else:
            stack.extend(ast.iter_child_nodes(node))


def _parameters(fn: FunctionInfo) -> set[str]:
    """Parameter names of *fn* and of every function nested in it."""
    params: set[str] = set()
    for node in _function_body_nodes(fn):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            params.add(arg.arg)
        if args.vararg is not None:
            params.add(args.vararg.arg)
        if args.kwarg is not None:
            params.add(args.kwarg.arg)
    return params


class _Dataflow:
    """Flow-insensitive name classification inside one function."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.derived: set[str] = _parameters(fn)
        self.constant: set[str] = set()
        # everything else (module globals, imports, unknowns) is ambient
        assignments: list[tuple[ast.expr, ast.expr]] = []
        for node in _function_body_nodes(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    assignments.append((target, node.value))
            elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
                if node.value is not None:
                    assignments.append((node.target, node.value))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                assignments.append((node.target, node.iter))
        # fixpoint: chained assignments (a = seed; b = a) settle in
        # bounded passes because names only move upward in the lattice
        # constant -> derived (ambient names simply never enter a set)
        for _ in range(len(assignments) + 1):
            changed = False
            for target, value in assignments:
                category = self.classify(value)
                if category == AMBIENT:
                    continue
                dest = (self.derived if category == DERIVED
                        else self.constant)
                for name in self._target_names(target):
                    if name not in dest:
                        dest.add(name)
                        changed = True
            if not changed:
                break
        # a name seen both ways counts as derived (param-rooted on at
        # least one path), never ambient
        self.constant -= self.derived

    @staticmethod
    def _target_names(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from _Dataflow._target_names(element)
        elif isinstance(target, ast.Starred):
            yield from _Dataflow._target_names(target.value)

    def classify(self, expr: ast.expr) -> str:
        leaves = list(_name_leaves(expr))
        if any(leaf not in self.derived and leaf not in self.constant
               for leaf in leaves):
            return AMBIENT
        if any(leaf in self.derived for leaf in leaves):
            return DERIVED
        return CONSTANT


class SeedDataflowRule(GraphRule):
    rule_id = "RPR009"
    description = (
        "seed dataflow: every default_rng/Random seed argument in sim/ "
        "and exec/sampling.py must derive from function parameters "
        "(e.g. (seed, shot_index)), never from constants or ambient "
        "module state"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Violation]:
        for name in sorted(project.modules):
            module = project.modules[name]
            if not _in_scope(module):
                continue
            aliases = import_aliases(module.ctx.tree)
            for qualname in sorted(module.functions):
                fn = module.functions[qualname]
                yield from self._check_function(module, fn, aliases)

    def _check_function(self, module: ModuleInfo, fn: FunctionInfo,
                        aliases: dict[str, str]) -> Iterable[Violation]:
        rng_calls = []
        for node in _function_body_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = canonical_call_name(node, aliases)
            if callee is None:
                continue
            if callee.rsplit(".", 1)[-1] in RNG_CONSTRUCTORS:
                rng_calls.append((node, callee))
        if not rng_calls:
            return
        if fn.qualname == MODULE_BODY:
            for call, callee in rng_calls:
                yield self.violation(
                    module.ctx, call,
                    f"module-level {callee}(...) makes the stream "
                    f"position import-order state; construct "
                    f"generators inside the function that uses them, "
                    f"seeded from its parameters",
                )
            return
        flow = _Dataflow(fn)
        for call, callee in rng_calls:
            seed_args = [*call.args,
                         *(kw.value for kw in call.keywords)]
            if not seed_args:
                continue  # unseeded construction is RPR001's finding
            categories = [flow.classify(arg) for arg in seed_args]
            if AMBIENT in categories:
                yield self.violation(
                    module.ctx, call,
                    f"{callee}(...) in {fn.qualname}() is seeded from "
                    f"ambient state (a module global or import, not a "
                    f"function parameter); a remote worker cannot "
                    f"reproduce this stream — derive the seed from "
                    f"parameters, e.g. (seed, shot_index)",
                )
            elif DERIVED not in categories:
                yield self.violation(
                    module.ctx, call,
                    f"{callee}(...) in {fn.qualname}() uses a "
                    f"constant seed: every call site shares one "
                    f"stream, so sharded shots silently correlate; "
                    f"derive the seed from function parameters, e.g. "
                    f"(seed, shot_index)",
                )
