"""RPR002 — engine routing: drivers lower to JobSpecs, never simulate.

The ROADMAP's first invariant — *extend the engine, not the drivers* —
says every sweep, comparison, figure driver and benchmark lowers its
work to declarative :class:`~repro.exec.jobs.JobSpec` batches run
through :class:`~repro.exec.engine.ExecutionEngine`.  That is what makes
content-hash dedup, the result caches, the durable
:class:`~repro.exec.store.RunStore` and backend-invariant bit-identity
apply uniformly; a driver that calls ``Simulator.run`` /
``run_stochastic`` directly (or spins up its own pool) silently opts out
of all of it.

This rule restricts the driver layers (:data:`RESTRICTED_PREFIXES` /
:data:`RESTRICTED_FILES`) and flags:

* any ``<expr>.run_stochastic(...)`` call — only the engine's
  ``execute_spec`` may sample;
* ``<name>.run(...)`` where ``<name>`` was assigned from a simulator
  constructor in the same file (plus chained
  ``TiltSimulator(...).run(...)``) — heuristic by construction: tracking
  assignments instead of every ``.run`` call keeps ``engine.run`` /
  ``strategy.run`` / ``subprocess.run`` legal;
* imports of ``multiprocessing`` or the ``concurrent.futures``
  executors — parallelism belongs to :mod:`repro.exec.backends`
  (``exec_backend=`` / ``TILT_REPRO_BACKEND``), not ad-hoc pools.

The ``exec`` and ``sim`` packages are the implementation of the engine
contract and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.core import FileContext, Rule, Violation, dotted_name

#: Driver layers that must stay on the engine path.
RESTRICTED_PREFIXES: tuple[str, ...] = (
    "src/repro/analysis/",
    "benchmarks/",
)
RESTRICTED_FILES: tuple[str, ...] = (
    "src/repro/core/sweep.py",
    "src/repro/core/comparison.py",
)

#: The engine implementation itself (and the simulators it drives).
ALLOWLIST_PREFIXES: tuple[str, ...] = (
    "src/repro/exec/",
    "src/repro/sim/",
)

#: Simulator classes whose run()/run_stochastic() only the engine calls.
SIMULATOR_CLASSES = frozenset({
    "TiltSimulator", "QccdSimulator", "IdealSimulator",
    "StatevectorSimulator",
})

_EXECUTOR_NAMES = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})


def _is_simulator_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.rsplit(".", 1)[-1] in SIMULATOR_CLASSES


class EngineRoutingRule(Rule):
    rule_id = "RPR002"
    description = (
        "analysis/, core/sweep.py, core/comparison.py and benchmarks/ "
        "must lower work to JobSpecs through ExecutionEngine — no "
        "direct Simulator.run/run_stochastic, no ad-hoc "
        "multiprocessing/executor pools (exec/ and sim/ exempt)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.in_dir(*ALLOWLIST_PREFIXES):
            return False
        return (ctx.in_dir(*RESTRICTED_PREFIXES)
                or ctx.is_file(*RESTRICTED_FILES))

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        simulator_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and _is_simulator_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        simulator_names.add(target.id)
            elif (isinstance(node, (ast.AnnAssign, ast.NamedExpr))
                  and _is_simulator_ctor(node.value)
                  and isinstance(node.target, ast.Name)):
                simulator_names.add(node.target.id)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, simulator_names)
            elif isinstance(node, ast.Import):
                for name in node.names:
                    module = name.name.split(".", 1)[0]
                    if module == "multiprocessing":
                        yield self.violation(
                            ctx, node,
                            "driver-level multiprocessing import; "
                            "parallelism comes from the engine's "
                            "Backend (exec_backend=/workers=)",
                        )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                module = (node.module or "").split(".", 1)[0]
                imported = {alias.name for alias in node.names}
                if module == "multiprocessing":
                    yield self.violation(
                        ctx, node,
                        "driver-level multiprocessing import; "
                        "parallelism comes from the engine's Backend "
                        "(exec_backend=/workers=)",
                    )
                elif module == "concurrent" and (imported & _EXECUTOR_NAMES):
                    yield self.violation(
                        ctx, node,
                        "driver-level executor import; submit JobSpecs "
                        "with run_jobs(workers=...) instead of owning "
                        "a pool",
                    )

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    simulator_names: set[str]) -> Iterable[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "run_stochastic":
            yield self.violation(
                ctx, node,
                "direct run_stochastic() call in a driver; sampled "
                "runs go through JobSpec(shots=, seed=) + run_jobs / "
                "run_sampled_job so sharding, caching and the "
                "determinism contract apply",
            )
        elif func.attr == "run":
            receiver = func.value
            direct = (isinstance(receiver, ast.Name)
                      and receiver.id in simulator_names)
            if direct or _is_simulator_ctor(receiver):
                yield self.violation(
                    ctx, node,
                    "direct Simulator.run() call in a driver; lower "
                    "the work to a JobSpec and run it through the "
                    "ExecutionEngine (execute_spec for single jobs)",
                )
