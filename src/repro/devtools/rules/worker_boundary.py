"""RPR007 — worker-boundary serialization safety.

Everything crossing ``Backend.submit`` must survive pickling today
(process pool) and JSON/wire serialization tomorrow (``RemoteBackend``).
Three statically checkable hazards:

* **closures over the boundary** — a lambda or locally defined function
  passed to a dispatch call (``pool.submit(...)``,
  ``loop.run_in_executor(...)``, ``Backend.submit``) cannot be pickled
  by the process pool and can never be shipped to a remote worker; task
  functions must be module level (that is why ``execute_spec`` and
  ``_execute_chunk`` live at module scope);
* **non-serializable ``JobSpec`` fields** — every field annotation of a
  spec class (:data:`SPEC_CLASSES`, in ``exec/``) must be built from
  :data:`SERIALIZABLE_ANNOTATIONS`: plain data, or the project
  dataclasses with pinned JSON round trips.  A ``Callable``, file
  object, lock or recorder field would make every spec batch
  unpicklable the day it is populated;
* **ambient handle capture** — worker-reachable code (see
  :data:`~repro.devtools.graph.WORKER_ROOTS`) may not read module-level
  globals holding live OS handles: ``open(...)`` results,
  ``threading.Lock``-family objects, or parent-process
  ``TraceRecorder`` handles (:data:`PARENT_HANDLE_GLOBALS`).  Under
  ``fork`` these are silently shared with the parent (a held lock
  deadlocks, a shared file descriptor interleaves writes); under
  ``spawn``/remote they simply do not exist.  ``repro.obs.trace`` is
  the sanctioned channel implementation (workers write private sidecar
  segments via ``worker_recorder``) and is exempt as a module.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.core import Violation, dotted_name
from repro.devtools.graph import (
    MODULE_BODY,
    GraphRule,
    ModuleInfo,
    ProjectGraph,
    _function_body_nodes,
)

#: Call attributes that hand work (and therefore arguments) to another
#: process/thread/machine.
BOUNDARY_CALL_ATTRS = frozenset({"submit", "run_in_executor"})

#: Spec classes whose fields cross the worker boundary by value.
SPEC_CLASSES = frozenset({"JobSpec"})

#: Annotation atoms a spec field may be built from: plain data, and the
#: project dataclasses whose JSON round trip is pinned by tests.
SERIALIZABLE_ANNOTATIONS = frozenset({
    "None", "bool", "int", "float", "str", "bytes",
    "tuple", "list", "dict", "set", "frozenset",
    "Optional", "Union", "Literal", "Final",
    "Circuit", "DeviceSpec", "CompilerConfig", "NoiseParameters",
})

#: Constructors whose module-level results are live per-process handles.
HANDLE_CONSTRUCTORS = frozenset({
    "open", "Lock", "RLock", "Condition", "Semaphore",
    "BoundedSemaphore", "Event", "Barrier", "TraceRecorder",
})

#: (module, global name) pairs that hold *parent-process* trace handles;
#: worker-reachable code outside the sanctioned channel module must not
#: touch them.
PARENT_HANDLE_GLOBALS = frozenset({
    ("repro.obs.trace", "_ACTIVE"),
    ("repro.obs.trace", "_RECORDERS"),
})

#: The sidecar-channel implementation itself: allowed to manage the
#: handles it exists to isolate (``worker_recorder`` activates a private
#: per-process segment writer precisely so nothing else ever has to).
SANCTIONED_CHANNEL_MODULES = frozenset({"repro.obs.trace"})


def _annotation_atoms(node: ast.expr) -> Iterable[str]:
    """Leaf type names mentioned by an annotation expression."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Constant):
        if node.value is None:
            yield "None"
        elif isinstance(node.value, str):
            # string annotation: parse and recurse
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                yield node.value
            else:
                yield from _annotation_atoms(parsed.body)
        elif node.value is Ellipsis:
            pass
        else:
            yield repr(node.value)
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _annotation_atoms(node.left)
        yield from _annotation_atoms(node.right)
    elif isinstance(node, ast.Subscript):
        yield from _annotation_atoms(node.value)
        yield from _annotation_atoms(node.slice)
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _annotation_atoms(element)
    elif isinstance(node, ast.Index):  # pragma: no cover - py<3.9 AST
        yield from _annotation_atoms(node.value)
    else:
        yield ast.dump(node)


def _handle_globals(module: ModuleInfo) -> dict[str, str]:
    """Module-level names bound to live handles, with the ctor name."""
    handles: dict[str, str] = {}
    for name, value in module.module_globals.items():
        if not isinstance(value, ast.Call):
            continue
        ctor = dotted_name(value.func)
        if ctor is not None and ctor.rsplit(".", 1)[-1] in \
                HANDLE_CONSTRUCTORS:
            handles[name] = ctor
    return handles


class WorkerBoundaryRule(GraphRule):
    rule_id = "RPR007"
    description = (
        "worker-boundary serialization safety: no lambdas/closures "
        "submitted to backends, spec-class fields statically "
        "pickle/JSON-safe, worker-reachable code free of ambient "
        "file/lock/parent-TraceRecorder handles"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Violation]:
        for name in sorted(project.modules):
            module = project.modules[name]
            yield from self._check_boundary_closures(module)
            yield from self._check_spec_fields(module)
        yield from self._check_ambient_handles(project)

    # ------------------------------------------------------------------
    # (a) lambdas / nested functions handed to dispatch calls
    # ------------------------------------------------------------------
    def _check_boundary_closures(
            self, module: ModuleInfo) -> Iterable[Violation]:
        module_level = set(module.functions)
        for node in ast.walk(module.ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested = {
                inner.name
                for inner in ast.walk(node)
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                and inner is not node
            }
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                attr = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name)
                        else None)
                if attr not in BOUNDARY_CALL_ATTRS:
                    continue
                for arg in (*call.args,
                            *(kw.value for kw in call.keywords)):
                    if isinstance(arg, ast.Lambda):
                        yield self.violation(
                            module.ctx, arg,
                            f"lambda passed to {attr}() cannot cross "
                            f"the worker boundary (unpicklable, never "
                            f"wire-serializable); hoist it to a "
                            f"module-level function",
                        )
                    elif (isinstance(arg, ast.Name)
                          and arg.id in nested
                          and arg.id not in module_level):
                        yield self.violation(
                            module.ctx, arg,
                            f"locally defined function {arg.id!r} "
                            f"passed to {attr}() closes over its "
                            f"enclosing frame and cannot cross the "
                            f"worker boundary; hoist it to module "
                            f"level and pass its state as arguments",
                        )

    # ------------------------------------------------------------------
    # (b) spec-class field annotations
    # ------------------------------------------------------------------
    def _check_spec_fields(self, module: ModuleInfo) -> Iterable[Violation]:
        if not module.ctx.in_dir("src/repro/exec/"):
            return
        for class_name in sorted(SPEC_CLASSES & set(module.classes)):
            class_node = module.classes[class_name].node
            for stmt in class_node.body:
                if not (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    continue
                bad = sorted(
                    atom for atom in _annotation_atoms(stmt.annotation)
                    if atom not in SERIALIZABLE_ANNOTATIONS
                )
                if bad:
                    yield self.violation(
                        module.ctx, stmt,
                        f"{class_name}.{stmt.target.id} is annotated "
                        f"with non-serializable type(s) "
                        f"{', '.join(bad)}; spec fields cross the "
                        f"worker boundary by value and must be plain "
                        f"data or a pinned-round-trip project "
                        f"dataclass (extend SERIALIZABLE_ANNOTATIONS "
                        f"only with a reviewed JSON round trip)",
                    )

    # ------------------------------------------------------------------
    # (c) ambient handles read by worker-reachable code
    # ------------------------------------------------------------------
    def _check_ambient_handles(
            self, project: ProjectGraph) -> Iterable[Violation]:
        handle_names: dict[str, dict[str, str]] = {
            name: _handle_globals(module)
            for name, module in project.modules.items()
        }
        for function_id in sorted(project.worker_reachable):
            fn = project.functions[function_id]
            if fn.module in SANCTIONED_CHANNEL_MODULES:
                continue
            if fn.qualname == MODULE_BODY:
                continue
            module = project.modules[fn.module]
            own_handles = handle_names.get(fn.module, {})
            flagged: set[str] = set()
            for node in _function_body_nodes(fn):
                if not isinstance(node, ast.Name):
                    continue
                if node.id in flagged:
                    continue
                origin: tuple[str, str] | None = None
                if node.id in own_handles:
                    origin = (own_handles[node.id], fn.module)
                else:
                    binding = module.symbols.get(node.id)
                    if (binding is not None and binding[0] == "symbol"
                            and (binding[1], binding[2])
                            in PARENT_HANDLE_GLOBALS):
                        origin = ("parent TraceRecorder registry",
                                  binding[1])
                    elif (fn.module, node.id) in PARENT_HANDLE_GLOBALS:
                        origin = ("parent TraceRecorder registry",
                                  fn.module)
                if origin is None:
                    continue
                flagged.add(node.id)
                kind, where = origin
                yield self.violation(
                    module.ctx, node,
                    f"worker-reachable function {fn.qualname}() "
                    f"captures ambient handle {node.id!r} "
                    f"({kind}, module {where}): fork shares it with "
                    f"the parent and spawn/remote workers never have "
                    f"it; take the resource as an argument or route "
                    f"through the worker_recorder sidecar channel",
                )
