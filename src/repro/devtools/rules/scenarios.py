"""RPR004 — scenario registration happens at import time.

Pool workers re-import the library: a
:class:`~repro.noise.scenarios.NoiseScenario` registered inside a
function is invisible to :class:`~repro.exec.backends.ProcessPoolBackend`
workers (and to any future remote worker), so ``JobSpec(scenario=...)``
construction fails — or worse, succeeds locally and dies only when the
batch is sharded.  The ROADMAP invariant: *scenario names must be
registered at import time to be visible in pool workers*.

Two checks, on non-test code (pytest files register transient scenarios
inside fixtures on purpose and run in-process):

* a ``register_scenario(...)`` call nested inside any function or
  method body is flagged — hoist it to module level;
* a module-level ``NoiseScenario(...)`` construction that never reaches
  ``register_scenario`` (neither directly as an argument, nor via a
  module-level name later registered) is flagged — an unregistered
  scenario cannot be named by a JobSpec at all.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.core import FileContext, Rule, Violation, dotted_name

_REGISTER = "register_scenario"
_CONSTRUCT = "NoiseScenario"


def _call_tail(node: ast.Call) -> str | None:
    name = dotted_name(node.func)
    return name.rsplit(".", 1)[-1] if name else None


class ScenarioRegistrationRule(Rule):
    rule_id = "RPR004"
    description = (
        "NoiseScenario registration must happen at module import time "
        "(register_scenario at module level, every module-level "
        "construction registered) so process-pool workers that "
        "re-import the library see the name"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test_code()

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        # --- function-nested register_scenario calls -------------------
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if (isinstance(inner, ast.Call)
                            and _call_tail(inner) == _REGISTER):
                        yield self.violation(
                            ctx, inner,
                            f"{_REGISTER}() inside a function runs only "
                            f"in this process; hoist it to module level "
                            f"so pool/remote workers re-importing the "
                            f"module see the scenario",
                        )

        # --- module-level constructions that never get registered ------
        registered_names: set[str] = set()
        consumed: set[ast.Call] = set()
        constructions: list[tuple[ast.Call, str | None]] = []
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # constructions inside a def/class body are not import-time
                # registrations; function-nested *register* calls are
                # already flagged above
                continue
            stmt_constructs = [
                node for node in ast.walk(stmt)
                if isinstance(node, ast.Call) and _call_tail(node) == _CONSTRUCT
            ]
            registers = [
                node for node in ast.walk(stmt)
                if isinstance(node, ast.Call) and _call_tail(node) == _REGISTER
            ]
            if registers:
                # every construction inside a registering statement flows
                # into the registry (directly or via compose_scenarios)
                consumed.update(stmt_constructs)
                for register in registers:
                    for arg in register.args:
                        if isinstance(arg, ast.Name):
                            registered_names.add(arg.id)
            for node in stmt_constructs:
                bound: str | None = None
                if (isinstance(stmt, ast.Assign) and stmt.value is node
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    bound = stmt.targets[0].id
                constructions.append((node, bound))
        for node, bound in constructions:
            if node in consumed:
                continue
            if bound is not None and bound in registered_names:
                continue
            yield self.violation(
                ctx, node,
                "module-level NoiseScenario construction never reaches "
                "register_scenario(); unregistered scenarios cannot be "
                "named by JobSpec(scenario=) and are invisible to "
                "workers",
            )
