"""RPR005 — swallowed-exception hygiene in the durability-critical core.

``exec/`` owns the result caches, the append-only
:class:`~repro.exec.store.RunStore` segments and the backend dispatch;
``search/`` owns resumable multi-rung runs.  A handler in those packages
that swallows ``Exception`` wholesale can drop a failed write on the
floor and let a run *appear* complete — the resume path then serves the
truncated state as durable cache hits, which is exactly the corruption
the store exists to prevent.

Flagged, in ``src/repro/exec/`` and ``src/repro/search/`` only:

* a bare ``except:`` anywhere (it also eats ``KeyboardInterrupt`` /
  ``SystemExit``, breaking clean shutdown of pool workers), regardless
  of body;
* ``except Exception:`` / ``except BaseException:`` whose body is only
  ``pass`` / ``...`` — catching narrow, expected errors (``OSError`` on
  a best-effort unlink) stays legal, as does broad catching that
  re-raises or actually handles.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.core import FileContext, Rule, Violation

#: Packages where a dropped error breaks durability/resume semantics.
RESTRICTED_PREFIXES: tuple[str, ...] = (
    "src/repro/exec/",
    "src/repro/search/",
)

_BROAD = frozenset({"Exception", "BaseException"})


def _names_broad_type(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_names_broad_type(element) for element in node.elts)
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    return False


def _body_is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is ...):
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    rule_id = "RPR005"
    description = (
        "no bare 'except:' and no silent 'except Exception: pass' in "
        "exec/ and search/ — a dropped error there corrupts "
        "durability/resume semantics"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir(*RESTRICTED_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit and can mask a failed durable write; "
                    "name the exceptions this code expects",
                )
            elif _names_broad_type(node.type) and _body_is_silent(node.body):
                yield self.violation(
                    ctx, node,
                    "'except Exception: pass' silently drops errors a "
                    "resumed run will mistake for completed work; "
                    "narrow the exception type or handle/re-raise",
                )
