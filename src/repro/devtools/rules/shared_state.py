"""RPR008 — shared-state hazards: worker code must not write globals.

A module-level mutable global written from worker-reachable code is a
fork-divergence hazard today (each pool worker mutates its own copy-on-
write copy, the parent never sees it — or worse, ``fork`` timing makes
it *look* shared in tests) and a silent wrong answer on N remote
machines tomorrow.  The sanctioned channels for cross-process state are
architectural, not ad hoc:

* results flow back through the engine cache / ``RunStore`` (instance
  state returned by value — never module globals);
* worker-side traces flow through the ``worker_recorder`` sidecar files
  (:data:`SANCTIONED_GLOBAL_WRITES` exempts the ``repro.obs.trace``
  registries that *implement* that channel);
* scenario registration happens at **import time** (the module body
  pseudo-node is not worker-reachable, so re-import registration in a
  spawned worker is automatically legal — RPR004 already polices that
  it stays at import time).

Detected write shapes, for globals whose module-level initialiser is a
mutable container (dict/list/set literal or comprehension, or a
``dict()``/``list()``/``set()``/``defaultdict()``/… constructor):

* rebinding under a ``global`` declaration (``global X; X = …``,
  ``X += …``);
* item assignment (``X[k] = v``, ``del X[k]``, ``X[k] += v``);
* mutator method calls (``X.append(…)``, ``X.update(…)``, …);
* the same shapes through an imported alias
  (``from repro.noise.scenarios import _REGISTRY; _REGISTRY[k] = v``).

Names rebound locally without a ``global`` declaration are locals and
are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.core import Violation, dotted_name
from repro.devtools.graph import (
    MODULE_BODY,
    FunctionInfo,
    GraphRule,
    ModuleInfo,
    ProjectGraph,
    _function_body_nodes,
)

#: Constructors producing mutable containers.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "ChainMap",
})

#: Literal/comprehension nodes producing mutable containers.
MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                    ast.ListComp, ast.SetComp)

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "sort",
    "reverse",
})

#: (module, global) pairs that ARE the sanctioned cross-process
#: channels: the trace-recorder registries behind ``worker_recorder``,
#: and the per-process profiling-mode cache (read-mostly memo of an
#: environment variable — each worker caching its own parse is the
#: intended behaviour, not a divergence hazard).
SANCTIONED_GLOBAL_WRITES = frozenset({
    ("repro.obs.trace", "_ACTIVE"),
    ("repro.obs.trace", "_RECORDERS"),
    ("repro.obs.trace", "_WORKER_RECORDERS"),
    ("repro.obs.profile", "_MODE_CACHE"),
})


def _is_mutable_initialiser(value: ast.expr) -> bool:
    if isinstance(value, MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        ctor = dotted_name(value.func)
        if ctor is not None and \
                ctor.rsplit(".", 1)[-1] in MUTABLE_CONSTRUCTORS:
            return True
    return False


def _mutable_globals(module: ModuleInfo) -> set[str]:
    return {
        name for name, value in module.module_globals.items()
        if _is_mutable_initialiser(value)
    }


def _local_rebinds(fn: FunctionInfo, global_decls: set[str]) -> set[str]:
    """Names bound as plain locals (no ``global``) inside *fn*."""
    locals_: set[str] = set()

    def bind(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            locals_.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for node in _function_body_nodes(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign,
                               ast.NamedExpr)):
            bind(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
    return locals_ - global_decls


class SharedStateRule(GraphRule):
    rule_id = "RPR008"
    description = (
        "shared-state hazards: module-level mutable globals must not "
        "be written inside worker-reachable functions (route results "
        "through the engine cache/RunStore, traces through "
        "worker_recorder sidecars, registration through import time)"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Violation]:
        mutable: dict[str, set[str]] = {
            name: _mutable_globals(module)
            for name, module in project.modules.items()
        }
        for function_id in sorted(project.worker_reachable):
            fn = project.functions[function_id]
            if fn.qualname == MODULE_BODY:
                continue
            module = project.modules[fn.module]
            yield from self._check_function(module, fn, mutable)

    def _check_function(
        self, module: ModuleInfo, fn: FunctionInfo,
        mutable: dict[str, set[str]],
    ) -> Iterable[Violation]:
        global_decls: set[str] = set()
        for node in _function_body_nodes(fn):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
        local_names = _local_rebinds(fn, global_decls)

        def origin(name: str) -> tuple[str, str] | None:
            """(module, global) a name refers to, if a mutable global."""
            if name in local_names:
                return None
            if name in mutable.get(fn.module, ()):
                return (fn.module, name)
            binding = module.symbols.get(name)
            if (binding is not None and binding[0] == "symbol"
                    and binding[2] in mutable.get(binding[1], ())):
                return (binding[1], binding[2])
            return None

        flagged: set[tuple[str, str, int]] = set()

        def report(node: ast.AST, name: str, owner: tuple[str, str],
                   how: str) -> Violation | None:
            if owner in SANCTIONED_GLOBAL_WRITES:
                return None
            key = (*owner, getattr(node, "lineno", 0))
            if key in flagged:
                return None
            flagged.add(key)
            owner_module, owner_name = owner
            return self.violation(
                module.ctx, node,
                f"worker-reachable function {fn.qualname}() {how} "
                f"module-level mutable global "
                f"{owner_module}.{owner_name}: the write stays in the "
                f"worker process (fork) or machine (remote) and is a "
                f"shared-state race; return the data and merge it in "
                f"the parent, or route it through the engine "
                f"cache/RunStore or a worker_recorder sidecar",
            )

        for node in _function_body_nodes(fn):
            found: list[Violation | None] = []
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id in global_decls):
                        owner = origin(target.id)
                        if owner is not None:
                            found.append(report(node, target.id, owner,
                                                "rebinds"))
                    elif isinstance(target, ast.Subscript) and \
                            isinstance(target.value, ast.Name):
                        owner = origin(target.value.id)
                        if owner is not None:
                            found.append(report(
                                node, target.value.id, owner,
                                "writes an item of"))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and \
                            isinstance(target.value, ast.Name):
                        owner = origin(target.value.id)
                        if owner is not None:
                            found.append(report(
                                node, target.value.id, owner,
                                "deletes an item of"))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in MUTATOR_METHODS
                  and isinstance(node.func.value, ast.Name)):
                owner = origin(node.func.value.id)
                if owner is not None:
                    found.append(report(
                        node, node.func.value.id, owner,
                        f"calls .{node.func.attr}() on",
                    ))
            yield from (v for v in found if v is not None)
