"""RPR006 — architecture layering: imports flow down, never sideways-up.

The ROADMAP's package architecture is a DAG: workload/device/noise
models at the bottom, the execution engine in the middle, search and
analysis drivers on top.  :data:`LAYER_TABLE` is the declarative
contract — for every top-level package under ``repro``, the set of
other packages it may import.  Anything not listed is a violation:

* base layers (``circuits``/``arch``/``noise``/``workloads``/``sim``,
  plus ``compiler`` between them) may not import ``exec`` or the
  driver layers — they must stay importable on a bare worker;
* ``exec`` may not import ``core``/``search``/``analysis`` (the engine
  serves drivers, never calls back into them);
* ``devtools`` imports **no runtime modules** — the linter must be able
  to analyse a broken tree without executing it;
* ``obs`` is a leaf (imports nothing in-project) and is imported only
  by ``exec`` and ``search`` — the observability plane hangs off the
  engine, not off the physics;
* the ``repro`` package root (``__init__``/``exceptions``/``version``)
  is the public facade and may re-export everything runtime, but never
  ``devtools`` or ``obs`` internals.

A package absent from the table (a future ``repro.remote``?) is flagged
on both ends until a PR adds a row — extending the layering is a
deliberate, reviewed act, exactly like extending a suppression
allowlist.

The second check is the **import-cycle ban**: module-level imports
between scanned project modules must form a DAG.  Function-scoped
imports are exempt (they are the sanctioned cycle-breaking idiom, e.g.
``run_lint`` importing the rule registry lazily).
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.core import Violation
from repro.devtools.graph import GraphRule, ProjectGraph, package_of

#: package -> other repro packages it may import (itself always legal).
#: Order mirrors the architecture: the further down the dict, the higher
#: the layer.
LAYER_TABLE: dict[str, frozenset[str]] = {
    "exceptions": frozenset(),
    "version": frozenset(),
    "obs": frozenset(),                       # leaf: no runtime imports
    "circuits": frozenset({"exceptions"}),
    "arch": frozenset({"exceptions"}),
    "noise": frozenset({"circuits", "exceptions"}),
    "compiler": frozenset({"arch", "circuits", "exceptions"}),
    "workloads": frozenset({"circuits", "compiler", "exceptions"}),
    "sim": frozenset({"arch", "circuits", "compiler", "noise",
                      "exceptions"}),
    "exec": frozenset({"arch", "circuits", "compiler", "noise", "obs",
                       "sim", "exceptions"}),
    "core": frozenset({"arch", "circuits", "compiler", "exec", "noise",
                       "sim", "exceptions"}),
    "search": frozenset({"arch", "circuits", "compiler", "core", "exec",
                         "noise", "sim", "exceptions"}),
    "analysis": frozenset({"arch", "circuits", "compiler", "core", "exec",
                           "noise", "search", "sim", "workloads",
                           "exceptions"}),
    "devtools": frozenset(),                  # no runtime imports at all
    # the repro/__init__ facade: everything runtime, never devtools/obs
    "": frozenset({"arch", "circuits", "compiler", "core", "exceptions",
                   "exec", "noise", "search", "sim", "version",
                   "workloads"}),
}


class LayeringRule(GraphRule):
    rule_id = "RPR006"
    description = (
        "architecture layering: imports must follow the declarative "
        "layer table (circuits/arch/sim/noise/workloads -> exec -> "
        "search/analysis; devtools imports no runtime modules; obs is "
        "a leaf used only by exec/search) and module-level project "
        "imports must be cycle-free"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Violation]:
        for name in sorted(project.modules):
            module = project.modules[name]
            allowed = LAYER_TABLE.get(module.package)
            if allowed is None:
                yield self.violation(
                    module.ctx, module.ctx.tree,
                    f"package 'repro.{module.package}' is not in the "
                    f"RPR006 layer table; add a reviewed row to "
                    f"LAYER_TABLE (devtools/rules/layering.py) before "
                    f"introducing a new top-level package",
                )
                continue
            for edge in module.imports:
                target_pkg = package_of(edge.target)
                if target_pkg == module.package:
                    continue
                if target_pkg in allowed:
                    continue
                if target_pkg not in LAYER_TABLE:
                    yield self.violation(
                        module.ctx, edge.node,
                        f"import of '{edge.target}' targets package "
                        f"'repro.{target_pkg}' which is not in the "
                        f"RPR006 layer table; add a reviewed row to "
                        f"LAYER_TABLE first",
                    )
                    continue
                label = target_pkg or "the repro package root"
                yield self.violation(
                    module.ctx, edge.node,
                    f"layering violation: 'repro.{module.package}' may "
                    f"not import '{edge.target}' ({label} is not in its "
                    f"allowed layer set {sorted(allowed) or '{}'}); "
                    f"invert the dependency or move the shared code "
                    f"down a layer",
                )
        for cycle in project.import_cycles():
            anchor = project.modules[cycle[0]]
            line = 1
            for edge in anchor.imports:
                if edge.top_level and edge.target.startswith(
                        cycle[1 % len(cycle)]):
                    line = edge.node.lineno
                    break
            yield Violation(
                rule=self.rule_id,
                path=anchor.ctx.real_rel,
                line=line,
                col=1,
                message=(
                    "module-level import cycle: "
                    + " -> ".join((*cycle, cycle[0]))
                    + "; break it by inverting a dependency or moving "
                    "one import into the function that needs it"
                ),
            )
