"""Shot-based Monte-Carlo noise simulation.

Where the analytic simulators multiply per-gate fidelities into a single
scalar, this subsystem *samples* the same model: every potential error
location (an :class:`~repro.noise.channels.ErrorSite`) triggers
independently per shot with probability ``1 - fidelity``, a triggered
unitary site applies a uniformly random non-identity Pauli, and a
triggered measurement site flips its classical bit.  A shot *succeeds*
when no site triggers, so the sampled success rate is an unbiased
estimator of the analytic product-of-fidelities success rate.

Determinism
-----------
Every shot owns a private :class:`numpy.random.Generator` seeded from
``(root seed, global shot index)``.  Results are therefore bit-identical
no matter how the shots are sharded across
:class:`~repro.exec.engine.ExecutionEngine` workers: shard ``[offset,
offset + shots)`` of a 10k-shot run draws exactly the numbers the same
shots would draw in one serial pass, and
:func:`merge_shot_results` reassembles the full run.

Counts
------
With ``sample_counts=True`` the sampler also produces a measurement
histogram: error-free shots draw from the ideal distribution (computed
once on the dense statevector), and each erroneous shot re-simulates the
circuit with its sampled Paulis injected.  This is only available up to
:data:`~repro.sim.statevector.MAX_STATEVECTOR_QUBITS` wide circuits;
success-rate estimation alone has no width limit.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.noise.channels import (
    BURST_SCALED_KINDS,
    CROSSTALK,
    HEATING_BURST,
    LEAKAGE,
    MEASURE_FLIP,
    ErrorSite,
    pauli_gates,
    sample_pauli_label,
)
from repro.noise.scenarios import (
    expected_success_rate as correlated_expected_success_rate,
)
from repro.sim.result import SimulationResult
from repro.sim.statevector import MAX_STATEVECTOR_QUBITS, StatevectorSimulator

#: 97.5 % normal quantile: the z of a two-sided 95 % confidence interval.
WILSON_Z_95 = 1.959963984540054

#: Default cap on the number of *detailed* per-shot error records kept on a
#: :class:`ShotResult` (the per-shot error counts are always complete).
DEFAULT_MAX_RECORDS = 1024


def wilson_interval(successes: int, shots: int,
                    z: float = WILSON_Z_95) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Unlike the normal approximation it stays inside [0, 1] and remains
    informative at 0 or ``shots`` successes, which is exactly the regime
    deep circuits live in (success rates far below 1/shots).
    """
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if not 0 <= successes <= shots:
        raise SimulationError(
            f"successes {successes} outside [0, {shots}]"
        )
    p_hat = successes / shots
    z2 = z * z
    denominator = 1.0 + z2 / shots
    centre = (p_hat + z2 / (2.0 * shots)) / denominator
    half_width = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / shots + z2 / (4.0 * shots * shots))
        / denominator
    )
    low = 0.0 if successes == 0 else max(0.0, centre - half_width)
    high = 1.0 if successes == shots else min(1.0, centre + half_width)
    return (low, high)


def shot_rng(seed: int, shot_index: int) -> np.random.Generator:
    """The private random generator of one global shot index.

    Seeding from the ``(root seed, shot index)`` entropy pair is what
    makes sharded execution bit-identical to a serial run.
    """
    if seed < 0 or shot_index < 0:
        raise SimulationError("seed and shot index must be non-negative")
    return np.random.default_rng((seed, shot_index))


@dataclass(frozen=True)
class ShotRecord:
    """The errors sampled in one (erroneous) shot.

    ``errors`` holds ``(gate execution index, Pauli label)`` pairs in the
    order the errors occurred; the label is ``"FLIP"`` for measurement
    readout errors.
    """

    shot: int
    errors: tuple[tuple[int, str], ...]

    @property
    def num_errors(self) -> int:
        return len(self.errors)


@dataclass(frozen=True)
class ShotResult:
    """Outcome of a sampled-noise run (one shard or a merged whole).

    Attributes
    ----------
    architecture, circuit_name:
        Same labels as the corresponding :class:`SimulationResult`.
    shots, seed, shot_offset:
        This result covers global shot indices ``[shot_offset,
        shot_offset + shots)`` of the run rooted at ``seed``.
    successes:
        Number of shots in which no error site triggered.
    errors_per_shot:
        Error count of every shot in the range, in shot order (complete —
        one entry per shot).
    records:
        Detailed :class:`ShotRecord` entries for erroneous shots, in shot
        order, capped at :attr:`max_records` (clean shots carry no
        record).
    max_records:
        The record cap this result was sampled under.
        :func:`merge_shot_results` re-applies it after concatenating
        shard records, so a merged run keeps exactly the records a
        serial pass would have kept.
    counts:
        Measurement histogram (bit string, qubit 0 leftmost -> count), or
        ``None`` when counts sampling was disabled.
    num_error_sites:
        How many fallible locations the executed program exposed.
    expected_success_rate:
        The analytic product of per-site survival probabilities — the
        closed-form success rate the sampled estimate converges to.
    analytic:
        The corresponding analytic :class:`SimulationResult`, when the
        producing simulator attached one (interop with every consumer of
        the analytic pipeline).
    mechanism_counts:
        Per-run noise telemetry: total triggered events by site kind
        (``"pauli2"``, ``"crosstalk"``, ``"leakage"``,
        ``"heating_burst"``, ...) across every shot in the range.  Bursts
        are counted here even though they are not error events.
    mechanism_shots:
        Number of shots in which each site kind *triggered* at least
        once.  For error kinds this is the empirical per-mechanism
        shot-loss attribution; ``"heating_burst"`` counts shots where a
        burst fired, which need not have failed (a burst only raises
        later error probabilities).
    """

    architecture: str
    circuit_name: str
    shots: int
    seed: int
    shot_offset: int
    successes: int
    errors_per_shot: tuple[int, ...]
    records: tuple[ShotRecord, ...] = ()
    max_records: int = DEFAULT_MAX_RECORDS
    counts: dict[str, int] | None = None
    num_error_sites: int = 0
    expected_success_rate: float = 1.0
    analytic: SimulationResult | None = None
    mechanism_counts: dict[str, int] | None = None
    mechanism_shots: dict[str, int] | None = None

    def __post_init__(self) -> None:
        if self.shots <= 0:
            raise SimulationError("a shot result needs at least one shot")
        if not 0 <= self.successes <= self.shots:
            raise SimulationError("successes outside [0, shots]")
        if len(self.errors_per_shot) != self.shots:
            raise SimulationError(
                "errors_per_shot must have exactly one entry per shot"
            )
        if len(self.records) > self.max_records:
            raise SimulationError("records exceed the max_records cap")

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    @property
    def success_rate(self) -> float:
        """Sampled success probability (successes / shots)."""
        return self.successes / self.shots

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """95 % Wilson confidence interval of the success rate."""
        return wilson_interval(self.successes, self.shots)

    @property
    def mean_errors_per_shot(self) -> float:
        """Average number of sampled errors per shot."""
        return sum(self.errors_per_shot) / self.shots

    def agrees_with_analytic(self, rate: float | None = None) -> bool:
        """True when the analytic rate lies inside the 95 % interval.

        *rate* defaults to the attached analytic result's success rate
        (falling back to :attr:`expected_success_rate`).
        """
        if rate is None:
            rate = (self.analytic.success_rate if self.analytic is not None
                    else self.expected_success_rate)
        low, high = self.confidence_interval
        return low <= rate <= high

    # ------------------------------------------------------------------
    # Interop with the analytic pipeline
    # ------------------------------------------------------------------
    def to_simulation_result(self) -> SimulationResult:
        """Package the sampled estimate as a :class:`SimulationResult`.

        Structural fields (gate counts, moves, execution time) come from
        the attached analytic result when present; the success rate is the
        sampled estimate and ``extras`` carries shots and the confidence
        interval, so sampled and analytic results flow through the same
        comparison and reporting code.
        """
        rate = self.success_rate
        low, high = self.confidence_interval
        extras = {
            "shots": float(self.shots),
            "ci_low": low,
            "ci_high": high,
            "sampled": 1.0,
        }
        if self.mechanism_counts:
            for kind, count in self.mechanism_counts.items():
                extras[f"errors_{kind}"] = float(count)
        if self.mechanism_shots:
            for kind, count in self.mechanism_shots.items():
                extras[f"shots_with_{kind}"] = float(count)
        if self.analytic is not None:
            base = self.analytic
            extras = {**base.extras, **extras}
            return dataclasses.replace(
                base,
                success_rate=rate,
                log10_success_rate=(
                    math.log10(rate) if rate > 0 else float("-inf")
                ),
                extras=extras,
            )
        return SimulationResult(
            architecture=self.architecture,
            circuit_name=self.circuit_name,
            success_rate=rate,
            log10_success_rate=math.log10(rate) if rate > 0 else float("-inf"),
            execution_time_us=0.0,
            num_gates=0,
            num_two_qubit_gates=0,
            num_moves=0,
            move_distance_um=0.0,
            average_gate_fidelity=0.0,
            worst_gate_fidelity=0.0,
            extras=extras,
        )

    def summary(self) -> str:
        """One-line human-readable result."""
        low, high = self.confidence_interval
        return (
            f"{self.architecture:<16} {self.circuit_name:<8} "
            f"shots={self.shots} success={self.success_rate:.4f} "
            f"[{low:.4f}, {high:.4f}] "
            f"analytic={self.expected_success_rate:.3e} "
            f"mean_errors={self.mean_errors_per_shot:.2f}"
        )


def merge_shot_results(results: Sequence[ShotResult]) -> ShotResult:
    """Reassemble contiguous shards into the full run's :class:`ShotResult`.

    Shards must share architecture, circuit, seed and error model, and
    their shot ranges must tile ``[first offset, first offset + total)``
    without gaps.  Because every shot is seeded independently, the merge
    of ``N`` shards is bit-identical to a single serial run.

    Mechanism telemetry merges by summation, but only when *every* shard
    carries it: a shard served from a pre-telemetry disk cache
    deserialises with ``mechanism_counts=None``, and summing around a
    missing shard would fabricate under-counted totals, so the merged
    telemetry conservatively degrades to ``None`` instead.
    """
    if not results:
        raise SimulationError("cannot merge an empty list of shot results")
    ordered = sorted(results, key=lambda result: result.shot_offset)
    first = ordered[0]
    counts: dict[str, int] | None = (
        {} if all(result.counts is not None for result in ordered) else None
    )
    mechanism_counts: dict[str, int] | None = (
        {} if all(result.mechanism_counts is not None for result in ordered)
        else None
    )
    mechanism_shots: dict[str, int] | None = (
        {} if all(result.mechanism_shots is not None for result in ordered)
        else None
    )
    records: list[ShotRecord] = []
    errors_per_shot: list[int] = []
    successes = 0
    next_offset = first.shot_offset
    for result in ordered:
        if (result.architecture != first.architecture
                or result.circuit_name != first.circuit_name
                or result.seed != first.seed
                or result.num_error_sites != first.num_error_sites
                or result.max_records != first.max_records):
            raise SimulationError(
                "cannot merge shot results from different runs"
            )
        if result.shot_offset != next_offset:
            raise SimulationError(
                f"shot shards are not contiguous: expected offset "
                f"{next_offset}, got {result.shot_offset}"
            )
        next_offset += result.shots
        successes += result.successes
        errors_per_shot.extend(result.errors_per_shot)
        records.extend(result.records)
        if counts is not None and result.counts is not None:
            for outcome, count in result.counts.items():
                counts[outcome] = counts.get(outcome, 0) + count
        if mechanism_counts is not None and result.mechanism_counts is not None:
            for kind, count in result.mechanism_counts.items():
                mechanism_counts[kind] = mechanism_counts.get(kind, 0) + count
        if mechanism_shots is not None and result.mechanism_shots is not None:
            for kind, count in result.mechanism_shots.items():
                mechanism_shots[kind] = mechanism_shots.get(kind, 0) + count
    return ShotResult(
        architecture=first.architecture,
        circuit_name=first.circuit_name,
        shots=next_offset - first.shot_offset,
        seed=first.seed,
        shot_offset=first.shot_offset,
        successes=successes,
        errors_per_shot=tuple(errors_per_shot),
        # shards cap records independently; re-applying the cap to the
        # concatenation keeps exactly what one serial pass would keep
        records=tuple(records[:first.max_records]),
        max_records=first.max_records,
        counts=counts,
        num_error_sites=first.num_error_sites,
        expected_success_rate=first.expected_success_rate,
        analytic=first.analytic,
        mechanism_counts=mechanism_counts,
        mechanism_shots=mechanism_shots,
    )


@dataclass
class StochasticSampler:
    """Monte-Carlo sampler over a fixed list of error sites.

    The producing simulator supplies the executed gate sequence and the
    error sites derived from its heating-aware fidelities; the sampler is
    architecture-agnostic from there on.

    Parameters
    ----------
    architecture, circuit_name:
        Labels carried onto the :class:`ShotResult`.
    sites:
        The fallible locations of the executed program.
    gates:
        The executed gate sequence (dependency-respecting order).  Only
        needed for counts sampling.
    num_qubits:
        Register width of the executed program (counts sampling only).
    analytic:
        Optional analytic result to attach to every :class:`ShotResult`.
    """

    architecture: str
    circuit_name: str
    sites: Sequence[ErrorSite]
    gates: Sequence[Gate] | None = None
    num_qubits: int | None = None
    analytic: SimulationResult | None = None
    burst_multiplier: float = 1.0
    #: The producing simulator may pass the closed-form rate it already
    #: computed (the correlated burst DP is too heavy to run twice).
    expected_rate: float | None = None
    max_statevector_qubits: int = MAX_STATEVECTOR_QUBITS
    _probabilities: np.ndarray = field(init=False, repr=False)
    _correlated: bool = field(init=False, repr=False)
    _expected_success_rate: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._probabilities = np.array(
            [site.probability for site in self.sites], dtype=float
        )
        # Scenario sites (crosstalk/leakage/bursts) switch the per-shot
        # loop to the correlated path; plain Eq. 4 sites keep the PR-2
        # fast path and its exact random stream.
        self._correlated = any(
            site.kind in (CROSSTALK, LEAKAGE, HEATING_BURST)
            for site in self.sites
        )
        # Computed once: the correlated form runs the per-window burst
        # DP, which is too heavy to redo on every property access.
        self._expected_success_rate = self._compute_expected_success_rate()

    # ------------------------------------------------------------------
    # The analytic reference
    # ------------------------------------------------------------------
    def _compute_expected_success_rate(self) -> float:
        if self.expected_rate is not None:
            return self.expected_rate
        if self._correlated:
            return correlated_expected_success_rate(
                self.sites, self.burst_multiplier
            )
        log_total = 0.0
        for probability in self._probabilities:
            if probability >= 1.0:
                return 0.0
            log_total += math.log1p(-probability)
        return math.exp(log_total)

    @property
    def expected_success_rate(self) -> float:
        """P(no error event) — the analytic rate the sampler converges to.

        Independent sites multiply their survival probabilities; with
        heating-burst sites present the exact per-window dynamic program
        of :mod:`repro.noise.scenarios` is used instead, so correlated
        runs still converge to a closed-form reference.
        """
        return self._expected_success_rate

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def run(self, shots: int, *, seed: int = 0, shot_offset: int = 0,
            sample_counts: bool = False,
            max_records: int = DEFAULT_MAX_RECORDS) -> ShotResult:
        """Sample shots ``[shot_offset, shot_offset + shots)``.

        Each shot consumes a fixed, documented draw sequence from its
        private generator — site uniforms, then one Pauli choice per
        triggered Pauli site, then (counts mode) one outcome uniform — so
        results do not depend on how shots are batched.
        """
        if shots <= 0:
            raise SimulationError("shots must be positive")
        if max_records < 0:
            raise SimulationError("max_records cannot be negative")
        ideal_cumulative: np.ndarray | None = None
        base_circuit: Circuit | None = None
        if sample_counts:
            base_circuit = self._counts_circuit()
            simulator = StatevectorSimulator(self.max_statevector_qubits)
            ideal_cumulative = np.cumsum(
                simulator.probabilities(base_circuit)
            )

        successes = 0
        errors_per_shot: list[int] = []
        records: list[ShotRecord] = []
        counts: dict[str, int] | None = {} if sample_counts else None
        mechanism_counts: dict[str, int] = {}
        mechanism_shots: dict[str, int] = {}
        for local_shot in range(shots):
            shot = shot_offset + local_shot
            rng = shot_rng(seed, shot)
            shot_kinds: set[str] = set()
            if self._correlated:
                errors, flip_qubits, leaked_at, injections = (
                    self._sample_correlated_shot(
                        rng, mechanism_counts, shot_kinds,
                        want_injections=sample_counts,
                    )
                )
            else:
                if len(self._probabilities):
                    uniforms = rng.random(len(self._probabilities))
                    triggered = np.flatnonzero(uniforms < self._probabilities)
                else:
                    triggered = np.empty(0, dtype=int)
                errors = []
                flip_qubits = []
                for position in triggered:
                    site = self.sites[int(position)]
                    label = sample_pauli_label(site, rng)
                    errors.append((site.index, label))
                    shot_kinds.add(site.kind)
                    mechanism_counts[site.kind] = (
                        mechanism_counts.get(site.kind, 0) + 1
                    )
                    if site.kind == MEASURE_FLIP:
                        flip_qubits.extend(site.qubits)
            errors_per_shot.append(len(errors))
            if not errors:
                successes += 1
            elif len(records) < max_records:
                records.append(ShotRecord(shot=shot, errors=tuple(errors)))
            if counts is not None:
                if self._correlated:
                    outcome = self._correlated_outcome(
                        rng, injections, flip_qubits, leaked_at,
                        base_circuit, ideal_cumulative,
                    )
                else:
                    outcome = self._sample_outcome(
                        rng, triggered, errors, flip_qubits,
                        base_circuit, ideal_cumulative,
                    )
                counts[outcome] = counts.get(outcome, 0) + 1
            for kind in shot_kinds:
                mechanism_shots[kind] = mechanism_shots.get(kind, 0) + 1
        return ShotResult(
            architecture=self.architecture,
            circuit_name=self.circuit_name,
            shots=shots,
            seed=seed,
            shot_offset=shot_offset,
            successes=successes,
            errors_per_shot=tuple(errors_per_shot),
            records=tuple(records),
            max_records=max_records,
            counts=counts,
            num_error_sites=len(self.sites),
            expected_success_rate=self.expected_success_rate,
            analytic=self.analytic,
            mechanism_counts=mechanism_counts,
            mechanism_shots=mechanism_shots,
        )

    # ------------------------------------------------------------------
    # Correlated (scenario) sampling
    # ------------------------------------------------------------------
    def _sample_correlated_shot(
        self, rng: np.random.Generator,
        mechanism_counts: dict[str, int], shot_kinds: set[str],
        want_injections: bool = False,
    ) -> tuple[list[tuple[int, str]], list[int], dict[int, int],
               dict[int, list[Gate]]]:
        """One shot of the correlated-noise model.

        The draw sequence is fixed and documented: one uniform per site
        (in site order), then one Pauli choice per triggered Pauli-like
        site, so sharded runs stay bit-identical to serial ones.  Sites
        are processed in execution order; a triggered heating burst
        scales the probability of every later burst-scalable site in its
        window, and a leaked qubit suppresses every later site whose own
        qubits touch it (the shot already failed — later gates on the
        leaked qubit act as identity-with-error).  Crosstalk kicks from a
        gate with a leaked operand still fire: the laser pulses either
        way.

        Returns ``(errors, flip_qubits, leaked_at, injections)`` where
        ``leaked_at`` maps leaked qubit -> gate index of the leak and
        ``injections`` maps gate index -> Pauli gates for counts
        re-simulation (only materialised when *want_injections* — i.e.
        counts mode — asks for it; success-rate shots skip the Gate
        allocations).
        """
        n = len(self._probabilities)
        uniforms = rng.random(n) if n else np.empty(0)
        bursts_active: dict[int, int] = {}
        leaked_at: dict[int, int] = {}
        errors: list[tuple[int, str]] = []
        flip_qubits: list[int] = []
        injections: dict[int, list[Gate]] = {}
        for position, site in enumerate(self.sites):
            if site.kind == HEATING_BURST:
                if uniforms[position] < site.probability:
                    bursts_active[site.window] = (
                        bursts_active.get(site.window, 0) + 1
                    )
                    shot_kinds.add(HEATING_BURST)
                    mechanism_counts[HEATING_BURST] = (
                        mechanism_counts.get(HEATING_BURST, 0) + 1
                    )
                continue
            if leaked_at and any(q in leaked_at for q in site.qubits):
                continue
            probability = site.probability
            if site.kind in BURST_SCALED_KINDS:
                active = bursts_active.get(site.window, 0)
                if active:
                    try:
                        probability = min(
                            1.0,
                            probability * self.burst_multiplier ** active,
                        )
                    except OverflowError:
                        # enough active bursts to overflow a float pow
                        # saturate exactly like the capped product would
                        probability = 1.0
            if uniforms[position] >= probability:
                continue
            shot_kinds.add(site.kind)
            mechanism_counts[site.kind] = (
                mechanism_counts.get(site.kind, 0) + 1
            )
            if site.kind == LEAKAGE:
                for qubit in site.qubits:
                    leaked_at.setdefault(qubit, site.index)
                errors.append((site.index, "LEAK"))
            elif site.kind == MEASURE_FLIP:
                errors.append((site.index, "FLIP"))
                flip_qubits.extend(site.qubits)
            else:
                label = sample_pauli_label(site, rng)
                errors.append((site.index, label))
                if want_injections:
                    extra = pauli_gates(site, label)
                    if extra:
                        injections.setdefault(site.index, []).extend(extra)
        return errors, flip_qubits, leaked_at, injections

    def _correlated_outcome(self, rng: np.random.Generator,
                            injections: dict[int, list[Gate]],
                            flip_qubits: list[int],
                            leaked_at: dict[int, int],
                            base_circuit: Circuit | None,
                            ideal_cumulative: np.ndarray | None) -> str:
        """Sample one measurement outcome under the correlated model.

        Gates strictly after a leak that touch the leaked qubit are
        dropped from the re-simulated circuit, and the leaked qubit's
        measured bit is replaced by a fair coin flip (one uniform per
        leaked qubit, in qubit order) after the outcome draw.
        """
        assert base_circuit is not None and ideal_cumulative is not None
        if not injections and not leaked_at:
            cumulative = ideal_cumulative
        else:
            assert self.gates is not None
            perturbed = Circuit(base_circuit.num_qubits,
                                name=base_circuit.name)
            for index, gate in enumerate(self.gates):
                dropped = any(
                    leaked_at.get(qubit, index + 1) < index
                    for qubit in gate.qubits
                )
                if not dropped:
                    perturbed.append(gate)
                for extra in injections.get(index, ()):
                    perturbed.append(extra)
            simulator = StatevectorSimulator(self.max_statevector_qubits)
            cumulative = np.cumsum(simulator.probabilities(perturbed))
        n = base_circuit.num_qubits
        index = self._draw_outcome_index(rng, cumulative, n, flip_qubits)
        for qubit in sorted(leaked_at):
            bit = 1 if rng.random() < 0.5 else 0
            mask = 1 << (n - 1 - qubit)
            index = (index | mask) if bit else (index & ~mask)
        return format(index, f"0{n}b")

    @staticmethod
    def _draw_outcome_index(rng: np.random.Generator,
                            cumulative: np.ndarray, n: int,
                            flip_qubits: list[int]) -> int:
        """One outcome draw with readout flips applied (qubit 0 = MSB).

        Shared by the baseline and correlated counts paths so the draw,
        clamp and bit-order conventions cannot diverge.
        """
        draw = rng.random()
        index = int(np.searchsorted(cumulative, draw, side="right"))
        index = min(index, len(cumulative) - 1)
        for qubit in flip_qubits:
            index ^= 1 << (n - 1 - qubit)
        return index

    # ------------------------------------------------------------------
    # Counts machinery
    # ------------------------------------------------------------------
    def _counts_circuit(self) -> Circuit:
        if self.gates is None or self.num_qubits is None:
            raise SimulationError(
                "counts sampling needs the executed gate sequence; "
                "construct the sampler with gates= and num_qubits= or "
                "pass sample_counts=False"
            )
        if self.num_qubits > self.max_statevector_qubits:
            raise SimulationError(
                f"counts sampling is limited to "
                f"{self.max_statevector_qubits} qubits, got "
                f"{self.num_qubits}; success-rate sampling "
                f"(sample_counts=False) has no width limit"
            )
        circuit = Circuit(self.num_qubits, name=self.circuit_name)
        for gate in self.gates:
            circuit.append(gate)
        return circuit

    def _sample_outcome(self, rng: np.random.Generator,
                        triggered: np.ndarray,
                        errors: list[tuple[int, str]],
                        flip_qubits: list[int],
                        base_circuit: Circuit | None,
                        ideal_cumulative: np.ndarray | None) -> str:
        assert base_circuit is not None and ideal_cumulative is not None
        needs_resim = any(
            self.sites[int(position)].kind != MEASURE_FLIP
            for position in triggered
        )
        if not needs_resim:
            cumulative = ideal_cumulative
        else:
            perturbed = self._perturbed_circuit(triggered, errors,
                                                base_circuit)
            simulator = StatevectorSimulator(self.max_statevector_qubits)
            cumulative = np.cumsum(simulator.probabilities(perturbed))
        n = base_circuit.num_qubits
        index = self._draw_outcome_index(rng, cumulative, n, flip_qubits)
        return format(index, f"0{n}b")

    def _perturbed_circuit(self, triggered: np.ndarray,
                           errors: list[tuple[int, str]],
                           base_circuit: Circuit) -> Circuit:
        injected: dict[int, list[Gate]] = {}
        for position, (gate_index, label) in zip(triggered, errors):
            site = self.sites[int(position)]
            extra = pauli_gates(site, label)
            if extra:
                injected.setdefault(gate_index, []).extend(extra)
        perturbed = Circuit(base_circuit.num_qubits, name=base_circuit.name)
        assert self.gates is not None
        for index, gate in enumerate(self.gates):
            perturbed.append(gate)
            for extra in injected.get(index, ()):
                perturbed.append(extra)
        return perturbed


# ----------------------------------------------------------------------
# JSON (de)serialisation, used by the execution engine's disk cache
# ----------------------------------------------------------------------
def shot_result_to_json(result: ShotResult) -> dict[str, Any]:
    """Serialise a :class:`ShotResult` to a plain-JSON dict."""
    return {
        "architecture": result.architecture,
        "circuit_name": result.circuit_name,
        "shots": result.shots,
        "seed": result.seed,
        "shot_offset": result.shot_offset,
        "successes": result.successes,
        "errors_per_shot": list(result.errors_per_shot),
        "records": [
            [record.shot, [list(error) for error in record.errors]]
            for record in result.records
        ],
        "max_records": result.max_records,
        "counts": result.counts,
        "num_error_sites": result.num_error_sites,
        "expected_success_rate": result.expected_success_rate,
        "analytic": (
            dataclasses.asdict(result.analytic)
            if result.analytic is not None else None
        ),
        "mechanism_counts": result.mechanism_counts,
        "mechanism_shots": result.mechanism_shots,
    }


def shot_result_from_json(payload: dict[str, Any]) -> ShotResult:
    """Rebuild a :class:`ShotResult` from its JSON form."""
    analytic = payload.get("analytic")
    return ShotResult(
        architecture=payload["architecture"],
        circuit_name=payload["circuit_name"],
        shots=int(payload["shots"]),
        seed=int(payload["seed"]),
        shot_offset=int(payload.get("shot_offset", 0)),
        successes=int(payload["successes"]),
        errors_per_shot=tuple(int(x) for x in payload["errors_per_shot"]),
        records=tuple(
            ShotRecord(
                shot=int(shot),
                errors=tuple(
                    (int(index), str(label)) for index, label in errors
                ),
            )
            for shot, errors in payload.get("records", [])
        ),
        max_records=int(payload.get("max_records", DEFAULT_MAX_RECORDS)),
        counts=(
            {str(k): int(v) for k, v in payload["counts"].items()}
            if payload.get("counts") is not None else None
        ),
        num_error_sites=int(payload.get("num_error_sites", 0)),
        expected_success_rate=float(
            payload.get("expected_success_rate", 1.0)
        ),
        analytic=(
            SimulationResult(**analytic) if analytic is not None else None
        ),
        mechanism_counts=(
            {str(k): int(v) for k, v in payload["mechanism_counts"].items()}
            if payload.get("mechanism_counts") is not None else None
        ),
        mechanism_shots=(
            {str(k): int(v) for k, v in payload["mechanism_shots"].items()}
            if payload.get("mechanism_shots") is not None else None
        ),
    )
