"""Shot-based Monte-Carlo noise simulation.

Where the analytic simulators multiply per-gate fidelities into a single
scalar, this subsystem *samples* the same model: every potential error
location (an :class:`~repro.noise.channels.ErrorSite`) triggers
independently per shot with probability ``1 - fidelity``, a triggered
unitary site applies a uniformly random non-identity Pauli, and a
triggered measurement site flips its classical bit.  A shot *succeeds*
when no site triggers, so the sampled success rate is an unbiased
estimator of the analytic product-of-fidelities success rate.

Determinism
-----------
Every shot owns a private :class:`numpy.random.Generator` seeded from
``(root seed, global shot index)``.  Results are therefore bit-identical
no matter how the shots are sharded across
:class:`~repro.exec.engine.ExecutionEngine` workers: shard ``[offset,
offset + shots)`` of a 10k-shot run draws exactly the numbers the same
shots would draw in one serial pass, and
:func:`merge_shot_results` reassembles the full run.

Vectorized sampling
-------------------
The default path batches every shot's private stream into
:class:`~repro.sim.rng_kernels.ShotLanes` and consumes it with array
kernels.  Independent (baseline) sites use inverse-CDF *skip sampling*:
one uniform decides the next triggered site directly through a
``searchsorted`` over the cumulative ``-log1p(-p)`` survival table, so a
shot consumes ``1 + number of triggers`` draws instead of one per site
(sites with ``probability >= 1`` trigger deterministically and consume
no draw; sites with ``probability == 0`` are skipped).  Correlated
(scenario) sites keep their original one-uniform-per-site stream and are
consumed column-wise over the shot axis, so scenario results are
bit-identical to earlier releases.  ``run(...,
exhaustive_shots=True)`` executes the same draw disciplines one shot at
a time with ordinary per-shot generators — the differential reference
(naming follows the scheduler's ``exhaustive_scan``) that
``tests/test_stochastic.py`` pins bit-identical to the vectorized path
across backends and shard splits.

Counts
------
With ``sample_counts=True`` the sampler also produces a measurement
histogram: error-free shots draw from the ideal distribution (computed
once per program and memoised process-wide), and erroneous shots
re-simulate the circuit with their sampled Paulis injected — once per
*distinct* triggered-error pattern, not once per shot (the vectorized
path groups shots by pattern and caches each pattern's distribution;
``last_stats`` reports the grouping).  This is only available up to
:data:`~repro.sim.statevector.MAX_STATEVECTOR_QUBITS` wide circuits;
success-rate estimation alone has no width limit.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.noise.channels import (
    BURST_SCALED_KINDS,
    HEATING_BURST,
    LEAKAGE,
    MEASURE_FLIP,
    ErrorSite,
    SiteTable,
    pauli_gates,
    sample_pauli_label,
)
from repro.noise.scenarios import (
    expected_success_rate as correlated_expected_success_rate,
)
from repro.sim.result import SimulationResult
from repro.sim.rng_kernels import ShotLanes, lanes_supported
from repro.sim.statevector import MAX_STATEVECTOR_QUBITS, StatevectorSimulator

#: 97.5 % normal quantile: the z of a two-sided 95 % confidence interval.
WILSON_Z_95 = 1.959963984540054

#: Default cap on the number of *detailed* per-shot error records kept on a
#: :class:`ShotResult` (the per-shot error counts are always complete).
DEFAULT_MAX_RECORDS = 1024


def wilson_interval(successes: int, shots: int,
                    z: float = WILSON_Z_95) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Unlike the normal approximation it stays inside [0, 1] and remains
    informative at 0 or ``shots`` successes, which is exactly the regime
    deep circuits live in (success rates far below 1/shots).
    """
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if not 0 <= successes <= shots:
        raise SimulationError(
            f"successes {successes} outside [0, {shots}]"
        )
    p_hat = successes / shots
    z2 = z * z
    denominator = 1.0 + z2 / shots
    centre = (p_hat + z2 / (2.0 * shots)) / denominator
    half_width = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / shots + z2 / (4.0 * shots * shots))
        / denominator
    )
    low = 0.0 if successes == 0 else max(0.0, centre - half_width)
    high = 1.0 if successes == shots else min(1.0, centre + half_width)
    return (low, high)


def shot_rng(seed: int, shot_index: int) -> np.random.Generator:
    """The private random generator of one global shot index.

    Seeding from the ``(root seed, shot index)`` entropy pair is what
    makes sharded execution bit-identical to a serial run.
    """
    if seed < 0 or shot_index < 0:
        raise SimulationError("seed and shot index must be non-negative")
    return np.random.default_rng((seed, shot_index))


@lru_cache(maxsize=8)
def _ideal_cumulative(num_qubits: int, gates: tuple[Gate, ...],
                      max_qubits: int) -> np.ndarray:
    """Cumulative ideal outcome distribution of one executed program.

    Memoised process-wide (keyed on the gate sequence itself) so shard
    fan-outs and resampling sweeps run the ideal statevector once per
    program instead of once per shard — ``tests/test_stochastic.py``
    counts the invocations.  The returned array is marked read-only
    because every caller shares it.
    """
    circuit = Circuit(num_qubits)
    for gate in gates:
        circuit.append(gate)
    simulator = StatevectorSimulator(max_qubits)
    cumulative = np.cumsum(simulator.probabilities(circuit))
    cumulative.setflags(write=False)
    return cumulative


@dataclass(frozen=True)
class ShotRecord:
    """The errors sampled in one (erroneous) shot.

    ``errors`` holds ``(gate execution index, Pauli label)`` pairs in the
    order the errors occurred; the label is ``"FLIP"`` for measurement
    readout errors.
    """

    shot: int
    errors: tuple[tuple[int, str], ...]

    @property
    def num_errors(self) -> int:
        return len(self.errors)


@dataclass(frozen=True)
class ShotResult:
    """Outcome of a sampled-noise run (one shard or a merged whole).

    Attributes
    ----------
    architecture, circuit_name:
        Same labels as the corresponding :class:`SimulationResult`.
    shots, seed, shot_offset:
        This result covers global shot indices ``[shot_offset,
        shot_offset + shots)`` of the run rooted at ``seed``.
    successes:
        Number of shots in which no error site triggered.
    errors_per_shot:
        Error count of every shot in the range, in shot order (complete —
        one entry per shot).
    records:
        Detailed :class:`ShotRecord` entries for erroneous shots, in shot
        order, capped at :attr:`max_records` (clean shots carry no
        record).
    max_records:
        The record cap this result was sampled under.
        :func:`merge_shot_results` re-applies it after concatenating
        shard records, so a merged run keeps exactly the records a
        serial pass would have kept.
    counts:
        Measurement histogram (bit string, qubit 0 leftmost -> count), or
        ``None`` when counts sampling was disabled.
    num_error_sites:
        How many fallible locations the executed program exposed.
    expected_success_rate:
        The analytic product of per-site survival probabilities — the
        closed-form success rate the sampled estimate converges to.
    analytic:
        The corresponding analytic :class:`SimulationResult`, when the
        producing simulator attached one (interop with every consumer of
        the analytic pipeline).
    mechanism_counts:
        Per-run noise telemetry: total triggered events by site kind
        (``"pauli2"``, ``"crosstalk"``, ``"leakage"``,
        ``"heating_burst"``, ...) across every shot in the range.  Bursts
        are counted here even though they are not error events.
    mechanism_shots:
        Number of shots in which each site kind *triggered* at least
        once.  For error kinds this is the empirical per-mechanism
        shot-loss attribution; ``"heating_burst"`` counts shots where a
        burst fired, which need not have failed (a burst only raises
        later error probabilities).
    """

    architecture: str
    circuit_name: str
    shots: int
    seed: int
    shot_offset: int
    successes: int
    errors_per_shot: tuple[int, ...]
    records: tuple[ShotRecord, ...] = ()
    max_records: int = DEFAULT_MAX_RECORDS
    counts: dict[str, int] | None = None
    num_error_sites: int = 0
    expected_success_rate: float = 1.0
    analytic: SimulationResult | None = None
    mechanism_counts: dict[str, int] | None = None
    mechanism_shots: dict[str, int] | None = None

    def __post_init__(self) -> None:
        if self.shots <= 0:
            raise SimulationError("a shot result needs at least one shot")
        if not 0 <= self.successes <= self.shots:
            raise SimulationError("successes outside [0, shots]")
        if len(self.errors_per_shot) != self.shots:
            raise SimulationError(
                "errors_per_shot must have exactly one entry per shot"
            )
        if len(self.records) > self.max_records:
            raise SimulationError("records exceed the max_records cap")

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    @property
    def success_rate(self) -> float:
        """Sampled success probability (successes / shots)."""
        return self.successes / self.shots

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """95 % Wilson confidence interval of the success rate."""
        return wilson_interval(self.successes, self.shots)

    @property
    def mean_errors_per_shot(self) -> float:
        """Average number of sampled errors per shot."""
        return sum(self.errors_per_shot) / self.shots

    def agrees_with_analytic(self, rate: float | None = None) -> bool:
        """True when the analytic rate lies inside the 95 % interval.

        *rate* defaults to the attached analytic result's success rate
        (falling back to :attr:`expected_success_rate`).
        """
        if rate is None:
            rate = (self.analytic.success_rate if self.analytic is not None
                    else self.expected_success_rate)
        low, high = self.confidence_interval
        return low <= rate <= high

    # ------------------------------------------------------------------
    # Interop with the analytic pipeline
    # ------------------------------------------------------------------
    def to_simulation_result(self) -> SimulationResult:
        """Package the sampled estimate as a :class:`SimulationResult`.

        Structural fields (gate counts, moves, execution time) come from
        the attached analytic result when present; the success rate is the
        sampled estimate and ``extras`` carries shots and the confidence
        interval, so sampled and analytic results flow through the same
        comparison and reporting code.
        """
        rate = self.success_rate
        low, high = self.confidence_interval
        extras = {
            "shots": float(self.shots),
            "ci_low": low,
            "ci_high": high,
            "sampled": 1.0,
        }
        if self.mechanism_counts:
            for kind, count in self.mechanism_counts.items():
                extras[f"errors_{kind}"] = float(count)
        if self.mechanism_shots:
            for kind, count in self.mechanism_shots.items():
                extras[f"shots_with_{kind}"] = float(count)
        if self.analytic is not None:
            base = self.analytic
            extras = {**base.extras, **extras}
            return dataclasses.replace(
                base,
                success_rate=rate,
                log10_success_rate=(
                    math.log10(rate) if rate > 0 else float("-inf")
                ),
                extras=extras,
            )
        return SimulationResult(
            architecture=self.architecture,
            circuit_name=self.circuit_name,
            success_rate=rate,
            log10_success_rate=math.log10(rate) if rate > 0 else float("-inf"),
            execution_time_us=0.0,
            num_gates=0,
            num_two_qubit_gates=0,
            num_moves=0,
            move_distance_um=0.0,
            average_gate_fidelity=0.0,
            worst_gate_fidelity=0.0,
            extras=extras,
        )

    def summary(self) -> str:
        """One-line human-readable result."""
        low, high = self.confidence_interval
        return (
            f"{self.architecture:<16} {self.circuit_name:<8} "
            f"shots={self.shots} success={self.success_rate:.4f} "
            f"[{low:.4f}, {high:.4f}] "
            f"analytic={self.expected_success_rate:.3e} "
            f"mean_errors={self.mean_errors_per_shot:.2f}"
        )


def merge_shot_results(results: Sequence[ShotResult]) -> ShotResult:
    """Reassemble contiguous shards into the full run's :class:`ShotResult`.

    Shards must share architecture, circuit, seed and error model, and
    their shot ranges must tile ``[first offset, first offset + total)``
    without gaps.  Because every shot is seeded independently, the merge
    of ``N`` shards is bit-identical to a single serial run.

    Mechanism telemetry merges by summation, but only when *every* shard
    carries it: a shard served from a pre-telemetry disk cache
    deserialises with ``mechanism_counts=None``, and summing around a
    missing shard would fabricate under-counted totals, so the merged
    telemetry conservatively degrades to ``None`` instead.
    """
    if not results:
        raise SimulationError("cannot merge an empty list of shot results")
    ordered = sorted(results, key=lambda result: result.shot_offset)
    first = ordered[0]
    counts: dict[str, int] | None = (
        {} if all(result.counts is not None for result in ordered) else None
    )
    mechanism_counts: dict[str, int] | None = (
        {} if all(result.mechanism_counts is not None for result in ordered)
        else None
    )
    mechanism_shots: dict[str, int] | None = (
        {} if all(result.mechanism_shots is not None for result in ordered)
        else None
    )
    records: list[ShotRecord] = []
    errors_per_shot: list[int] = []
    successes = 0
    next_offset = first.shot_offset
    for result in ordered:
        if (result.architecture != first.architecture
                or result.circuit_name != first.circuit_name
                or result.seed != first.seed
                or result.num_error_sites != first.num_error_sites
                or result.max_records != first.max_records):
            raise SimulationError(
                "cannot merge shot results from different runs"
            )
        if result.shot_offset != next_offset:
            raise SimulationError(
                f"shot shards are not contiguous: expected offset "
                f"{next_offset}, got {result.shot_offset}"
            )
        next_offset += result.shots
        successes += result.successes
        errors_per_shot.extend(result.errors_per_shot)
        records.extend(result.records)
        if counts is not None and result.counts is not None:
            for outcome, count in result.counts.items():
                counts[outcome] = counts.get(outcome, 0) + count
        if mechanism_counts is not None and result.mechanism_counts is not None:
            for kind, count in result.mechanism_counts.items():
                mechanism_counts[kind] = mechanism_counts.get(kind, 0) + count
        if mechanism_shots is not None and result.mechanism_shots is not None:
            for kind, count in result.mechanism_shots.items():
                mechanism_shots[kind] = mechanism_shots.get(kind, 0) + count
    return ShotResult(
        architecture=first.architecture,
        circuit_name=first.circuit_name,
        shots=next_offset - first.shot_offset,
        seed=first.seed,
        shot_offset=first.shot_offset,
        successes=successes,
        errors_per_shot=tuple(errors_per_shot),
        # shards cap records independently; re-applying the cap to the
        # concatenation keeps exactly what one serial pass would keep
        records=tuple(records[:first.max_records]),
        max_records=first.max_records,
        counts=counts,
        num_error_sites=first.num_error_sites,
        expected_success_rate=first.expected_success_rate,
        analytic=first.analytic,
        mechanism_counts=mechanism_counts,
        mechanism_shots=mechanism_shots,
    )


@dataclass
class StochasticSampler:
    """Monte-Carlo sampler over a fixed list of error sites.

    The producing simulator supplies the executed gate sequence and the
    error sites derived from its heating-aware fidelities; the sampler is
    architecture-agnostic from there on.

    Parameters
    ----------
    architecture, circuit_name:
        Labels carried onto the :class:`ShotResult`.
    sites:
        The fallible locations of the executed program.
    gates:
        The executed gate sequence (dependency-respecting order).  Only
        needed for counts sampling.
    num_qubits:
        Register width of the executed program (counts sampling only).
    analytic:
        Optional analytic result to attach to every :class:`ShotResult`.
    """

    architecture: str
    circuit_name: str
    sites: Sequence[ErrorSite]
    gates: Sequence[Gate] | None = None
    num_qubits: int | None = None
    analytic: SimulationResult | None = None
    burst_multiplier: float = 1.0
    #: The producing simulator may pass the closed-form rate it already
    #: computed (the correlated burst DP is too heavy to run twice).
    expected_rate: float | None = None
    max_statevector_qubits: int = MAX_STATEVECTOR_QUBITS
    _table: SiteTable = field(init=False, repr=False, compare=False)
    _probabilities: np.ndarray = field(init=False, repr=False)
    _correlated: bool = field(init=False, repr=False)
    _expected_success_rate: float = field(init=False, repr=False)
    #: Diagnostics of the most recent :meth:`run`: sampling ``mode``,
    #: statevector ``resimulations``, counts-mode ``distinct_patterns``
    #: and ``replayed_shots`` (shots that needed a scalar generator).
    last_stats: dict[str, Any] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _scan_cache: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None \
        = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._table = SiteTable.from_sites(self.sites)
        self._probabilities = self._table.probabilities
        # Scenario sites (crosstalk/leakage/bursts) switch the per-shot
        # loop to the correlated path; plain Eq. 4 sites keep the PR-2
        # fast path and its exact random stream.
        self._correlated = self._table.correlated
        # Computed once: the correlated form runs the per-window burst
        # DP, which is too heavy to redo on every property access.
        self._expected_success_rate = self._compute_expected_success_rate()

    # ------------------------------------------------------------------
    # The analytic reference
    # ------------------------------------------------------------------
    def _compute_expected_success_rate(self) -> float:
        if self.expected_rate is not None:
            return self.expected_rate
        if self._correlated:
            return correlated_expected_success_rate(
                self.sites, self.burst_multiplier
            )
        log_total = 0.0
        for probability in self._probabilities:
            if probability >= 1.0:
                return 0.0
            log_total += math.log1p(-probability)
        return math.exp(log_total)

    @property
    def expected_success_rate(self) -> float:
        """P(no error event) — the analytic rate the sampler converges to.

        Independent sites multiply their survival probabilities; with
        heating-burst sites present the exact per-window dynamic program
        of :mod:`repro.noise.scenarios` is used instead, so correlated
        runs still converge to a closed-form reference.
        """
        return self._expected_success_rate

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def run(self, shots: int, *, seed: int = 0, shot_offset: int = 0,
            sample_counts: bool = False,
            max_records: int = DEFAULT_MAX_RECORDS,
            exhaustive_shots: bool = False) -> ShotResult:
        """Sample shots ``[shot_offset, shot_offset + shots)``.

        Each shot consumes a fixed, documented draw sequence from its
        private ``(seed, shot index)`` generator — trigger draws (the
        skip-sampling scan for independent sites, one uniform per site
        for correlated ones), then one Pauli choice per triggered
        Pauli-like site, then (counts mode) one outcome uniform plus the
        leaked-qubit coin flips — so results do not depend on how shots
        are batched, sharded or backed.

        ``exhaustive_shots=True`` forces the scalar per-shot reference
        implementation of exactly the same draw discipline (one real
        generator per shot, naming follows the scheduler's
        ``exhaustive_scan``); it exists for differential testing and is
        also the automatic fallback for entropy shapes the batched
        kernels do not model (see
        :func:`~repro.sim.rng_kernels.lanes_supported`).
        """
        if shots <= 0:
            raise SimulationError("shots must be positive")
        if max_records < 0:
            raise SimulationError("max_records cannot be negative")
        if seed < 0 or shot_offset < 0:
            raise SimulationError("seed and shot index must be non-negative")
        if exhaustive_shots or not lanes_supported(
            seed, shot_offset + shots - 1
        ):
            return self._run_exhaustive(shots, seed, shot_offset,
                                        sample_counts, max_records)
        return self._run_vectorized(shots, seed, shot_offset,
                                    sample_counts, max_records)

    def _make_result(self, shots: int, seed: int, shot_offset: int,
                     successes: int, errors_per_shot: Sequence[int],
                     records: Sequence[ShotRecord], max_records: int,
                     counts: dict[str, int] | None,
                     mechanism_counts: dict[str, int],
                     mechanism_shots: dict[str, int]) -> ShotResult:
        return ShotResult(
            architecture=self.architecture,
            circuit_name=self.circuit_name,
            shots=shots,
            seed=seed,
            shot_offset=shot_offset,
            successes=successes,
            errors_per_shot=tuple(errors_per_shot),
            records=tuple(records),
            max_records=max_records,
            counts=counts,
            num_error_sites=len(self.sites),
            expected_success_rate=self.expected_success_rate,
            analytic=self.analytic,
            mechanism_counts=mechanism_counts,
            mechanism_shots=mechanism_shots,
        )

    # ------------------------------------------------------------------
    # Vectorized sampling (the default path)
    # ------------------------------------------------------------------
    def _scan_table(self) -> tuple[np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]:
        """Cumulative-hazard tables of the independent sites (cached).

        ``scan_positions`` are the sites with ``0 < p < 1`` in execution
        order; ``hazards[k]`` is the cumulative ``-log1p(-p)`` hazard
        through scan site ``k`` (strictly increasing), and
        ``boundaries`` is the same table shifted right by one so entry
        ``r`` is the hazard already consumed when the scan resumes at
        scan index ``r``.  ``sure_positions`` (``p >= 1``) trigger on
        every shot without consuming a draw; ``p <= 0`` sites never
        trigger and are excluded entirely.
        """
        cached = self._scan_cache
        if cached is None:
            probabilities = self._probabilities
            scan_mask = (probabilities > 0.0) & (probabilities < 1.0)
            scan_positions = np.flatnonzero(scan_mask)
            sure_positions = np.flatnonzero(probabilities >= 1.0)
            hazards = np.cumsum(-np.log1p(-probabilities[scan_positions]))
            boundaries = np.concatenate(([0.0], hazards))
            cached = (scan_positions, sure_positions, hazards, boundaries)
            self._scan_cache = cached
        return cached

    def _independent_triggers(
        self, lanes: ShotLanes, shots: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sparse ``(shot, site position)`` triggers, lexsorted by shot.

        The skip-sampling scan over all lanes at once: each round draws
        one uniform per still-active lane, converts it to an exponential
        hazard increment and jumps straight to the lane's next triggered
        site via ``searchsorted`` on the cumulative hazard table.  Lanes
        whose jump passes the last scan site retire, so a shot consumes
        ``1 + number of triggers`` draws however many sites exist.
        """
        scan_positions, sure_positions, hazards, boundaries = (
            self._scan_table()
        )
        num_scan = hazards.shape[0]
        shot_parts: list[np.ndarray] = []
        position_parts: list[np.ndarray] = []
        if num_scan:
            active = np.arange(shots, dtype=np.int64)
            resume = np.zeros(shots, dtype=np.int64)
            while active.size:
                draws = lanes.draw(active)
                targets = boundaries[resume[active]] - np.log1p(-draws)
                jumps = np.searchsorted(hazards, targets, side="right")
                hit = jumps < num_scan
                hit_lanes = active[hit]
                hit_jumps = jumps[hit]
                shot_parts.append(hit_lanes)
                position_parts.append(scan_positions[hit_jumps])
                resume[hit_lanes] = hit_jumps + 1
                active = hit_lanes[hit_jumps + 1 < num_scan]
        if sure_positions.size:
            shot_parts.append(
                np.repeat(np.arange(shots, dtype=np.int64),
                          sure_positions.size)
            )
            position_parts.append(np.tile(sure_positions, shots))
        if not shot_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        trigger_shots = np.concatenate(shot_parts)
        trigger_positions = np.concatenate(position_parts)
        order = np.lexsort((trigger_positions, trigger_shots))
        return trigger_shots[order], trigger_positions[order]

    def _scan_shot_reference(self, rng: np.random.Generator) -> list[int]:
        """Scalar skip-sampling scan of one shot (site positions, sorted).

        Exactly the draw discipline of :meth:`_independent_triggers`
        executed with one real per-shot generator — the
        ``exhaustive_shots`` reference the vectorized path is pinned
        bit-identical to.
        """
        scan_positions, sure_positions, hazards, boundaries = (
            self._scan_table()
        )
        triggered = [int(position) for position in sure_positions]
        num_scan = hazards.shape[0]
        resume = 0
        while resume < num_scan:
            draw = rng.random()
            target = boundaries[resume] - np.log1p(-draw)
            jump = int(np.searchsorted(hazards, target, side="right"))
            if jump >= num_scan:
                break
            triggered.append(int(scan_positions[jump]))
            resume = jump + 1
        triggered.sort()
        return triggered

    def _burst_scaled(self, probability: float,
                      active_counts: np.ndarray) -> np.ndarray:
        """Per-lane burst-scaled trigger probability.

        Computed once per distinct burst count with the *scalar*
        arithmetic of the reference path (``min(1.0, p * multiplier **
        active)``, overflow saturating to 1.0), so the vectorized
        comparison is bit-equal to the per-shot one.
        """
        scaled = np.full(active_counts.shape[0], probability)
        for active in np.unique(active_counts).tolist():
            if not active:
                continue
            try:
                value = min(
                    1.0, probability * self.burst_multiplier ** active
                )
            except OverflowError:
                value = 1.0
            scaled[active_counts == active] = value
        return scaled

    def _correlated_triggers(
        self, lanes: ShotLanes, shots: int
    ) -> tuple[np.ndarray, np.ndarray, dict[str, int], dict[str, int]]:
        """Column-wise correlated sampling over all lanes at once.

        Consumes exactly the v1 stream — one uniform per site per shot,
        in site order — and reproduces the burst-scaling, leakage
        suppression and telemetry semantics of
        :meth:`_sample_correlated_shot` for every lane in parallel.
        Returns lexsorted sparse triggers plus the mechanism telemetry.
        """
        bursts_active: dict[int, np.ndarray] = {}
        leaked: dict[int, np.ndarray] = {}
        mechanism_counts: dict[str, int] = {}
        kind_masks: dict[str, np.ndarray] = {}
        shot_parts: list[np.ndarray] = []
        position_parts: list[np.ndarray] = []

        def tally(kind: str, triggered: np.ndarray) -> int:
            total = int(np.count_nonzero(triggered))
            if total:
                mechanism_counts[kind] = (
                    mechanism_counts.get(kind, 0) + total
                )
                mask = kind_masks.get(kind)
                if mask is None:
                    kind_masks[kind] = triggered.copy()
                else:
                    mask |= triggered
            return total

        for position, site in enumerate(self.sites):
            draws = lanes.draw()
            if site.kind == HEATING_BURST:
                triggered = draws < site.probability
                if tally(HEATING_BURST, triggered):
                    window = bursts_active.get(site.window)
                    if window is None:
                        window = np.zeros(shots, dtype=np.int64)
                        bursts_active[site.window] = window
                    window += triggered
                continue
            window = (bursts_active.get(site.window)
                      if site.kind in BURST_SCALED_KINDS else None)
            if window is None:
                triggered = draws < site.probability
            else:
                triggered = draws < self._burst_scaled(site.probability,
                                                       window)
            suppressed: np.ndarray | None = None
            for qubit in site.qubits:
                qubit_leaked = leaked.get(qubit)
                if qubit_leaked is not None:
                    suppressed = (qubit_leaked if suppressed is None
                                  else suppressed | qubit_leaked)
            if suppressed is not None:
                triggered = triggered & ~suppressed
            if site.kind == LEAKAGE:
                for qubit in site.qubits:
                    qubit_leaked = leaked.get(qubit)
                    if qubit_leaked is None:
                        leaked[qubit] = triggered.copy()
                    else:
                        qubit_leaked |= triggered
            if tally(site.kind, triggered):
                lanes_hit = np.flatnonzero(triggered)
                shot_parts.append(lanes_hit)
                position_parts.append(
                    np.full(lanes_hit.size, position, dtype=np.int64)
                )
        mechanism_shots = {
            kind: int(np.count_nonzero(mask))
            for kind, mask in kind_masks.items()
        }
        if not shot_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, mechanism_counts, mechanism_shots
        trigger_shots = np.concatenate(shot_parts)
        trigger_positions = np.concatenate(position_parts)
        order = np.lexsort((trigger_positions, trigger_shots))
        return (trigger_shots[order], trigger_positions[order],
                mechanism_counts, mechanism_shots)

    def _trigger_telemetry(
        self, trigger_shots: np.ndarray, trigger_positions: np.ndarray,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Mechanism telemetry aggregated from sparse triggers."""
        mechanism_counts: dict[str, int] = {}
        mechanism_shots: dict[str, int] = {}
        if trigger_shots.size:
            site_kinds = self._table.kinds
            for kind in dict.fromkeys(site_kinds):
                selector = np.array(
                    [site_kind == kind for site_kind in site_kinds],
                    dtype=bool,
                )[trigger_positions]
                total = int(np.count_nonzero(selector))
                if total:
                    mechanism_counts[kind] = total
                    mechanism_shots[kind] = int(
                        np.unique(trigger_shots[selector]).size
                    )
        return mechanism_counts, mechanism_shots

    def _run_vectorized(self, shots: int, seed: int, shot_offset: int,
                        sample_counts: bool,
                        max_records: int) -> ShotResult:
        """Array-kernel sampling of one whole shot block.

        Trigger draws happen on :class:`~repro.sim.rng_kernels.ShotLanes`
        (one PCG64 lane per shot); only shots whose triggers consume
        scalar tail draws — Pauli labels, leak coin flips — are handed a
        real mid-stream :class:`numpy.random.Generator`, and counts-mode
        re-simulation runs once per *distinct* triggered-error pattern.
        """
        base_circuit: Circuit | None = None
        ideal_cumulative: np.ndarray | None = None
        if sample_counts:
            base_circuit = self._counts_circuit()
            assert self.gates is not None
            ideal_cumulative = _ideal_cumulative(
                base_circuit.num_qubits, tuple(self.gates),
                self.max_statevector_qubits,
            )
        lanes = ShotLanes(
            seed,
            np.arange(shot_offset, shot_offset + shots, dtype=np.uint64),
        )
        if self._correlated:
            trigger_shots, trigger_positions, mechanism_counts, \
                mechanism_shots = self._correlated_triggers(lanes, shots)
        else:
            trigger_shots, trigger_positions = (
                self._independent_triggers(lanes, shots)
            )
            mechanism_counts, mechanism_shots = self._trigger_telemetry(
                trigger_shots, trigger_positions
            )
        counts_per_shot = np.bincount(trigger_shots, minlength=shots)
        successes = int(np.count_nonzero(counts_per_shot == 0))
        starts = np.zeros(shots + 1, dtype=np.int64)
        np.cumsum(counts_per_shot, out=starts[1:])
        erroneous = np.flatnonzero(counts_per_shot)
        recorded = erroneous[:max_records]
        recorded_set = set(recorded.tolist())

        label_site = self._table.label_mask
        leak_site = self._table.leak_mask
        label_shots = np.unique(trigger_shots[label_site[trigger_positions]])
        if sample_counts:
            replay = np.unique(trigger_shots[
                label_site[trigger_positions]
                | leak_site[trigger_positions]
            ])
        else:
            # label draws of unrecorded shots are unobservable (per-shot
            # streams are independent), so only recorded shots replay
            replay = np.intersect1d(recorded, label_shots,
                                    assume_unique=True)
        replay_set = set(replay.tolist())

        counts: dict[str, int] | None = {} if sample_counts else None
        records_map: dict[int, ShotRecord] = {}
        pattern_cache: dict[Any, np.ndarray] = {}
        resimulations = 0
        # recorded shots without label draws read their records straight
        # off the sparse triggers (FLIP/LEAK labels are fixed strings)
        for shot in recorded.tolist():
            if shot in replay_set:
                continue
            errors = tuple(
                (self.sites[position].index,
                 "FLIP" if self.sites[position].kind == MEASURE_FLIP
                 else "LEAK")
                for position in
                trigger_positions[starts[shot]:starts[shot + 1]].tolist()
            )
            records_map[shot] = ShotRecord(shot=shot_offset + shot,
                                           errors=errors)
        n_out = base_circuit.num_qubits if base_circuit is not None else 0
        for shot in replay.tolist():
            generator = lanes.borrow_generator(shot)
            errors_list: list[tuple[int, str]] = []
            flip_qubits: list[int] = []
            leaked_at: dict[int, int] = {}
            injections: dict[int, list[Gate]] = {}
            label_key: list[tuple[int, str]] = []
            positions = (
                trigger_positions[starts[shot]:starts[shot + 1]].tolist()
            )
            for position in positions:
                site = self.sites[position]
                if site.kind == LEAKAGE:
                    for qubit in site.qubits:
                        leaked_at.setdefault(qubit, site.index)
                    errors_list.append((site.index, "LEAK"))
                elif site.kind == MEASURE_FLIP:
                    errors_list.append((site.index, "FLIP"))
                    flip_qubits.extend(site.qubits)
                else:
                    label = sample_pauli_label(site, generator)
                    errors_list.append((site.index, label))
                    label_key.append((position, label))
                    if sample_counts:
                        extra = pauli_gates(site, label)
                        if extra:
                            injections.setdefault(
                                site.index, []
                            ).extend(extra)
            if shot in recorded_set:
                records_map[shot] = ShotRecord(
                    shot=shot_offset + shot, errors=tuple(errors_list)
                )
            if counts is not None:
                assert base_circuit is not None
                assert ideal_cumulative is not None
                if not injections and not leaked_at:
                    cumulative = ideal_cumulative
                else:
                    key = (tuple(label_key),
                           tuple(sorted(leaked_at.items())))
                    cumulative = pattern_cache.get(key)
                    if cumulative is None:
                        perturbed = self._build_perturbed(
                            injections, leaked_at, base_circuit
                        )
                        simulator = StatevectorSimulator(
                            self.max_statevector_qubits
                        )
                        cumulative = np.cumsum(
                            simulator.probabilities(perturbed)
                        )
                        pattern_cache[key] = cumulative
                        resimulations += 1
                index = self._draw_outcome_index(
                    generator, cumulative, n_out, flip_qubits
                )
                for qubit in sorted(leaked_at):
                    bit = 1 if generator.random() < 0.5 else 0
                    mask = 1 << (n_out - 1 - qubit)
                    index = (index | mask) if bit else (index & ~mask)
                outcome = format(index, f"0{n_out}b")
                counts[outcome] = counts.get(outcome, 0) + 1
        if counts is not None:
            assert ideal_cumulative is not None
            batched = np.setdiff1d(np.arange(shots, dtype=np.int64),
                                   replay, assume_unique=True)
            if batched.size:
                flip_mask_site = np.zeros(len(self.sites), dtype=np.int64)
                for position in np.flatnonzero(self._table.flip_mask):
                    mask = 0
                    for qubit in self.sites[position].qubits:
                        mask ^= 1 << (n_out - 1 - qubit)
                    flip_mask_site[position] = mask
                shot_flips = np.zeros(shots, dtype=np.int64)
                flips = flip_mask_site[trigger_positions] != 0
                np.bitwise_xor.at(
                    shot_flips, trigger_shots[flips],
                    flip_mask_site[trigger_positions[flips]],
                )
                draws = lanes.draw(batched)
                indices = np.searchsorted(ideal_cumulative, draws,
                                          side="right")
                np.minimum(indices, len(ideal_cumulative) - 1,
                           out=indices)
                indices ^= shot_flips[batched]
                unique_indices, tallies = np.unique(indices,
                                                    return_counts=True)
                for index, tally_count in zip(unique_indices.tolist(),
                                              tallies.tolist()):
                    outcome = format(index, f"0{n_out}b")
                    counts[outcome] = counts.get(outcome, 0) + tally_count
        self.last_stats = {
            "mode": "vectorized",
            "resimulations": resimulations,
            "distinct_patterns": len(pattern_cache),
            "replayed_shots": int(replay.size),
        }
        return self._make_result(
            shots, seed, shot_offset, successes,
            counts_per_shot.tolist(),
            tuple(records_map[shot] for shot in recorded.tolist()),
            max_records, counts, mechanism_counts, mechanism_shots,
        )

    # ------------------------------------------------------------------
    # Exhaustive per-shot reference (differential mode and fallback)
    # ------------------------------------------------------------------
    def _run_exhaustive(self, shots: int, seed: int, shot_offset: int,
                        sample_counts: bool,
                        max_records: int) -> ShotResult:
        """One real generator per shot — the reference implementation."""
        base_circuit: Circuit | None = None
        ideal_cumulative: np.ndarray | None = None
        if sample_counts:
            base_circuit = self._counts_circuit()
            assert self.gates is not None
            ideal_cumulative = _ideal_cumulative(
                base_circuit.num_qubits, tuple(self.gates),
                self.max_statevector_qubits,
            )
        successes = 0
        resimulations = 0
        errors_per_shot: list[int] = []
        records: list[ShotRecord] = []
        counts: dict[str, int] | None = {} if sample_counts else None
        mechanism_counts: dict[str, int] = {}
        mechanism_shots: dict[str, int] = {}
        for local_shot in range(shots):
            shot = shot_offset + local_shot
            rng = shot_rng(seed, shot)
            shot_kinds: set[str] = set()
            if self._correlated:
                errors, flip_qubits, leaked_at, injections = (
                    self._sample_correlated_shot(
                        rng, mechanism_counts, shot_kinds,
                        want_injections=sample_counts,
                    )
                )
            else:
                triggered = self._scan_shot_reference(rng)
                errors = []
                flip_qubits = []
                for position in triggered:
                    site = self.sites[position]
                    label = sample_pauli_label(site, rng)
                    errors.append((site.index, label))
                    shot_kinds.add(site.kind)
                    mechanism_counts[site.kind] = (
                        mechanism_counts.get(site.kind, 0) + 1
                    )
                    if site.kind == MEASURE_FLIP:
                        flip_qubits.extend(site.qubits)
            errors_per_shot.append(len(errors))
            if not errors:
                successes += 1
            elif len(records) < max_records:
                records.append(ShotRecord(shot=shot, errors=tuple(errors)))
            if counts is not None:
                if self._correlated:
                    outcome, resimulated = self._correlated_outcome(
                        rng, injections, flip_qubits, leaked_at,
                        base_circuit, ideal_cumulative,
                    )
                else:
                    outcome, resimulated = self._sample_outcome(
                        rng, triggered, errors, flip_qubits,
                        base_circuit, ideal_cumulative,
                    )
                resimulations += resimulated
                counts[outcome] = counts.get(outcome, 0) + 1
            for kind in shot_kinds:
                mechanism_shots[kind] = mechanism_shots.get(kind, 0) + 1
        self.last_stats = {
            "mode": "exhaustive",
            "resimulations": resimulations,
        }
        return self._make_result(
            shots, seed, shot_offset, successes, errors_per_shot,
            records, max_records, counts, mechanism_counts,
            mechanism_shots,
        )

    # ------------------------------------------------------------------
    # Correlated (scenario) sampling
    # ------------------------------------------------------------------
    def _sample_correlated_shot(
        self, rng: np.random.Generator,
        mechanism_counts: dict[str, int], shot_kinds: set[str],
        want_injections: bool = False,
    ) -> tuple[list[tuple[int, str]], list[int], dict[int, int],
               dict[int, list[Gate]]]:
        """One shot of the correlated-noise model.

        The draw sequence is fixed and documented: one uniform per site
        (in site order), then one Pauli choice per triggered Pauli-like
        site, so sharded runs stay bit-identical to serial ones.  Sites
        are processed in execution order; a triggered heating burst
        scales the probability of every later burst-scalable site in its
        window, and a leaked qubit suppresses every later site whose own
        qubits touch it (the shot already failed — later gates on the
        leaked qubit act as identity-with-error).  Crosstalk kicks from a
        gate with a leaked operand still fire: the laser pulses either
        way.

        Returns ``(errors, flip_qubits, leaked_at, injections)`` where
        ``leaked_at`` maps leaked qubit -> gate index of the leak and
        ``injections`` maps gate index -> Pauli gates for counts
        re-simulation (only materialised when *want_injections* — i.e.
        counts mode — asks for it; success-rate shots skip the Gate
        allocations).
        """
        n = len(self._probabilities)
        uniforms = rng.random(n) if n else np.empty(0)
        bursts_active: dict[int, int] = {}
        leaked_at: dict[int, int] = {}
        errors: list[tuple[int, str]] = []
        flip_qubits: list[int] = []
        injections: dict[int, list[Gate]] = {}
        for position, site in enumerate(self.sites):
            if site.kind == HEATING_BURST:
                if uniforms[position] < site.probability:
                    bursts_active[site.window] = (
                        bursts_active.get(site.window, 0) + 1
                    )
                    shot_kinds.add(HEATING_BURST)
                    mechanism_counts[HEATING_BURST] = (
                        mechanism_counts.get(HEATING_BURST, 0) + 1
                    )
                continue
            if leaked_at and any(q in leaked_at for q in site.qubits):
                continue
            probability = site.probability
            if site.kind in BURST_SCALED_KINDS:
                active = bursts_active.get(site.window, 0)
                if active:
                    try:
                        probability = min(
                            1.0,
                            probability * self.burst_multiplier ** active,
                        )
                    except OverflowError:
                        # enough active bursts to overflow a float pow
                        # saturate exactly like the capped product would
                        probability = 1.0
            if uniforms[position] >= probability:
                continue
            shot_kinds.add(site.kind)
            mechanism_counts[site.kind] = (
                mechanism_counts.get(site.kind, 0) + 1
            )
            if site.kind == LEAKAGE:
                for qubit in site.qubits:
                    leaked_at.setdefault(qubit, site.index)
                errors.append((site.index, "LEAK"))
            elif site.kind == MEASURE_FLIP:
                errors.append((site.index, "FLIP"))
                flip_qubits.extend(site.qubits)
            else:
                label = sample_pauli_label(site, rng)
                errors.append((site.index, label))
                if want_injections:
                    extra = pauli_gates(site, label)
                    if extra:
                        injections.setdefault(site.index, []).extend(extra)
        return errors, flip_qubits, leaked_at, injections

    def _build_perturbed(self, injections: dict[int, list[Gate]],
                         leaked_at: dict[int, int],
                         base_circuit: Circuit) -> Circuit:
        """The erroneous circuit of one triggered-error pattern.

        Sampled Pauli gates are injected right after their base gate;
        gates strictly after a leak that touch the leaked qubit are
        dropped (the shared builder keeps the vectorized pattern cache
        and the per-shot reference byte-identical by construction).
        """
        assert self.gates is not None
        perturbed = Circuit(base_circuit.num_qubits, name=base_circuit.name)
        for index, gate in enumerate(self.gates):
            dropped = any(
                leaked_at.get(qubit, index + 1) < index
                for qubit in gate.qubits
            )
            if not dropped:
                perturbed.append(gate)
            for extra in injections.get(index, ()):
                perturbed.append(extra)
        return perturbed

    def _correlated_outcome(
        self, rng: np.random.Generator,
        injections: dict[int, list[Gate]],
        flip_qubits: list[int],
        leaked_at: dict[int, int],
        base_circuit: Circuit | None,
        ideal_cumulative: np.ndarray | None,
    ) -> tuple[str, int]:
        """Sample one measurement outcome under the correlated model.

        Gates strictly after a leak that touch the leaked qubit are
        dropped from the re-simulated circuit, and the leaked qubit's
        measured bit is replaced by a fair coin flip (one uniform per
        leaked qubit, in qubit order) after the outcome draw.  Returns
        the outcome and how many statevector re-simulations it cost.
        """
        assert base_circuit is not None and ideal_cumulative is not None
        resimulated = 0
        if not injections and not leaked_at:
            cumulative = ideal_cumulative
        else:
            perturbed = self._build_perturbed(injections, leaked_at,
                                              base_circuit)
            simulator = StatevectorSimulator(self.max_statevector_qubits)
            cumulative = np.cumsum(simulator.probabilities(perturbed))
            resimulated = 1
        n = base_circuit.num_qubits
        index = self._draw_outcome_index(rng, cumulative, n, flip_qubits)
        for qubit in sorted(leaked_at):
            bit = 1 if rng.random() < 0.5 else 0
            mask = 1 << (n - 1 - qubit)
            index = (index | mask) if bit else (index & ~mask)
        return format(index, f"0{n}b"), resimulated

    @staticmethod
    def _draw_outcome_index(rng: np.random.Generator,
                            cumulative: np.ndarray, n: int,
                            flip_qubits: list[int]) -> int:
        """One outcome draw with readout flips applied (qubit 0 = MSB).

        Shared by the baseline and correlated counts paths so the draw,
        clamp and bit-order conventions cannot diverge.
        """
        draw = rng.random()
        index = int(np.searchsorted(cumulative, draw, side="right"))
        index = min(index, len(cumulative) - 1)
        for qubit in flip_qubits:
            index ^= 1 << (n - 1 - qubit)
        return index

    # ------------------------------------------------------------------
    # Counts machinery
    # ------------------------------------------------------------------
    def _counts_circuit(self) -> Circuit:
        if self.gates is None or self.num_qubits is None:
            raise SimulationError(
                "counts sampling needs the executed gate sequence; "
                "construct the sampler with gates= and num_qubits= or "
                "pass sample_counts=False"
            )
        if self.num_qubits > self.max_statevector_qubits:
            raise SimulationError(
                f"counts sampling is limited to "
                f"{self.max_statevector_qubits} qubits, got "
                f"{self.num_qubits}; success-rate sampling "
                f"(sample_counts=False) has no width limit"
            )
        circuit = Circuit(self.num_qubits, name=self.circuit_name)
        for gate in self.gates:
            circuit.append(gate)
        return circuit

    def _sample_outcome(self, rng: np.random.Generator,
                        triggered: Sequence[int],
                        errors: list[tuple[int, str]],
                        flip_qubits: list[int],
                        base_circuit: Circuit | None,
                        ideal_cumulative: np.ndarray | None,
                        ) -> tuple[str, int]:
        assert base_circuit is not None and ideal_cumulative is not None
        needs_resim = any(
            self.sites[int(position)].kind != MEASURE_FLIP
            for position in triggered
        )
        resimulated = 0
        if not needs_resim:
            cumulative = ideal_cumulative
        else:
            perturbed = self._perturbed_circuit(triggered, errors,
                                                base_circuit)
            simulator = StatevectorSimulator(self.max_statevector_qubits)
            cumulative = np.cumsum(simulator.probabilities(perturbed))
            resimulated = 1
        n = base_circuit.num_qubits
        index = self._draw_outcome_index(rng, cumulative, n, flip_qubits)
        return format(index, f"0{n}b"), resimulated

    def _perturbed_circuit(self, triggered: Sequence[int],
                           errors: list[tuple[int, str]],
                           base_circuit: Circuit) -> Circuit:
        injected: dict[int, list[Gate]] = {}
        for position, (gate_index, label) in zip(triggered, errors):
            site = self.sites[int(position)]
            extra = pauli_gates(site, label)
            if extra:
                injected.setdefault(gate_index, []).extend(extra)
        return self._build_perturbed(injected, {}, base_circuit)


# ----------------------------------------------------------------------
# JSON (de)serialisation, used by the execution engine's disk cache
# ----------------------------------------------------------------------
def shot_result_to_json(result: ShotResult) -> dict[str, Any]:
    """Serialise a :class:`ShotResult` to a plain-JSON dict."""
    return {
        "architecture": result.architecture,
        "circuit_name": result.circuit_name,
        "shots": result.shots,
        "seed": result.seed,
        "shot_offset": result.shot_offset,
        "successes": result.successes,
        "errors_per_shot": list(result.errors_per_shot),
        "records": [
            [record.shot, [list(error) for error in record.errors]]
            for record in result.records
        ],
        "max_records": result.max_records,
        "counts": result.counts,
        "num_error_sites": result.num_error_sites,
        "expected_success_rate": result.expected_success_rate,
        "analytic": (
            dataclasses.asdict(result.analytic)
            if result.analytic is not None else None
        ),
        "mechanism_counts": result.mechanism_counts,
        "mechanism_shots": result.mechanism_shots,
    }


def shot_result_from_json(payload: dict[str, Any]) -> ShotResult:
    """Rebuild a :class:`ShotResult` from its JSON form."""
    analytic = payload.get("analytic")
    return ShotResult(
        architecture=payload["architecture"],
        circuit_name=payload["circuit_name"],
        shots=int(payload["shots"]),
        seed=int(payload["seed"]),
        shot_offset=int(payload.get("shot_offset", 0)),
        successes=int(payload["successes"]),
        errors_per_shot=tuple(int(x) for x in payload["errors_per_shot"]),
        records=tuple(
            ShotRecord(
                shot=int(shot),
                errors=tuple(
                    (int(index), str(label)) for index, label in errors
                ),
            )
            for shot, errors in payload.get("records", [])
        ),
        max_records=int(payload.get("max_records", DEFAULT_MAX_RECORDS)),
        counts=(
            {str(k): int(v) for k, v in payload["counts"].items()}
            if payload.get("counts") is not None else None
        ),
        num_error_sites=int(payload.get("num_error_sites", 0)),
        expected_success_rate=float(
            payload.get("expected_success_rate", 1.0)
        ),
        analytic=(
            SimulationResult(**analytic) if analytic is not None else None
        ),
        mechanism_counts=(
            {str(k): int(v) for k, v in payload["mechanism_counts"].items()}
            if payload.get("mechanism_counts") is not None else None
        ),
        mechanism_shots=(
            {str(k): int(v) for k, v in payload["mechanism_shots"].items()}
            if payload.get("mechanism_shots") is not None else None
        ),
    )
