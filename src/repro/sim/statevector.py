"""Dense state-vector simulator.

This is the correctness substrate of the reproduction: it executes circuits
exactly (no noise) so tests can verify that the workload generators compute
what they claim (the adder adds, BV recovers its secret, Grover amplifies
the marked state) and that compiled circuits remain equivalent to their
sources up to the mapping permutation.

The simulator is intentionally simple — it targets the widths used in tests
(up to ~16 qubits), not the 64-qubit experiment sizes, which only ever go
through the analytical fidelity model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.circuits.unitary import gate_matrix
from repro.exceptions import SimulationError

#: Hard cap on simulated width to avoid accidental exponential blow-ups.
MAX_STATEVECTOR_QUBITS = 22


class StatevectorSimulator:
    """Exact (noise-free) circuit execution on a dense state vector."""

    def __init__(self, max_qubits: int = MAX_STATEVECTOR_QUBITS) -> None:
        self.max_qubits = max_qubits

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, circuit: Circuit,
            initial_state: np.ndarray | None = None) -> np.ndarray:
        """Return the final state vector of *circuit*.

        Measurements and barriers are ignored (the state is left un-collapsed
        so tests can inspect exact amplitudes).
        """
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise SimulationError(
                f"statevector simulation limited to {self.max_qubits} qubits, "
                f"got {n}"
            )
        if initial_state is None:
            state = np.zeros(2**n, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2**n,):
                raise SimulationError("initial state has the wrong dimension")
        tensor = state.reshape((2,) * n)
        for gate in circuit:
            if gate.name in ("barrier", "measure"):
                continue
            tensor = _apply_gate(tensor, gate, n)
        return tensor.reshape(2**n)

    # ------------------------------------------------------------------
    # Read-out helpers
    # ------------------------------------------------------------------
    def probabilities(self, circuit: Circuit) -> np.ndarray:
        """Measurement probabilities of every basis state after *circuit*."""
        amplitudes = self.run(circuit)
        return np.abs(amplitudes) ** 2

    def sample(self, circuit: Circuit, shots: int = 1024,
               seed: int | None = None) -> dict[str, int]:
        """Sample measurement outcomes (bit string -> count)."""
        if shots <= 0:
            raise SimulationError("shots must be positive")
        probabilities = self.probabilities(circuit)
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        n = circuit.num_qubits
        counts: dict[str, int] = {}
        for outcome in outcomes:
            bits = format(int(outcome), f"0{n}b")
            counts[bits] = counts.get(bits, 0) + 1
        return counts

    def most_probable(self, circuit: Circuit) -> str:
        """The single most likely measurement outcome (qubit 0 leftmost)."""
        probabilities = self.probabilities(circuit)
        return format(int(np.argmax(probabilities)), f"0{circuit.num_qubits}b")

    def expectation_z(self, circuit: Circuit, qubit: int) -> float:
        """<Z> on *qubit* after running *circuit*."""
        if not 0 <= qubit < circuit.num_qubits:
            raise SimulationError("qubit index out of range")
        probabilities = self.probabilities(circuit)
        n = circuit.num_qubits
        expectation = 0.0
        for basis_state, probability in enumerate(probabilities):
            bit = (basis_state >> (n - 1 - qubit)) & 1
            expectation += probability * (1.0 if bit == 0 else -1.0)
        return float(expectation)


def _apply_gate(tensor: np.ndarray, gate: Gate, n: int) -> np.ndarray:
    """Apply *gate* to the state tensor (qubit 0 = axis 0)."""
    matrix = gate_matrix(gate)
    k = gate.num_qubits
    reshaped = matrix.reshape((2,) * (2 * k))
    axes = list(gate.qubits)
    # Contract the gate's "input" indices with the state's qubit axes.
    tensor = np.tensordot(reshaped, tensor, axes=(list(range(k, 2 * k)), axes))
    # tensordot puts the gate's output indices first; move them back.
    return np.moveaxis(tensor, list(range(k)), axes)


def states_equal_up_to_global_phase(state_a: np.ndarray, state_b: np.ndarray,
                                    atol: float = 1e-9) -> bool:
    """True when two state vectors differ only by a global phase."""
    state_a = np.asarray(state_a)
    state_b = np.asarray(state_b)
    if state_a.shape != state_b.shape:
        return False
    overlap = np.vdot(state_a, state_b)
    norm = np.linalg.norm(state_a) * np.linalg.norm(state_b)
    if norm == 0:
        return False
    return bool(math.isclose(abs(overlap), norm, rel_tol=0, abs_tol=atol))
