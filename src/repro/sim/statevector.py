"""Dense state-vector simulator.

This is the correctness substrate of the reproduction: it executes circuits
exactly (no noise) so tests can verify that the workload generators compute
what they claim (the adder adds, BV recovers its secret, Grover amplifies
the marked state) and that compiled circuits remain equivalent to their
sources up to the mapping permutation.

The simulator is intentionally simple — it targets the widths used in tests
(up to ~16 qubits), not the 64-qubit experiment sizes, which only ever go
through the analytical fidelity model.

Batched execution
-----------------
:meth:`StatevectorSimulator.run_batch` executes several circuits at once
on a ``(batch, 2, ..., 2)`` tensor: at each lockstep position, members
that share the same gate are contracted with **one** tensordot over the
batch axis (:func:`_apply_gate_batch`) instead of one per member.  The
stochastic sampler's pattern-grouped counts re-simulation uses the same
kernel through :func:`batch_probabilities_with_insertions`, which runs a
shared base gate sequence batched and applies each member's injected
Pauli errors to its own slice.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.circuits.unitary import gate_matrix
from repro.exceptions import SimulationError

#: Hard cap on simulated width to avoid accidental exponential blow-ups.
MAX_STATEVECTOR_QUBITS = 22

#: Batched execution processes members in blocks of this size so the
#: working set stays bounded (a block of 16-qubit states is ~32 MB).
BATCH_BLOCK = 32


class StatevectorSimulator:
    """Exact (noise-free) circuit execution on a dense state vector."""

    def __init__(self, max_qubits: int = MAX_STATEVECTOR_QUBITS) -> None:
        self.max_qubits = max_qubits

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, circuit: Circuit,
            initial_state: np.ndarray | None = None) -> np.ndarray:
        """Return the final state vector of *circuit*.

        Measurements and barriers are ignored (the state is left un-collapsed
        so tests can inspect exact amplitudes).
        """
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise SimulationError(
                f"statevector simulation limited to {self.max_qubits} qubits, "
                f"got {n}"
            )
        if initial_state is None:
            state = np.zeros(2**n, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2**n,):
                raise SimulationError("initial state has the wrong dimension")
        tensor = state.reshape((2,) * n)
        for gate in circuit:
            if gate.name in ("barrier", "measure"):
                continue
            tensor = _apply_gate(tensor, gate, n)
        return tensor.reshape(2**n)

    def run_batch(self, circuits: Sequence[Circuit],
                  initial_states: Sequence[np.ndarray] | None = None,
                  ) -> np.ndarray:
        """Final state vectors of *circuits* as a ``(batch, 2**n)`` array.

        Circuits must share a register width but may differ in content:
        at each lockstep position, members carrying the same gate are
        applied with one batched contraction; the rest fall back to
        per-member application.  Shorter members simply stop early.
        Numerically equivalent to stacking :meth:`run` of each circuit
        (``tests/test_statevector_batch.py`` pins the agreement to
        1e-12; the batched contraction may round the last bits
        differently from the serial one, which is why the sampler's
        bit-identity contract re-simulates patterns serially).
        """
        if not circuits:
            raise SimulationError("run_batch needs at least one circuit")
        n = circuits[0].num_qubits
        if any(circuit.num_qubits != n for circuit in circuits):
            raise SimulationError("run_batch circuits must share a width")
        if n > self.max_qubits:
            raise SimulationError(
                f"statevector simulation limited to {self.max_qubits} "
                f"qubits, got {n}"
            )
        batch = len(circuits)
        tensors = np.zeros((batch,) + (2,) * n, dtype=complex)
        if initial_states is None:
            tensors.reshape(batch, 2**n)[:, 0] = 1.0
        else:
            if len(initial_states) != batch:
                raise SimulationError(
                    "one initial state per circuit is required"
                )
            flat = tensors.reshape(batch, 2**n)
            for member, state in enumerate(initial_states):
                state = np.asarray(state, dtype=complex)
                if state.shape != (2**n,):
                    raise SimulationError(
                        "initial state has the wrong dimension"
                    )
                flat[member] = state
        sequences = [
            [gate for gate in circuit
             if gate.name not in ("barrier", "measure")]
            for circuit in circuits
        ]
        for position in range(max(len(seq) for seq in sequences)):
            groups: dict[Gate, list[int]] = {}
            for member, sequence in enumerate(sequences):
                if position < len(sequence):
                    groups.setdefault(sequence[position], []).append(member)
            for gate, members in groups.items():
                if len(members) == batch:
                    tensors = _apply_gate_batch(tensors, gate, n)
                else:
                    block = _apply_gate_batch(tensors[members], gate, n)
                    tensors[members] = block
        return tensors.reshape(batch, 2**n)

    def probabilities_batch(self, circuits: Sequence[Circuit]) -> np.ndarray:
        """Measurement probabilities of each circuit, ``(batch, 2**n)``."""
        amplitudes = self.run_batch(circuits)
        return np.abs(amplitudes) ** 2

    # ------------------------------------------------------------------
    # Read-out helpers
    # ------------------------------------------------------------------
    def probabilities(self, circuit: Circuit) -> np.ndarray:
        """Measurement probabilities of every basis state after *circuit*."""
        amplitudes = self.run(circuit)
        return np.abs(amplitudes) ** 2

    def sample(self, circuit: Circuit, shots: int = 1024,
               seed: int | None = None) -> dict[str, int]:
        """Sample measurement outcomes (bit string -> count)."""
        if shots <= 0:
            raise SimulationError("shots must be positive")
        probabilities = self.probabilities(circuit)
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        n = circuit.num_qubits
        counts: dict[str, int] = {}
        for outcome in outcomes:
            bits = format(int(outcome), f"0{n}b")
            counts[bits] = counts.get(bits, 0) + 1
        return counts

    def most_probable(self, circuit: Circuit) -> str:
        """The single most likely measurement outcome (qubit 0 leftmost)."""
        probabilities = self.probabilities(circuit)
        return format(int(np.argmax(probabilities)), f"0{circuit.num_qubits}b")

    def expectation_z(self, circuit: Circuit, qubit: int) -> float:
        """<Z> on *qubit* after running *circuit*."""
        if not 0 <= qubit < circuit.num_qubits:
            raise SimulationError("qubit index out of range")
        probabilities = self.probabilities(circuit)
        n = circuit.num_qubits
        expectation = 0.0
        for basis_state, probability in enumerate(probabilities):
            bit = (basis_state >> (n - 1 - qubit)) & 1
            expectation += probability * (1.0 if bit == 0 else -1.0)
        return float(expectation)


def _apply_gate(tensor: np.ndarray, gate: Gate, n: int) -> np.ndarray:
    """Apply *gate* to the state tensor (qubit 0 = axis 0)."""
    matrix = gate_matrix(gate)
    k = gate.num_qubits
    reshaped = matrix.reshape((2,) * (2 * k))
    axes = list(gate.qubits)
    # Contract the gate's "input" indices with the state's qubit axes.
    tensor = np.tensordot(reshaped, tensor, axes=(list(range(k, 2 * k)), axes))
    # tensordot puts the gate's output indices first; move them back.
    return np.moveaxis(tensor, list(range(k)), axes)


def _apply_gate_batch(tensors: np.ndarray, gate: Gate, n: int) -> np.ndarray:
    """Apply one gate to a ``(batch, 2, ..., 2)`` stack of state tensors.

    The batch axis rides along as a free index of the same tensordot the
    serial kernel uses (qubit ``q`` lives on axis ``q + 1``), so one
    contraction advances every member at once.
    """
    matrix = gate_matrix(gate)
    k = gate.num_qubits
    reshaped = matrix.reshape((2,) * (2 * k))
    axes = [qubit + 1 for qubit in gate.qubits]
    out = np.tensordot(reshaped, tensors,
                       axes=(list(range(k, 2 * k)), axes))
    # output axes land first, the batch axis right after them; restore
    # (batch, qubits...) order
    out = np.moveaxis(out, k, 0)
    return np.moveaxis(out, list(range(1, k + 1)), axes)


def batch_probabilities_with_insertions(
    base_gates: Sequence[Gate], num_qubits: int,
    insertions: Sequence[Mapping[int, Sequence[Gate]]],
    drops: Sequence[frozenset[int]] | None = None,
    max_qubits: int = MAX_STATEVECTOR_QUBITS,
) -> np.ndarray:
    """Probabilities of a shared gate sequence under per-member edits.

    This is the stochastic sampler's pattern-grouped re-simulation
    kernel: every member executes *base_gates*, member ``m``
    additionally applies ``insertions[m][i]`` right after base gate
    ``i`` (sampled Pauli errors) and skips base positions in
    ``drops[m]`` (gates on a leaked qubit).  The shared base sequence is
    advanced with the batched kernel; only the sparse per-member edits
    touch a single slice.  Returns a ``(batch, 2**num_qubits)`` array.
    Members are processed in blocks of :data:`BATCH_BLOCK` to bound the
    working set.
    """
    if num_qubits > max_qubits:
        raise SimulationError(
            f"statevector simulation limited to {max_qubits} qubits, "
            f"got {num_qubits}"
        )
    batch = len(insertions)
    gates = [gate for gate in base_gates
             if gate.name not in ("barrier", "measure")]
    # base positions must refer to the *unfiltered* sequence the sampler
    # indexes by, so keep the original indices alongside
    indexed = [
        (index, gate) for index, gate in enumerate(base_gates)
        if gate.name not in ("barrier", "measure")
    ]
    del gates
    result = np.empty((batch, 2**num_qubits))
    for start in range(0, batch, BATCH_BLOCK):
        members = range(start, min(start + BATCH_BLOCK, batch))
        block = np.zeros((len(members),) + (2,) * num_qubits, dtype=complex)
        block.reshape(len(members), -1)[:, 0] = 1.0
        uniform_drops = all(
            drops is None or not drops[member] for member in members
        )
        for index, gate in indexed:
            if uniform_drops:
                block = _apply_gate_batch(block, gate, num_qubits)
            else:
                for offset, member in enumerate(members):
                    if drops is not None and index in drops[member]:
                        continue
                    block[offset] = _apply_gate(block[offset], gate,
                                                num_qubits)
            for offset, member in enumerate(members):
                for extra in insertions[member].get(index, ()):
                    block[offset] = _apply_gate(block[offset], extra,
                                                num_qubits)
        flat = block.reshape(len(members), -1)
        result[start:start + len(members)] = np.abs(flat) ** 2
    return result


def states_equal_up_to_global_phase(state_a: np.ndarray, state_b: np.ndarray,
                                    atol: float = 1e-9) -> bool:
    """True when two state vectors differ only by a global phase."""
    state_a = np.asarray(state_a)
    state_b = np.asarray(state_b)
    if state_a.shape != state_b.shape:
        return False
    overlap = np.vdot(state_a, state_b)
    norm = np.linalg.norm(state_a) * np.linalg.norm(state_b)
    if norm == 0:
        return False
    return bool(math.isclose(abs(overlap), norm, rel_tol=0, abs_tol=atol))
