"""Simulation result containers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one noisy architectural simulation.

    Attributes
    ----------
    architecture:
        Human-readable configuration label (e.g. ``"TILT head 16"``).
    circuit_name:
        Name of the simulated workload.
    success_rate:
        Estimated program success probability (product of gate fidelities).
        May underflow to 0.0 for very deep circuits; use
        ``log10_success_rate`` for plotting.
    log10_success_rate:
        log10 of the success rate, computed without underflow.
    execution_time_us:
        Estimated wall-clock execution time (Eq. 5) in microseconds.
    num_gates, num_two_qubit_gates:
        Size of the executed circuit (after routing, where applicable).
    num_moves:
        Tape moves (TILT) or ion transports (QCCD); 0 for the ideal device.
    move_distance_um:
        Total shuttling travel in micrometres (TILT only; 0 otherwise).
    average_gate_fidelity, worst_gate_fidelity:
        Geometric mean / minimum of the per-gate fidelities.
    extras:
        Architecture-specific details (e.g. per-trap heating for QCCD).
    """

    architecture: str
    circuit_name: str
    success_rate: float
    log10_success_rate: float
    execution_time_us: float
    num_gates: int
    num_two_qubit_gates: int
    num_moves: int
    move_distance_um: float
    average_gate_fidelity: float
    worst_gate_fidelity: float
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def execution_time_s(self) -> float:
        """Execution time in seconds."""
        return self.execution_time_us * 1e-6

    def success_ratio_over(self, other: "SimulationResult") -> float:
        """How many times more likely this run is to succeed than *other*.

        Computed in log space so it stays finite even when both success
        rates underflow ordinary floats.

        Raises
        ------
        SimulationError
            If *other* has a zero or otherwise degenerate (NaN) success
            rate — the ratio over an impossible run is undefined.
        """
        denominator = other.log10_success_rate
        if math.isnan(denominator) or denominator == float("-inf"):
            raise SimulationError(
                f"cannot compute a success ratio over "
                f"{other.architecture!r}/{other.circuit_name!r}: its "
                f"success rate is zero (log10={denominator})"
            )
        if math.isnan(self.log10_success_rate):
            raise SimulationError("this result's success rate is degenerate")
        try:
            return math.pow(10.0, self.log10_success_rate - denominator)
        except OverflowError:
            return float("inf")

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.architecture:<16} {self.circuit_name:<8} "
            f"success={self.success_rate:.3e} "
            f"(log10={self.log10_success_rate:.2f}) "
            f"time={self.execution_time_s:.3f}s moves={self.num_moves}"
        )
