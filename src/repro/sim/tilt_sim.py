"""Noisy TILT simulator (Section IV-E).

Replays an :class:`~repro.compiler.executable.ExecutableProgram` against the
heating-aware fidelity model: every gate in segment *m* (i.e. after *m* tape
moves) sees a chain with ``m * k`` motional quanta and its fidelity follows
Eq. 4; the program success rate is the product of all gate fidelities.  The
execution-time estimate follows Eq. 5: tape travel at the shuttling speed
plus the critical path of gate durations.
"""

from __future__ import annotations

from repro.arch.tilt import TiltDevice
from repro.compiler.executable import ExecutableProgram
from repro.compiler.pipeline import CompileResult
from repro.exceptions import SimulationError
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us
from repro.noise.heating import quanta_after_moves
from repro.noise.parameters import NoiseParameters
from repro.sim.result import SimulationResult


class TiltSimulator:
    """Success-rate and execution-time estimator for compiled TILT programs."""

    def __init__(self, device: TiltDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, program: ExecutableProgram | CompileResult,
            *, circuit_name: str | None = None) -> SimulationResult:
        """Simulate a scheduled program (or a full compile result)."""
        if isinstance(program, CompileResult):
            name = circuit_name or program.source_circuit.name
            program = program.program
        else:
            name = circuit_name or program.circuit.name
        if program.device.num_qubits != self.device.num_qubits:
            raise SimulationError(
                "program was scheduled for a different chain length"
            )

        accumulator = SuccessRateAccumulator()
        chain_length = self.device.num_qubits
        for gate, moves_before in program.gates_with_move_counts():
            quanta = quanta_after_moves(moves_before, chain_length, self.params)
            accumulator.add(gate_fidelity(gate, quanta, self.params))

        execution_time = self._execution_time_us(program)
        circuit = program.circuit
        return SimulationResult(
            architecture=f"TILT head {self.device.head_size}",
            circuit_name=name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=execution_time,
            num_gates=circuit.num_gates(),
            num_two_qubit_gates=circuit.num_two_qubit_gates(),
            num_moves=program.num_moves,
            move_distance_um=program.move_distance_um,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
            extras={
                "final_quanta": quanta_after_moves(
                    program.num_moves, chain_length, self.params
                ),
                "num_segments": float(len(program.segments)),
            },
        )

    # ------------------------------------------------------------------
    # Execution time (Eq. 5)
    # ------------------------------------------------------------------
    def _execution_time_us(self, program: ExecutableProgram) -> float:
        """Tape travel time plus per-segment gate critical paths."""
        shuttle_time = (
            program.move_distance_um / self.params.shuttle_speed_um_per_us
        )
        interval = self.params.tilt_cooling_interval_moves
        if interval > 0:
            shuttle_time += (
                program.num_moves // interval
            ) * self.params.tilt_cooling_time_us
        gate_time = 0.0
        for _, gates in program.gates_by_segment():
            finish_at: dict[int, float] = {}
            segment_end = 0.0
            for gate in gates:
                start = max((finish_at.get(q, 0.0) for q in gate.qubits),
                            default=0.0)
                end = start + gate_time_us(gate, self.params)
                for qubit in gate.qubits:
                    finish_at[qubit] = end
                segment_end = max(segment_end, end)
            gate_time += segment_end
        return shuttle_time + gate_time
