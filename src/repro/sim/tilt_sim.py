"""Noisy TILT simulator (Section IV-E).

Replays an :class:`~repro.compiler.executable.ExecutableProgram` against the
heating-aware fidelity model: every gate in segment *m* (i.e. after *m* tape
moves) sees a chain with ``m * k`` motional quanta and its fidelity follows
Eq. 4; the program success rate is the product of all gate fidelities.  The
execution-time estimate follows Eq. 5: tape travel at the shuttling speed
plus the critical path of gate durations.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.arch.tilt import TiltDevice
from repro.circuits.gate import Gate
from repro.compiler.executable import ExecutableProgram
from repro.compiler.pipeline import CompileResult
from repro.exceptions import SimulationError
from repro.noise.channels import error_site_for_gate
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us
from repro.noise.heating import quanta_after_moves
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import (
    GatePoint,
    NoiseScenario,
    ShuttlePoint,
    TimelinePoint,
    build_scenario_sites,
    chain_spectators,
    resolve_scenario,
    scenario_analytics,
)
from repro.sim.result import SimulationResult
from repro.sim.stochastic import (
    DEFAULT_MAX_RECORDS,
    ShotResult,
    StochasticSampler,
)


class TiltSimulator:
    """Success-rate and execution-time estimator for compiled TILT programs."""

    def __init__(self, device: TiltDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def _resolve(self, program: ExecutableProgram | CompileResult,
                 circuit_name: str | None) -> tuple[ExecutableProgram, str]:
        if isinstance(program, CompileResult):
            name = circuit_name or program.source_circuit.name
            program = program.program
        else:
            name = circuit_name or program.circuit.name
        if program.device.num_qubits != self.device.num_qubits:
            raise SimulationError(
                "program was scheduled for a different chain length"
            )
        return program, name

    def gate_fidelities(
        self, program: ExecutableProgram
    ) -> Iterator[tuple[Gate, float]]:
        """Yield ``(gate, fidelity)`` in execution order under Eq. 4 heating."""
        chain_length = self.device.num_qubits
        for gate, moves_before in program.gates_with_move_counts():
            quanta = quanta_after_moves(moves_before, chain_length, self.params)
            yield gate, gate_fidelity(gate, quanta, self.params)

    def run(self, program: ExecutableProgram | CompileResult,
            *, circuit_name: str | None = None,
            scenario: NoiseScenario | str | None = None) -> SimulationResult:
        """Simulate a scheduled program (or a full compile result).

        *scenario* selects a correlated-noise scenario (a registered name
        or a :class:`~repro.noise.scenarios.NoiseScenario`); ``None`` or
        ``"baseline"`` reproduces the paper's independent-error model
        exactly.  Non-baseline scenarios adjust the success rate with the
        exact correlated-noise analytics and surface per-mechanism site
        telemetry in ``extras``.
        """
        program, name = self._resolve(program, circuit_name)
        scenario = resolve_scenario(scenario)
        if scenario.is_baseline:
            return self._result_from_fidelities(
                program, name,
                (fidelity for _, fidelity in self.gate_fidelities(program)),
            )
        points = self.scenario_points(program, scenario)
        base = self._result_from_fidelities(
            program, name,
            (point.fidelity for point in points
             if isinstance(point, GatePoint)),
        )
        analytics = scenario_analytics(
            build_scenario_sites(points, scenario), scenario
        )
        return analytics.apply_to(base)

    # ------------------------------------------------------------------
    # Correlated-noise timeline
    # ------------------------------------------------------------------
    def scenario_points(self, program: ExecutableProgram,
                        scenario: NoiseScenario) -> list[TimelinePoint]:
        """The execution timeline the scenario machinery consumes.

        Gates carry their Eq. 4 fidelity, the spectator ions currently
        under the laser head (crosstalk targets) and their burst-coupling
        window; every tape move between segments is a
        :class:`ShuttlePoint`.  Windows follow the sympathetic-cooling
        intervals: moves ``1..interval`` share window 0, and so on — with
        cooling disabled the whole program is one window, so a burst
        persists to the end (Section II-B's unbounded tape heating).
        """
        interval = self.params.tilt_cooling_interval_moves
        chain_length = self.device.num_qubits

        def window_of(move: int) -> int:
            if interval <= 0 or move <= 0:
                return 0
            return (move - 1) // interval

        want_spectators = scenario.crosstalk_strength > 0.0
        points: list[TimelinePoint] = []
        gate_index = 0
        for segment_index, segment in enumerate(program.segments):
            if segment_index > 0:
                points.append(ShuttlePoint(move=segment_index,
                                           window=window_of(segment_index)))
            quanta = quanta_after_moves(segment_index, chain_length,
                                        self.params)
            window = window_of(segment_index)
            head_ions = self.device.window(segment.position)
            for index_in_circuit in segment.gate_indices:
                gate = program.circuit[index_in_circuit]
                spectators = ()
                if want_spectators and gate.num_qubits == 2:
                    spectators = chain_spectators(
                        gate.qubits, head_ions, scenario.crosstalk_range
                    )
                points.append(GatePoint(
                    index=gate_index,
                    gate=gate,
                    fidelity=gate_fidelity(gate, quanta, self.params),
                    spectators=spectators,
                    window=window,
                ))
                gate_index += 1
        return points

    def _result_from_fidelities(self, program: ExecutableProgram, name: str,
                                fidelities) -> SimulationResult:
        accumulator = SuccessRateAccumulator()
        chain_length = self.device.num_qubits
        for fidelity in fidelities:
            accumulator.add(fidelity)

        execution_time = self._execution_time_us(program)
        circuit = program.circuit
        return SimulationResult(
            architecture=f"TILT head {self.device.head_size}",
            circuit_name=name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=execution_time,
            num_gates=circuit.num_gates(),
            num_two_qubit_gates=circuit.num_two_qubit_gates(),
            num_moves=program.num_moves,
            move_distance_um=program.move_distance_um,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
            extras={
                "final_quanta": quanta_after_moves(
                    program.num_moves, chain_length, self.params
                ),
                "num_segments": float(len(program.segments)),
            },
        )

    # ------------------------------------------------------------------
    # Stochastic (shot-based) simulation
    # ------------------------------------------------------------------
    def build_sampler(self, program: ExecutableProgram | CompileResult,
                      *, circuit_name: str | None = None,
                      analytic: SimulationResult | None = None,
                      scenario: NoiseScenario | str | None = None,
                      ) -> StochasticSampler:
        """The :class:`StochasticSampler` of one executed program.

        Everything :meth:`run_stochastic` derives from the program —
        error sites, the executed gate sequence, the analytic reference
        — without drawing a single shot, so callers that sample the same
        program repeatedly (shard fan-outs, throughput benchmarks) can
        reuse one sampler across ``run`` calls.
        """
        program, name = self._resolve(program, circuit_name)
        scenario = resolve_scenario(scenario)
        expected_rate = None
        if scenario.is_baseline:
            gates = []
            sites = []
            fidelities = []
            for index, (gate, fidelity) in enumerate(
                self.gate_fidelities(program)
            ):
                gates.append(gate)
                fidelities.append(fidelity)
                site = error_site_for_gate(index, gate, fidelity)
                if site is not None:
                    sites.append(site)
            if analytic is None:
                analytic = self._result_from_fidelities(program, name,
                                                        fidelities)
        else:
            points = self.scenario_points(program, scenario)
            gates = [point.gate for point in points
                     if isinstance(point, GatePoint)]
            sites = build_scenario_sites(points, scenario)
            # one analytics pass serves both the analytic result and the
            # sampler's expected rate — the burst DP never runs twice
            analytics = scenario_analytics(sites, scenario)
            expected_rate = analytics.success_rate
            if analytic is None:
                base = self._result_from_fidelities(
                    program, name,
                    (point.fidelity for point in points
                     if isinstance(point, GatePoint)),
                )
                analytic = analytics.apply_to(base)
        return StochasticSampler(
            architecture=f"TILT head {self.device.head_size}",
            circuit_name=name,
            sites=sites,
            gates=gates,
            num_qubits=program.circuit.num_qubits,
            analytic=analytic,
            burst_multiplier=scenario.burst_error_multiplier,
            expected_rate=expected_rate,
        )

    def run_stochastic(self, program: ExecutableProgram | CompileResult,
                       *, shots: int, seed: int = 0, shot_offset: int = 0,
                       sample_counts: bool = False,
                       max_records: int = DEFAULT_MAX_RECORDS,
                       circuit_name: str | None = None,
                       analytic: SimulationResult | None = None,
                       scenario: NoiseScenario | str | None = None,
                       exhaustive_shots: bool = False) -> ShotResult:
        """Monte-Carlo sample the program's Eq. 4 noise, shot by shot.

        Every per-gate fidelity becomes a stochastic Pauli/readout-flip
        channel (see :mod:`repro.noise.channels`); the returned
        :class:`ShotResult` carries the counts histogram (when
        ``sample_counts`` is on), per-shot error records and the Wilson
        confidence interval of the sampled success rate.  Shots
        ``[shot_offset, shot_offset + shots)`` of the run rooted at
        *seed* are drawn, so shards merged with
        :func:`~repro.sim.stochastic.merge_shot_results` are bit-identical
        to one serial pass.

        When a :class:`CompileResult` is passed, sampled counts are
        relabelled back to *logical* qubit order through its final
        mapping; a bare :class:`ExecutableProgram` (no mapping available)
        yields counts over the physical (routed) wires.

        *scenario* switches on the correlated-noise mechanisms (see
        :mod:`repro.noise.scenarios`): crosstalk kicks on the spectator
        ions under the head, leakage out of the computational subspace
        and shuttle-induced heating bursts.  ``None`` / ``"baseline"``
        keeps the independent-error sampling unchanged.

        ``exhaustive_shots`` forwards to :meth:`StochasticSampler.run
        <repro.sim.stochastic.StochasticSampler.run>`: the scalar
        per-shot reference implementation the vectorized default is
        pinned bit-identical to.
        """
        mapping = (program.final_mapping
                   if isinstance(program, CompileResult) else None)
        # the annotation types the receiver for the call-graph linter:
        # an untyped method-call result would name-match every `.run`
        sampler: StochasticSampler = self.build_sampler(program, circuit_name=circuit_name,
                                     analytic=analytic, scenario=scenario)
        result = sampler.run(shots, seed=seed, shot_offset=shot_offset,
                             sample_counts=sample_counts,
                             max_records=max_records,
                             exhaustive_shots=exhaustive_shots)
        if mapping is not None and result.counts is not None:
            assert sampler.num_qubits is not None
            physical_of = [mapping.physical(logical)
                           for logical in range(sampler.num_qubits)]
            relabelled: dict[str, int] = {}
            for bits, count in result.counts.items():
                logical_bits = "".join(bits[p] for p in physical_of)
                relabelled[logical_bits] = (
                    relabelled.get(logical_bits, 0) + count
                )
            result = dataclasses.replace(result, counts=relabelled)
        return result

    # ------------------------------------------------------------------
    # Execution time (Eq. 5)
    # ------------------------------------------------------------------
    def _execution_time_us(self, program: ExecutableProgram) -> float:
        """Tape travel time plus per-segment gate critical paths."""
        shuttle_time = (
            program.move_distance_um / self.params.shuttle_speed_um_per_us
        )
        interval = self.params.tilt_cooling_interval_moves
        if interval > 0 and program.num_moves > 0:
            # A pause runs between the interval-th move and the next one
            # (matching quanta_after_moves), so a program ending exactly
            # on an interval boundary never pays for a pause it skipped.
            shuttle_time += (
                (program.num_moves - 1) // interval
            ) * self.params.tilt_cooling_time_us
        gate_time = 0.0
        for _, gates in program.gates_by_segment():
            finish_at: dict[int, float] = {}
            segment_end = 0.0
            for gate in gates:
                start = max((finish_at.get(q, 0.0) for q in gate.qubits),
                            default=0.0)
                end = start + gate_time_us(gate, self.params)
                for qubit in gate.qubits:
                    finish_at[qubit] = end
                segment_end = max(segment_end, end)
            gate_time += segment_end
        return shuttle_time + gate_time
