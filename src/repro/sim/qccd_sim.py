"""Noisy QCCD simulator.

Replays a :class:`~repro.compiler.qccd_compiler.QccdProgram` against the
same Eq. 4 fidelity model used for TILT, but with per-trap heating state:
every split/segment-hop/merge primitive deposits ``qccd_shuttle_quanta``
(about 2 quanta in Honeywell's published characterisation) into the affected
chain.  After each completed transport the affected chains are sympathetically
re-cooled by ``qccd_cooling_factor`` — QCCD traps are small and include
coolant ions, so (unlike a full-tape shuttle) their motional energy does not
grow without bound.  Ion extraction is modelled as a split at the ion's
position (the recorded ``swap_to_edge_gates`` are reported but carry no gate
error).  This is a simplified re-implementation of the Murali et al. [64]
QCCD cost model sufficient for the Figure 8 architecture comparison; see
DESIGN.md for the substitution notes.
"""

from __future__ import annotations

from repro.arch.qccd import QccdDevice
from repro.compiler.qccd_compiler import (
    QccdGateEvent,
    QccdProgram,
    QccdShuttleEvent,
)
from repro.exceptions import SimulationError
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us, two_qubit_gate_time_us
from repro.noise.heating import ChainHeatingState
from repro.noise.parameters import NoiseParameters
from repro.sim.result import SimulationResult

#: Rough durations of QCCD shuttling primitives in microseconds (same order
#: of magnitude as the timings used by Murali et al.).
SPLIT_TIME_US = 80.0
MERGE_TIME_US = 80.0
SEGMENT_HOP_TIME_US = 100.0
COOLING_TIME_US = 100.0


class QccdSimulator:
    """Success-rate estimator for compiled QCCD programs."""

    def __init__(self, device: QccdDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    def run(self, program: QccdProgram,
            *, circuit_name: str = "circuit") -> SimulationResult:
        """Replay *program*, accumulating heating and gate fidelities."""
        if program.device.num_qubits != self.device.num_qubits:
            raise SimulationError("program compiled for a different device")

        chains = {
            trap: ChainHeatingState(self.params, max(1, len(members)))
            for trap, members in enumerate(self.device.initial_layout())
        }
        accumulator = SuccessRateAccumulator()
        total_time = 0.0
        num_gates = 0
        num_two_qubit = 0

        for event in program.events:
            if isinstance(event, QccdGateEvent):
                num_gates += 1
                chain = chains[event.trap]
                gate = event.gate
                if gate.num_qubits == 2:
                    num_two_qubit += 1
                    duration = two_qubit_gate_time_us(
                        max(1, event.distance), self.params
                    )
                    accumulator.add(
                        gate_fidelity(gate, chain.quanta, self.params)
                    )
                else:
                    duration = gate_time_us(gate, self.params)
                    accumulator.add(gate_fidelity(gate, 0.0, self.params))
                total_time += duration
            elif isinstance(event, QccdShuttleEvent):
                total_time += self._shuttle_time_us(event)
                source = chains[event.source_trap]
                dest = chains[event.dest_trap]
                source.record_qccd_primitive(event.splits)
                dest.record_qccd_primitive(event.hops + event.merges)
                # Sympathetic cooling after the transport settles.
                source.apply_cooling()
                dest.apply_cooling()
                total_time += COOLING_TIME_US
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown QCCD event {event!r}")

        final_quanta = {f"trap_{t}_quanta": chain.quanta
                        for t, chain in chains.items()}
        return SimulationResult(
            architecture="QCCD",
            circuit_name=circuit_name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=total_time,
            num_gates=num_gates,
            num_two_qubit_gates=num_two_qubit,
            num_moves=program.num_shuttles,
            move_distance_um=0.0,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
            extras=final_quanta,
        )

    @staticmethod
    def _shuttle_time_us(event: QccdShuttleEvent) -> float:
        """Duration of one transport (split + hops + merge)."""
        return (
            event.splits * SPLIT_TIME_US
            + event.hops * SEGMENT_HOP_TIME_US
            + event.merges * MERGE_TIME_US
        )
