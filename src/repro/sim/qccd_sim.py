"""Noisy QCCD simulator.

Replays a :class:`~repro.compiler.qccd_compiler.QccdProgram` against the
same Eq. 4 fidelity model used for TILT, but with per-trap heating state:
every split/segment-hop/merge primitive deposits ``qccd_shuttle_quanta``
(about 2 quanta in Honeywell's published characterisation) into the affected
chain.  After each completed transport the affected chains are sympathetically
re-cooled by ``qccd_cooling_factor`` — QCCD traps are small and include
coolant ions, so (unlike a full-tape shuttle) their motional energy does not
grow without bound.  Ion extraction is modelled as a split at the ion's
position (the recorded ``swap_to_edge_gates`` are reported but carry no gate
error).  This is a simplified re-implementation of the Murali et al. [64]
QCCD cost model sufficient for the Figure 8 architecture comparison; see
DESIGN.md for the substitution notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.qccd import QccdDevice
from repro.circuits.gate import Gate
from repro.compiler.qccd_compiler import (
    QccdGateEvent,
    QccdProgram,
    QccdShuttleEvent,
)
from repro.exceptions import SimulationError
from repro.noise.channels import error_site_for_gate
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us, two_qubit_gate_time_us
from repro.noise.heating import ChainHeatingState
from repro.noise.parameters import NoiseParameters
from repro.sim.result import SimulationResult
from repro.sim.stochastic import (
    DEFAULT_MAX_RECORDS,
    ShotResult,
    StochasticSampler,
)

#: Rough durations of QCCD shuttling primitives in microseconds (same order
#: of magnitude as the timings used by Murali et al.).
SPLIT_TIME_US = 80.0
MERGE_TIME_US = 80.0
SEGMENT_HOP_TIME_US = 100.0
COOLING_TIME_US = 100.0


@dataclass
class QccdTrace:
    """Flattened replay of a QCCD program: gates with their fidelities.

    One record per executed gate (in event order) plus the aggregate time
    and heating state; both the analytic estimator and the stochastic
    sampler are built from this single replay.
    """

    gates: list[Gate] = field(default_factory=list)
    fidelities: list[float] = field(default_factory=list)
    num_two_qubit: int = 0
    execution_time_us: float = 0.0
    final_quanta: dict[str, float] = field(default_factory=dict)


class QccdSimulator:
    """Success-rate estimator for compiled QCCD programs."""

    def __init__(self, device: QccdDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    def trace(self, program: QccdProgram) -> QccdTrace:
        """Replay *program*, recording per-gate fidelities under heating."""
        if program.device.num_qubits != self.device.num_qubits:
            raise SimulationError("program compiled for a different device")

        chains = {
            trap: ChainHeatingState(self.params, max(1, len(members)))
            for trap, members in enumerate(self.device.initial_layout())
        }
        trace = QccdTrace()
        for event in program.events:
            if isinstance(event, QccdGateEvent):
                chain = chains[event.trap]
                gate = event.gate
                if gate.num_qubits == 2:
                    trace.num_two_qubit += 1
                    duration = two_qubit_gate_time_us(
                        max(1, event.distance), self.params
                    )
                    fidelity = gate_fidelity(gate, chain.quanta, self.params)
                else:
                    duration = gate_time_us(gate, self.params)
                    fidelity = gate_fidelity(gate, 0.0, self.params)
                trace.gates.append(gate)
                trace.fidelities.append(fidelity)
                trace.execution_time_us += duration
            elif isinstance(event, QccdShuttleEvent):
                trace.execution_time_us += self._shuttle_time_us(event)
                source = chains[event.source_trap]
                dest = chains[event.dest_trap]
                source.record_qccd_primitive(event.splits)
                dest.record_qccd_primitive(event.hops + event.merges)
                # Sympathetic cooling after the transport settles.
                source.apply_cooling()
                dest.apply_cooling()
                trace.execution_time_us += COOLING_TIME_US
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown QCCD event {event!r}")
        trace.final_quanta = {f"trap_{t}_quanta": chain.quanta
                              for t, chain in chains.items()}
        return trace

    def run(self, program: QccdProgram,
            *, circuit_name: str = "circuit") -> SimulationResult:
        """Replay *program*, accumulating heating and gate fidelities."""
        return self._result_from_trace(self.trace(program), program,
                                       circuit_name)

    def _result_from_trace(self, trace: QccdTrace, program: QccdProgram,
                           circuit_name: str) -> SimulationResult:
        accumulator = SuccessRateAccumulator()
        for fidelity in trace.fidelities:
            accumulator.add(fidelity)
        return SimulationResult(
            architecture="QCCD",
            circuit_name=circuit_name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=trace.execution_time_us,
            num_gates=len(trace.gates),
            num_two_qubit_gates=trace.num_two_qubit,
            num_moves=program.num_shuttles,
            move_distance_um=0.0,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
            extras=trace.final_quanta,
        )

    def run_stochastic(self, program: QccdProgram,
                       *, shots: int, seed: int = 0, shot_offset: int = 0,
                       sample_counts: bool = False,
                       max_records: int = DEFAULT_MAX_RECORDS,
                       circuit_name: str = "circuit",
                       analytic: SimulationResult | None = None) -> ShotResult:
        """Monte-Carlo sample the program's noise, shot by shot.

        Same contract as :meth:`TiltSimulator.run_stochastic
        <repro.sim.tilt_sim.TiltSimulator.run_stochastic>`: per-trap
        heating fidelities become stochastic Pauli channels and every
        shot draws from its own ``(seed, shot index)`` generator.  Counts
        sampling uses the program's gates over the physical ion indices.
        """
        trace = self.trace(program)
        if analytic is None:
            analytic = self._result_from_trace(trace, program, circuit_name)
        sites = []
        for index, (gate, fidelity) in enumerate(
            zip(trace.gates, trace.fidelities)
        ):
            site = error_site_for_gate(index, gate, fidelity)
            if site is not None:
                sites.append(site)
        sampler = StochasticSampler(
            architecture="QCCD",
            circuit_name=circuit_name,
            sites=sites,
            gates=trace.gates,
            num_qubits=self.device.num_qubits,
            analytic=analytic,
        )
        return sampler.run(shots, seed=seed, shot_offset=shot_offset,
                           sample_counts=sample_counts,
                           max_records=max_records)

    @staticmethod
    def _shuttle_time_us(event: QccdShuttleEvent) -> float:
        """Duration of one transport (split + hops + merge)."""
        return (
            event.splits * SPLIT_TIME_US
            + event.hops * SEGMENT_HOP_TIME_US
            + event.merges * MERGE_TIME_US
        )
