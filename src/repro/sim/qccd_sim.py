"""Noisy QCCD simulator.

Replays a :class:`~repro.compiler.qccd_compiler.QccdProgram` against the
same Eq. 4 fidelity model used for TILT, but with per-trap heating state:
every split/segment-hop/merge primitive deposits ``qccd_shuttle_quanta``
(about 2 quanta in Honeywell's published characterisation) into the affected
chain.  After each completed transport the affected chains are sympathetically
re-cooled by ``qccd_cooling_factor`` — QCCD traps are small and include
coolant ions, so (unlike a full-tape shuttle) their motional energy does not
grow without bound.  Ion extraction is modelled as a split at the ion's
position (the recorded ``swap_to_edge_gates`` are reported but carry no gate
error).  This is a simplified re-implementation of the Murali et al. [64]
QCCD cost model sufficient for the Figure 8 architecture comparison; see
DESIGN.md for the substitution notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.qccd import QccdDevice
from repro.circuits.gate import Gate
from repro.compiler.qccd_compiler import (
    QccdGateEvent,
    QccdProgram,
    QccdShuttleEvent,
)
from repro.exceptions import SimulationError
from repro.noise.channels import error_site_for_gate
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us, two_qubit_gate_time_us
from repro.noise.heating import ChainHeatingState
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import (
    GatePoint,
    NoiseScenario,
    ShuttlePoint,
    TimelinePoint,
    build_scenario_sites,
    chain_spectators,
    resolve_scenario,
    scenario_analytics,
)
from repro.sim.result import SimulationResult
from repro.sim.stochastic import (
    DEFAULT_MAX_RECORDS,
    ShotResult,
    StochasticSampler,
)

#: Rough durations of QCCD shuttling primitives in microseconds (same order
#: of magnitude as the timings used by Murali et al.).
SPLIT_TIME_US = 80.0
MERGE_TIME_US = 80.0
SEGMENT_HOP_TIME_US = 100.0
COOLING_TIME_US = 100.0


@dataclass
class QccdTrace:
    """Flattened replay of a QCCD program: gates with their fidelities.

    One record per executed gate (in event order) plus the aggregate time
    and heating state; both the analytic estimator and the stochastic
    sampler are built from this single replay.  ``points`` is the
    correlated-noise timeline (gates with spectators and their trap as
    burst-coupling window, transports as shuttle points; only
    materialised when the replay runs under a non-baseline scenario) and
    ``telemetry`` carries the per-trap heating counters that survive
    every sympathetic-cooling event.
    """

    gates: list[Gate] = field(default_factory=list)
    fidelities: list[float] = field(default_factory=list)
    num_two_qubit: int = 0
    execution_time_us: float = 0.0
    final_quanta: dict[str, float] = field(default_factory=dict)
    points: list[TimelinePoint] = field(default_factory=list)
    telemetry: dict[str, float] = field(default_factory=dict)


class QccdSimulator:
    """Success-rate estimator for compiled QCCD programs."""

    def __init__(self, device: QccdDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    def trace(self, program: QccdProgram,
              scenario: NoiseScenario | None = None) -> QccdTrace:
        """Replay *program*, recording per-gate fidelities under heating.

        The replay also produces the correlated-noise timeline: crosstalk
        spectators are the other ions sharing the trap at gate time (with
        their in-chain distance to the nearest operand), the trap index
        is the burst-coupling window, and every transport is a shuttle
        point.  QCCD's per-transport sympathetic cooling is *partial*
        (``qccd_cooling_factor``), so it never clears an active burst —
        windows span the whole program.
        """
        if program.device.num_qubits != self.device.num_qubits:
            raise SimulationError("program compiled for a different device")

        members = [list(trap) for trap in self.device.initial_layout()]
        chains = {
            trap: ChainHeatingState(self.params, max(1, len(ions)))
            for trap, ions in enumerate(members)
        }
        # The timeline is only materialised for correlated scenarios;
        # baseline replays (every pre-existing study) stay allocation-free.
        want_points = scenario is not None and not scenario.is_baseline
        want_spectators = want_points and scenario.crosstalk_strength > 0.0
        trace = QccdTrace()
        transports = 0
        for event in program.events:
            if isinstance(event, QccdGateEvent):
                chain = chains[event.trap]
                gate = event.gate
                if gate.num_qubits == 2:
                    trace.num_two_qubit += 1
                    duration = two_qubit_gate_time_us(
                        max(1, event.distance), self.params
                    )
                    fidelity = gate_fidelity(gate, chain.quanta, self.params)
                else:
                    duration = gate_time_us(gate, self.params)
                    fidelity = gate_fidelity(gate, 0.0, self.params)
                if want_points:
                    spectators = ()
                    if want_spectators and gate.num_qubits == 2:
                        spectators = self._trap_spectators(
                            members[event.trap], gate.qubits,
                            scenario.crosstalk_range,
                        )
                    trace.points.append(GatePoint(
                        index=len(trace.gates),
                        gate=gate,
                        fidelity=fidelity,
                        spectators=spectators,
                        window=event.trap,
                    ))
                trace.gates.append(gate)
                trace.fidelities.append(fidelity)
                trace.execution_time_us += duration
            elif isinstance(event, QccdShuttleEvent):
                trace.execution_time_us += self._shuttle_time_us(event)
                source = chains[event.source_trap]
                dest = chains[event.dest_trap]
                source.record_qccd_primitive(event.splits)
                dest.record_qccd_primitive(event.hops + event.merges)
                # Sympathetic cooling after the transport settles.
                source.apply_cooling()
                dest.apply_cooling()
                trace.execution_time_us += COOLING_TIME_US
                # Membership only feeds crosstalk spectator lookup, so
                # the per-transport maintenance is skipped otherwise.
                if want_spectators and event.qubit in members[event.source_trap]:
                    members[event.source_trap].remove(event.qubit)
                    members[event.dest_trap].append(event.qubit)
                transports += 1
                if want_points:
                    # The deposited burst heats the chain the ion merged
                    # into.
                    trace.points.append(ShuttlePoint(move=transports,
                                                     window=event.dest_trap))
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown QCCD event {event!r}")
        trace.final_quanta = {f"trap_{t}_quanta": chain.quanta
                              for t, chain in chains.items()}
        trace.telemetry = {
            f"trap_{t}_qccd_ops": float(chain.num_qccd_ops)
            for t, chain in chains.items()
        }
        return trace

    @staticmethod
    def _trap_spectators(ions: list[int], operands: tuple[int, ...],
                         max_distance: int) -> tuple[tuple[int, int], ...]:
        """Spectator ``(ion, distance)`` pairs within one trap's chain.

        Distance is measured along the trap's chain order (the membership
        list), mirroring how close a spectator physically sits to the MS
        gate's laser pair: the shared :func:`chain_spectators` filter
        runs in position space and the positions map back to ion ids.
        """
        positions = {ion: position for position, ion in enumerate(ions)}
        operand_positions = tuple(
            positions[q] for q in operands if q in positions
        )
        if not operand_positions:  # pragma: no cover - defensive
            return ()
        pairs = chain_spectators(operand_positions, range(len(ions)),
                                 max_distance)
        return tuple(sorted(
            (ions[position], distance) for position, distance in pairs
        ))

    def run(self, program: QccdProgram,
            *, circuit_name: str = "circuit",
            scenario: NoiseScenario | str | None = None) -> SimulationResult:
        """Replay *program*, accumulating heating and gate fidelities.

        Non-baseline *scenario* values adjust the success rate with the
        exact correlated-noise analytics (crosstalk inside each trap,
        leakage, per-transport heating bursts) and surface per-mechanism
        site telemetry in ``extras``.
        """
        scenario = resolve_scenario(scenario)
        trace = self.trace(program, scenario)
        result = self._result_from_trace(trace, program, circuit_name)
        if scenario.is_baseline:
            return result
        analytics = scenario_analytics(
            build_scenario_sites(trace.points, scenario), scenario
        )
        return analytics.apply_to(result)

    def _result_from_trace(self, trace: QccdTrace, program: QccdProgram,
                           circuit_name: str) -> SimulationResult:
        accumulator = SuccessRateAccumulator()
        for fidelity in trace.fidelities:
            accumulator.add(fidelity)
        return SimulationResult(
            architecture="QCCD",
            circuit_name=circuit_name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=trace.execution_time_us,
            num_gates=len(trace.gates),
            num_two_qubit_gates=trace.num_two_qubit,
            num_moves=program.num_shuttles,
            move_distance_um=0.0,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
            extras={**trace.final_quanta, **trace.telemetry},
        )

    def build_sampler(self, program: QccdProgram, *,
                      circuit_name: str = "circuit",
                      analytic: SimulationResult | None = None,
                      scenario: NoiseScenario | str | None = None,
                      ) -> StochasticSampler:
        """The :class:`StochasticSampler` of one QCCD program.

        The site/gate/analytic derivation of :meth:`run_stochastic`
        without drawing a shot, for callers that sample one program
        repeatedly.
        """
        scenario = resolve_scenario(scenario)
        trace = self.trace(program, scenario)
        expected_rate = None
        if scenario.is_baseline:
            sites = []
            for index, (gate, fidelity) in enumerate(
                zip(trace.gates, trace.fidelities)
            ):
                site = error_site_for_gate(index, gate, fidelity)
                if site is not None:
                    sites.append(site)
            if analytic is None:
                analytic = self._result_from_trace(trace, program,
                                                   circuit_name)
        else:
            sites = build_scenario_sites(trace.points, scenario)
            analytics = scenario_analytics(sites, scenario)
            expected_rate = analytics.success_rate
            if analytic is None:
                base = self._result_from_trace(trace, program, circuit_name)
                analytic = analytics.apply_to(base)
        return StochasticSampler(
            architecture="QCCD",
            circuit_name=circuit_name,
            sites=sites,
            gates=trace.gates,
            num_qubits=self.device.num_qubits,
            analytic=analytic,
            burst_multiplier=scenario.burst_error_multiplier,
            expected_rate=expected_rate,
        )

    def run_stochastic(self, program: QccdProgram,
                       *, shots: int, seed: int = 0, shot_offset: int = 0,
                       sample_counts: bool = False,
                       max_records: int = DEFAULT_MAX_RECORDS,
                       circuit_name: str = "circuit",
                       analytic: SimulationResult | None = None,
                       scenario: NoiseScenario | str | None = None,
                       exhaustive_shots: bool = False) -> ShotResult:
        """Monte-Carlo sample the program's noise, shot by shot.

        Same contract as :meth:`TiltSimulator.run_stochastic
        <repro.sim.tilt_sim.TiltSimulator.run_stochastic>` (including
        the ``exhaustive_shots`` reference mode): per-trap heating
        fidelities become stochastic Pauli channels and every shot draws
        from its own ``(seed, shot index)`` generator.  Counts sampling
        uses the program's gates over the physical ion indices.
        Non-baseline *scenario* values add in-trap crosstalk, leakage
        and per-transport heating-burst sites.
        """
        # the annotation types the receiver for the call-graph linter:
        # an untyped method-call result would name-match every `.run`
        sampler: StochasticSampler = self.build_sampler(program, circuit_name=circuit_name,
                                     analytic=analytic, scenario=scenario)
        return sampler.run(shots, seed=seed, shot_offset=shot_offset,
                           sample_counts=sample_counts,
                           max_records=max_records,
                           exhaustive_shots=exhaustive_shots)

    @staticmethod
    def _shuttle_time_us(event: QccdShuttleEvent) -> float:
        """Duration of one transport (split + hops + merge)."""
        return (
            event.splits * SPLIT_TIME_US
            + event.hops * SEGMENT_HOP_TIME_US
            + event.merges * MERGE_TIME_US
        )
