"""Batched per-shot random streams (vectorized SeedSequence + PCG64).

The determinism contract of :mod:`repro.sim.stochastic` roots every shot
in its own ``np.random.default_rng((seed, shot_index))`` generator, so a
shard ``[offset, offset + k)`` draws exactly what the same shots would
draw in a serial pass.  Constructing those generators one by one costs
~13 µs each — more than an entire vectorized shot — so this module
re-implements the two algorithms behind ``default_rng`` as NumPy array
kernels over a whole *batch* of shot indices at once:

* the :class:`numpy.random.SeedSequence` entropy-mixing hash (pool size
  4, the murmur-style ``hashmix``/``mix`` rounds) — the per-round hash
  constants are data-independent, so each round is one vectorized
  multiply/xor over the lane axis;
* the PCG64 (XSL-RR 128/64) state initialisation and step, with the
  128-bit LCG emulated as ``(hi, lo)`` uint64 pairs (the 64×64→128
  partial products are built from 32-bit limbs).

:class:`ShotLanes` holds one lane per shot.  ``draw(lanes)`` advances
exactly the selected lanes by one double draw — bit-identical to what
``shot_rng(seed, shot).random()`` would return for those shots — and
:meth:`ShotLanes.generator` reconstructs a real
:class:`numpy.random.Generator` mid-stream for the (rare) shots that
need scalar tail draws such as Pauli label choices.

Bit-compatibility with NumPy is pinned by ``tests/test_rng_kernels.py``
for every entry point; :func:`lanes_supported` gates the fallback to the
per-shot reference path for entropy shapes the kernels do not model
(seeds or shot indices at or beyond 2**64 / 2**32).
"""

from __future__ import annotations

import numpy as np

# ----------------------------------------------------------------------
# SeedSequence constants (numpy/random/bit_generator.pyx)
# ----------------------------------------------------------------------
_XSHIFT = np.uint32(16)
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_POOL_SIZE = 4
_M32 = (1 << 32) - 1

# ----------------------------------------------------------------------
# PCG64 constants (pcg64.h): the 128-bit LCG multiplier, split in limbs
# ----------------------------------------------------------------------
_MULT_HI = np.uint64(2549297995355413924)
_MULT_LO = np.uint64(4865540595714422341)
_ML_LOW32 = np.uint64(4865540595714422341 & _M32)
_ML_HIGH32 = np.uint64(4865540595714422341 >> 32)
_U32 = np.uint64(32)
_U64_LOW_MASK = np.uint64(_M32)
_R58 = np.uint64(58)
_R11 = np.uint64(11)
_ROT_MASK = np.uint64(63)
_U64_BITS = np.uint64(64)
#: 2**-53 — the double conversion used by ``Generator.random``.
_DOUBLE_SCALE = 1.0 / 9007199254740992.0

#: Entropy bounds the batched kernels model: a (seed, shot) pair whose
#: uint32 coercion is at most three words (two for the seed, one for
#: the shot index).  Anything larger falls back to per-shot generators.
MAX_LANE_SEED = 2**64 - 1
MAX_LANE_SHOT = 2**32 - 1


def lanes_supported(seed: int, max_shot_index: int) -> bool:
    """True when :class:`ShotLanes` models this entropy shape exactly."""
    return 0 <= seed <= MAX_LANE_SEED and 0 <= max_shot_index <= MAX_LANE_SHOT


def _hashmix_const_sequence(count: int, init: int, mult: int) -> list[int]:
    """The data-independent evolution of the SeedSequence hash constant."""
    constants = []
    const = init
    for _ in range(count):
        constants.append(const)
        const = (const * mult) & _M32
    return constants


class ShotLanes:
    """A batch of per-shot PCG64 streams advanced with array kernels.

    Lane ``i`` reproduces ``np.random.default_rng((seed,
    shot_indices[i]))`` draw for draw.  State is stored as four uint64
    arrays (state hi/lo, increment hi/lo) indexed by lane.
    """

    def __init__(self, seed: int, shot_indices: np.ndarray) -> None:
        shot_indices = np.ascontiguousarray(shot_indices, dtype=np.uint64)
        if shot_indices.ndim != 1:
            raise ValueError("shot_indices must be one-dimensional")
        if not lanes_supported(
            seed, int(shot_indices.max()) if shot_indices.size else 0
        ):
            raise ValueError("entropy outside the batched-kernel range")
        self.seed = int(seed)
        self.shot_indices = shot_indices
        self.num_lanes = shot_indices.shape[0]
        self._borrowed: tuple[np.random.PCG64, np.random.Generator] | None \
            = None
        pool = self._seed_pool(seed, shot_indices)
        words = self._generate_state64(pool, 4)
        istate_hi, istate_lo, iseq_hi, iseq_lo = words
        # pcg_setseq_128_srandom_r: inc = (initseq << 1) | 1;
        # state = inc + initstate; one step.
        self._inc_hi = (iseq_hi << np.uint64(1)) | (iseq_lo >> np.uint64(63))
        self._inc_lo = (iseq_lo << np.uint64(1)) | np.uint64(1)
        lo = self._inc_lo + istate_lo
        hi = self._inc_hi + istate_hi + (lo < self._inc_lo).astype(np.uint64)
        self._state_hi, self._state_lo = self._step(
            hi, lo, self._inc_hi, self._inc_lo
        )

    # ------------------------------------------------------------------
    # SeedSequence((seed, shot)) — vectorized over the shot lane axis
    # ------------------------------------------------------------------
    @staticmethod
    def _entropy_words(seed: int,
                       shot_indices: np.ndarray) -> list[np.ndarray]:
        """The uint32 entropy columns of ``SeedSequence((seed, shot))``.

        NumPy coerces each entropy element to its little-endian uint32
        words; seeds below 2**32 contribute one constant column, larger
        seeds two, and the shot index is always a single column here
        (``lanes_supported`` rejects wider shot indices).
        """
        lanes = shot_indices.shape[0]
        columns = [np.full(lanes, seed & _M32, np.uint32)]
        if seed > _M32:
            columns.append(np.full(lanes, (seed >> 32) & _M32, np.uint32))
        columns.append(shot_indices.astype(np.uint32))
        return columns

    @classmethod
    def _seed_pool(cls, seed: int,
                   shot_indices: np.ndarray) -> list[np.ndarray]:
        """``SeedSequence.mix_entropy`` over the lane axis (pool of 4)."""
        columns = cls._entropy_words(seed, shot_indices)
        lanes = shot_indices.shape[0]
        zeros = np.zeros(lanes, np.uint32)
        # hash constants are data-independent: precompute the sequence
        # for the pool fill plus the full cross-mix rounds
        n_hashes = _POOL_SIZE + _POOL_SIZE * (_POOL_SIZE - 1)
        pool: list[np.ndarray] = []
        const_iter = iter(_hashmix_const_sequence(n_hashes, _INIT_A, _MULT_A))

        def hash_one(value: np.ndarray) -> np.ndarray:
            const = next(const_iter)
            # hashmix: value ^= hash_const; hash_const *= MULT_A;
            # value *= hash_const(new); value ^= value >> XSHIFT
            new_const = (const * _MULT_A) & _M32
            out = (value ^ np.uint32(const)) * np.uint32(new_const)
            out = out.astype(np.uint32, copy=False)
            return out ^ (out >> _XSHIFT)

        def mix(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
            out = (_MIX_MULT_L * dst - _MIX_MULT_R * src)
            out = out.astype(np.uint32, copy=False)
            return out ^ (out >> _XSHIFT)

        for slot in range(_POOL_SIZE):
            source = columns[slot] if slot < len(columns) else zeros
            pool.append(hash_one(source))
        for i_src in range(_POOL_SIZE):
            for i_dst in range(_POOL_SIZE):
                if i_src != i_dst:
                    pool[i_dst] = mix(pool[i_dst], hash_one(pool[i_src]))
        # entropy longer than the pool folds in afterwards — impossible
        # here (at most 3 columns), kept as a guard for future widening
        for extra in columns[_POOL_SIZE:]:  # pragma: no cover
            for i_dst in range(_POOL_SIZE):
                pool[i_dst] = mix(pool[i_dst], hash_one(extra))
        return pool

    @staticmethod
    def _generate_state64(pool: list[np.ndarray],
                          n_words64: int) -> list[np.ndarray]:
        """``SeedSequence.generate_state(n, uint64)`` over the lane axis."""
        const_iter = iter(
            _hashmix_const_sequence(2 * n_words64, _INIT_B, _MULT_B)
        )
        words32: list[np.ndarray] = []
        for position in range(2 * n_words64):
            const = next(const_iter)
            new_const = (const * _MULT_B) & _M32
            value = pool[position % _POOL_SIZE]
            value = (value ^ np.uint32(const)) * np.uint32(new_const)
            value = value.astype(np.uint32, copy=False)
            value ^= value >> _XSHIFT
            words32.append(value)
        # uint32 pairs pack little-endian into uint64 output words
        return [
            words32[2 * k].astype(np.uint64)
            | (words32[2 * k + 1].astype(np.uint64) << _U32)
            for k in range(n_words64)
        ]

    # ------------------------------------------------------------------
    # PCG64 step + XSL-RR output
    # ------------------------------------------------------------------
    @staticmethod
    def _step(hi: np.ndarray, lo: np.ndarray, inc_hi: np.ndarray,
              inc_lo: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One 128-bit LCG step: ``state = state * MULT + inc``."""
        a0 = lo & _U64_LOW_MASK
        a1 = lo >> _U32
        p00 = a0 * _ML_LOW32
        p01 = a0 * _ML_HIGH32
        p10 = a1 * _ML_LOW32
        p11 = a1 * _ML_HIGH32
        mid = (p00 >> _U32) + (p01 & _U64_LOW_MASK) + (p10 & _U64_LOW_MASK)
        new_lo = (p00 & _U64_LOW_MASK) | (mid << _U32)
        carry = (mid >> _U32) + (p01 >> _U32) + (p10 >> _U32)
        new_hi = p11 + carry + hi * _MULT_LO + lo * _MULT_HI
        out_lo = new_lo + inc_lo
        new_hi = new_hi + inc_hi + (out_lo < new_lo).astype(np.uint64)
        return new_hi, out_lo

    @staticmethod
    def _output(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
        """XSL-RR: rotate ``hi ^ lo`` right by the top 6 state bits."""
        word = hi ^ lo
        rot = hi >> _R58
        # (64 - rot) & 63 keeps the complementary shift in range when
        # rot == 0 (x << 64 is undefined; x << 0 | x >> 0 == x is right)
        return (word >> rot) | (word << ((_U64_BITS - rot) & _ROT_MASK))

    def draw(self, lanes: np.ndarray | None = None) -> np.ndarray:
        """Advance the selected *lanes* one step; their next double draw.

        Bit-identical to ``shot_rng(seed, shot_indices[lane]).random()``
        at the equivalent stream position.  *lanes* is an integer index
        array (default: every lane).
        """
        if lanes is None:
            hi, lo = self._step(self._state_hi, self._state_lo,
                                self._inc_hi, self._inc_lo)
            self._state_hi, self._state_lo = hi, lo
        else:
            hi, lo = self._step(self._state_hi[lanes], self._state_lo[lanes],
                                self._inc_hi[lanes], self._inc_lo[lanes])
            self._state_hi[lanes] = hi
            self._state_lo[lanes] = lo
        return (self._output(hi, lo) >> _R11) * _DOUBLE_SCALE

    # ------------------------------------------------------------------
    # Mid-stream hand-off to a real numpy Generator
    # ------------------------------------------------------------------
    def state128(self, lane: int) -> tuple[int, int]:
        """The (state, inc) 128-bit integers of one lane, mid-stream."""
        state = (int(self._state_hi[lane]) << 64) | int(self._state_lo[lane])
        inc = (int(self._inc_hi[lane]) << 64) | int(self._inc_lo[lane])
        return state, inc

    def generator(self, lane: int) -> np.random.Generator:
        """A :class:`numpy.random.Generator` continuing *lane*'s stream.

        The returned generator's next draws equal what the original
        per-shot ``default_rng((seed, shot))`` would produce after the
        draws this lane has already consumed — used for the scalar tail
        draws (Pauli labels, outcome uniforms) of the few shots that
        need them.
        """
        state, inc = self.state128(lane)
        bit_generator = np.random.PCG64()
        bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        }
        return np.random.Generator(bit_generator)

    def borrow_generator(self, lane: int) -> np.random.Generator:
        """Like :meth:`generator`, but reusing one shared instance.

        Constructing a fresh ``PCG64`` costs more than an entire
        vectorized shot, so tight replay loops borrow a single cached
        generator whose state is re-pointed at *lane*.  The returned
        object is only valid until the next ``borrow_generator`` call;
        callers that need independent generators side by side must use
        :meth:`generator`.
        """
        borrowed = self._borrowed
        if borrowed is None:
            bit_generator = np.random.PCG64()
            borrowed = (bit_generator, np.random.Generator(bit_generator))
            self._borrowed = borrowed
        bit_generator, generator = borrowed
        state, inc = self.state128(lane)
        bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        }
        return generator
