"""Simulators: exact statevector, noisy TILT / QCCD / Ideal-TI models, and
the shot-based stochastic (Monte-Carlo) noise subsystem."""

from repro.sim.ideal_sim import IdealSimulator
from repro.sim.qccd_sim import QccdSimulator, QccdTrace
from repro.sim.result import SimulationResult
from repro.sim.statevector import (
    MAX_STATEVECTOR_QUBITS,
    StatevectorSimulator,
    states_equal_up_to_global_phase,
)
from repro.sim.stochastic import (
    DEFAULT_MAX_RECORDS,
    ShotRecord,
    ShotResult,
    StochasticSampler,
    merge_shot_results,
    shot_rng,
    wilson_interval,
)
from repro.sim.tilt_sim import TiltSimulator

__all__ = [
    "DEFAULT_MAX_RECORDS",
    "IdealSimulator",
    "MAX_STATEVECTOR_QUBITS",
    "QccdSimulator",
    "QccdTrace",
    "ShotRecord",
    "ShotResult",
    "SimulationResult",
    "StatevectorSimulator",
    "StochasticSampler",
    "TiltSimulator",
    "merge_shot_results",
    "shot_rng",
    "states_equal_up_to_global_phase",
    "wilson_interval",
]
