"""Simulators: exact statevector plus noisy TILT / QCCD / Ideal-TI models."""

from repro.sim.ideal_sim import IdealSimulator
from repro.sim.qccd_sim import QccdSimulator
from repro.sim.result import SimulationResult
from repro.sim.statevector import (
    MAX_STATEVECTOR_QUBITS,
    StatevectorSimulator,
    states_equal_up_to_global_phase,
)
from repro.sim.tilt_sim import TiltSimulator

__all__ = [
    "IdealSimulator",
    "MAX_STATEVECTOR_QUBITS",
    "QccdSimulator",
    "SimulationResult",
    "StatevectorSimulator",
    "TiltSimulator",
    "states_equal_up_to_global_phase",
]
