"""Ideal trapped-ion simulator.

The "Ideal TI" reference of Figure 8: every pair of ions can interact
directly (one laser pair per ion), so no SWAPs are inserted and the chain
never shuttles.  Gates still pay the distance-dependent AM gate time and its
background-heating error, and two-qubit gates still carry the residual error
epsilon, but the motional energy stays at zero.
"""

from __future__ import annotations

from repro.arch.ideal import IdealTrappedIonDevice
from repro.circuits.circuit import Circuit
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.exceptions import SimulationError
from repro.noise.channels import error_site_for_gate
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import (
    GatePoint,
    NoiseScenario,
    TimelinePoint,
    build_scenario_sites,
    chain_spectators,
    resolve_scenario,
    scenario_analytics,
)
from repro.sim.result import SimulationResult
from repro.sim.stochastic import (
    DEFAULT_MAX_RECORDS,
    ShotResult,
    StochasticSampler,
)


class IdealSimulator:
    """Fidelity/time estimator for a fully connected trapped-ion device."""

    def __init__(self, device: IdealTrappedIonDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    def _native(self, circuit: Circuit, already_native: bool) -> Circuit:
        if circuit.num_qubits > self.device.num_qubits:
            raise SimulationError(
                f"circuit needs {circuit.num_qubits} qubits but the device "
                f"has {self.device.num_qubits}"
            )
        return circuit if already_native else merge_adjacent_rotations(
            decompose_to_native(circuit.without(["barrier"]))
        )

    def run(self, circuit: Circuit, *,
            already_native: bool = False,
            scenario: NoiseScenario | str | None = None) -> SimulationResult:
        """Estimate success rate and run time of *circuit* on the ideal device.

        The ideal device never shuttles, so heating bursts are inert
        here; crosstalk (kicks on chain neighbours of each MS gate's
        operands) and leakage still apply under non-baseline *scenario*
        values.
        """
        scenario = resolve_scenario(scenario)
        native = self._native(circuit, already_native)
        result = self._result_from_native(circuit.name, native)
        if scenario.is_baseline:
            return result
        analytics = scenario_analytics(
            build_scenario_sites(self.scenario_points(native, scenario),
                                 scenario),
            scenario,
        )
        return analytics.apply_to(result)

    def scenario_points(self, native: Circuit,
                        scenario: NoiseScenario) -> list[TimelinePoint]:
        """The correlated-noise timeline of a native circuit.

        Every ion has its own laser pair but all ions share one chain, so
        crosstalk spectators are the chain neighbours of the gate's
        operands (by index distance); there are no shuttles and hence no
        burst windows.
        """
        want_spectators = scenario.crosstalk_strength > 0.0
        all_ions = range(native.num_qubits)
        points: list[TimelinePoint] = []
        for index, gate in enumerate(native):
            spectators = ()
            if want_spectators and gate.num_qubits == 2:
                spectators = chain_spectators(
                    gate.qubits, all_ions, scenario.crosstalk_range
                )
            points.append(GatePoint(
                index=index,
                gate=gate,
                fidelity=gate_fidelity(gate, 0.0, self.params),
                spectators=spectators,
            ))
        return points

    def _result_from_native(self, name: str,
                            native: Circuit) -> SimulationResult:
        accumulator = SuccessRateAccumulator()
        finish_at: dict[int, float] = {}
        total_time = 0.0
        for gate in native:
            accumulator.add(gate_fidelity(gate, 0.0, self.params))
            duration = gate_time_us(gate, self.params)
            start = max((finish_at.get(q, 0.0) for q in gate.qubits), default=0.0)
            end = start + duration
            for qubit in gate.qubits:
                finish_at[qubit] = end
            total_time = max(total_time, end)
        return SimulationResult(
            architecture="Ideal TI",
            circuit_name=name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=total_time,
            num_gates=native.num_gates(),
            num_two_qubit_gates=native.num_two_qubit_gates(),
            num_moves=0,
            move_distance_um=0.0,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
        )

    def build_sampler(self, circuit: Circuit, *,
                      already_native: bool = False,
                      analytic: SimulationResult | None = None,
                      scenario: NoiseScenario | str | None = None,
                      ) -> StochasticSampler:
        """The :class:`StochasticSampler` of *circuit* on the ideal device.

        The site/gate/analytic derivation of :meth:`run_stochastic`
        without drawing a shot, for callers that sample one program
        repeatedly.
        """
        scenario = resolve_scenario(scenario)
        native = self._native(circuit, already_native)
        gates = list(native)
        expected_rate = None
        if scenario.is_baseline:
            sites = []
            for index, gate in enumerate(gates):
                fidelity = gate_fidelity(gate, 0.0, self.params)
                site = error_site_for_gate(index, gate, fidelity)
                if site is not None:
                    sites.append(site)
            if analytic is None:
                analytic = self._result_from_native(circuit.name, native)
        else:
            sites = build_scenario_sites(
                self.scenario_points(native, scenario), scenario
            )
            analytics = scenario_analytics(sites, scenario)
            expected_rate = analytics.success_rate
            if analytic is None:
                base = self._result_from_native(circuit.name, native)
                analytic = analytics.apply_to(base)
        return StochasticSampler(
            architecture="Ideal TI",
            circuit_name=circuit.name,
            sites=sites,
            gates=gates,
            num_qubits=native.num_qubits,
            analytic=analytic,
            burst_multiplier=scenario.burst_error_multiplier,
            expected_rate=expected_rate,
        )

    def run_stochastic(self, circuit: Circuit, *, shots: int, seed: int = 0,
                       shot_offset: int = 0, sample_counts: bool = False,
                       max_records: int = DEFAULT_MAX_RECORDS,
                       already_native: bool = False,
                       analytic: SimulationResult | None = None,
                       scenario: NoiseScenario | str | None = None,
                       exhaustive_shots: bool = False) -> ShotResult:
        """Monte-Carlo sample the ideal device's (heating-free) noise.

        Same contract as :meth:`TiltSimulator.run_stochastic
        <repro.sim.tilt_sim.TiltSimulator.run_stochastic>` (including
        the ``exhaustive_shots`` reference mode); every gate sees zero
        motional quanta, matching :meth:`run`.  Non-baseline *scenario*
        values add crosstalk and leakage sites (bursts are inert — the
        ideal device never shuttles).
        """
        # the annotation types the receiver for the call-graph linter:
        # an untyped method-call result would name-match every `.run`
        sampler: StochasticSampler = self.build_sampler(circuit, already_native=already_native,
                                     analytic=analytic, scenario=scenario)
        return sampler.run(shots, seed=seed, shot_offset=shot_offset,
                           sample_counts=sample_counts,
                           max_records=max_records,
                           exhaustive_shots=exhaustive_shots)
