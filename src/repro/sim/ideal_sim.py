"""Ideal trapped-ion simulator.

The "Ideal TI" reference of Figure 8: every pair of ions can interact
directly (one laser pair per ion), so no SWAPs are inserted and the chain
never shuttles.  Gates still pay the distance-dependent AM gate time and its
background-heating error, and two-qubit gates still carry the residual error
epsilon, but the motional energy stays at zero.
"""

from __future__ import annotations

from repro.arch.ideal import IdealTrappedIonDevice
from repro.circuits.circuit import Circuit
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.exceptions import SimulationError
from repro.noise.fidelity import SuccessRateAccumulator, gate_fidelity
from repro.noise.gate_times import gate_time_us
from repro.noise.parameters import NoiseParameters
from repro.sim.result import SimulationResult


class IdealSimulator:
    """Fidelity/time estimator for a fully connected trapped-ion device."""

    def __init__(self, device: IdealTrappedIonDevice,
                 params: NoiseParameters | None = None) -> None:
        self.device = device
        self.params = params or NoiseParameters.paper_defaults()

    def run(self, circuit: Circuit, *,
            already_native: bool = False) -> SimulationResult:
        """Estimate success rate and run time of *circuit* on the ideal device."""
        if circuit.num_qubits > self.device.num_qubits:
            raise SimulationError(
                f"circuit needs {circuit.num_qubits} qubits but the device "
                f"has {self.device.num_qubits}"
            )
        native = circuit if already_native else merge_adjacent_rotations(
            decompose_to_native(circuit.without(["barrier"]))
        )
        accumulator = SuccessRateAccumulator()
        finish_at: dict[int, float] = {}
        total_time = 0.0
        for gate in native:
            accumulator.add(gate_fidelity(gate, 0.0, self.params))
            duration = gate_time_us(gate, self.params)
            start = max((finish_at.get(q, 0.0) for q in gate.qubits), default=0.0)
            end = start + duration
            for qubit in gate.qubits:
                finish_at[qubit] = end
            total_time = max(total_time, end)
        return SimulationResult(
            architecture="Ideal TI",
            circuit_name=circuit.name,
            success_rate=accumulator.success_rate,
            log10_success_rate=accumulator.log10_success_rate,
            execution_time_us=total_time,
            num_gates=native.num_gates(),
            num_two_qubit_gates=native.num_two_qubit_gates(),
            num_moves=0,
            move_distance_um=0.0,
            average_gate_fidelity=accumulator.average_gate_fidelity,
            worst_gate_fidelity=accumulator.worst_gate_fidelity,
        )
