"""Compilation statistics.

Collects the structural quantities the paper reports for compiled circuits:
swap counts and opposing-swap ratio (Figure 6), tape-move counts and travel
distance (Table III), plus gate counts and depth of the scheduled circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.executable import ExecutableProgram
from repro.compiler.routing import RoutingResult


@dataclass(frozen=True)
class CompileStats:
    """Aggregate numbers describing one compiled program.

    ``num_gates`` counts every non-barrier operation (including measures,
    matching :meth:`repro.circuits.circuit.Circuit.num_gates`);
    ``num_one_qubit_gates`` counts only single-qubit *unitaries*, and
    ``num_other_ops`` the non-unitary operations counted in ``num_gates``
    (i.e. measures — barriers are structural and excluded from every
    count here), so ``num_gates == num_one_qubit_gates +
    num_two_qubit_gates + num_other_ops`` always holds.
    """

    num_gates: int
    num_two_qubit_gates: int
    num_one_qubit_gates: int
    num_other_ops: int
    num_swaps: int
    num_opposing_swaps: int
    opposing_swap_ratio: float
    max_swap_span: int
    num_moves: int
    move_distance_ions: int
    move_distance_um: float
    depth: int
    time_decompose_s: float
    time_swap_s: float
    time_schedule_s: float

    @property
    def total_compile_time_s(self) -> float:
        """Total wall-clock compile time."""
        return self.time_decompose_s + self.time_swap_s + self.time_schedule_s


def collect_stats(
    routing: RoutingResult,
    program: ExecutableProgram,
    *,
    time_decompose_s: float,
    time_swap_s: float,
    time_schedule_s: float,
) -> CompileStats:
    """Assemble :class:`CompileStats` from the routing and scheduling outputs."""
    circuit = program.circuit
    num_two_qubit = circuit.num_two_qubit_gates()
    num_gates = circuit.num_gates()
    num_one_qubit = sum(
        1 for gate in circuit if gate.num_qubits == 1 and gate.is_unitary
    )
    num_other = sum(
        1 for gate in circuit
        if not gate.is_unitary and gate.name != "barrier"
    )
    return CompileStats(
        num_gates=num_gates,
        num_two_qubit_gates=num_two_qubit,
        num_one_qubit_gates=num_one_qubit,
        num_other_ops=num_other,
        num_swaps=routing.num_swaps,
        num_opposing_swaps=routing.num_opposing_swaps,
        opposing_swap_ratio=routing.opposing_swap_ratio,
        max_swap_span=routing.max_swap_span(),
        num_moves=program.num_moves,
        move_distance_ions=program.move_distance_ions,
        move_distance_um=program.move_distance_um,
        depth=circuit.depth(),
        time_decompose_s=time_decompose_s,
        time_swap_s=time_swap_s,
        time_schedule_s=time_schedule_s,
    )
