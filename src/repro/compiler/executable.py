"""Executable-program representation for TILT.

After routing and tape-movement scheduling, a program is a sequence of
*segments*: the head sits at one position, a batch of gates is executed,
then the whole chain shuttles to the next position.  The
:class:`ExecutableProgram` ties the routed (physical) circuit, the target
device and the segment schedule together; it is the object the TILT
simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class TapeSegment:
    """Gates executed while the head sits at one position.

    Attributes
    ----------
    position:
        Head position (index of the leftmost ion under the head).
    gate_indices:
        Indices into the routed circuit, in a dependency-respecting order.
    """

    position: int
    gate_indices: tuple[int, ...]

    @property
    def num_gates(self) -> int:
        return len(self.gate_indices)


@dataclass
class ExecutableProgram:
    """A fully scheduled TILT program."""

    circuit: Circuit
    device: TiltDevice
    segments: list[TapeSegment] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregate metrics (the #moves / dist columns of Table III)
    # ------------------------------------------------------------------
    @property
    def num_moves(self) -> int:
        """Number of tape movements (the initial alignment is free)."""
        return max(0, len(self.segments) - 1)

    @property
    def move_distance_ions(self) -> int:
        """Total tape travel in units of ion spacings."""
        positions = [segment.position for segment in self.segments]
        return sum(
            abs(b - a) for a, b in zip(positions, positions[1:])
        )

    @property
    def move_distance_um(self) -> float:
        """Total tape travel in micrometres."""
        return self.move_distance_ions * self.device.ion_spacing_um

    @property
    def num_scheduled_gates(self) -> int:
        """Total number of gates across all segments."""
        return sum(segment.num_gates for segment in self.segments)

    def positions(self) -> list[int]:
        """The head position of every segment, in execution order."""
        return [segment.position for segment in self.segments]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def gates_with_move_counts(self) -> Iterator[tuple[Gate, int]]:
        """Yield ``(gate, moves_before)`` for every gate in execution order.

        ``moves_before`` is the number of tape movements that happened before
        the gate runs — the ``m`` of Eq. 4.
        """
        for segment_index, segment in enumerate(self.segments):
            for gate_index in segment.gate_indices:
                yield self.circuit[gate_index], segment_index

    def gates_by_segment(self) -> Iterator[tuple[TapeSegment, list[Gate]]]:
        """Yield each segment together with its gates."""
        for segment in self.segments:
            yield segment, [self.circuit[i] for i in segment.gate_indices]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the schedule is complete, windowed and dependency-correct.

        Raises
        ------
        SchedulingError
            If a gate is missing/duplicated, lies outside its segment's
            window, or runs before one of its predecessors.
        """
        scheduled: list[int] = []
        for segment in self.segments:
            window = self.device.window(segment.position)
            for gate_index in segment.gate_indices:
                gate = self.circuit[gate_index]
                if any(q not in window for q in gate.qubits):
                    raise SchedulingError(
                        f"gate {gate_index} ({gate}) outside window of "
                        f"position {segment.position}"
                    )
                scheduled.append(gate_index)
        if sorted(scheduled) != list(range(len(self.circuit))):
            raise SchedulingError(
                "schedule does not cover every gate exactly once"
            )
        last_seen_on_qubit: dict[int, int] = {}
        for gate_index in scheduled:
            gate = self.circuit[gate_index]
            for qubit in gate.qubits:
                previous = last_seen_on_qubit.get(qubit)
                if previous is not None and previous > gate_index:
                    raise SchedulingError(
                        f"gate {gate_index} runs after later gate {previous} "
                        f"on qubit {qubit}"
                    )
                last_seen_on_qubit[qubit] = gate_index

    def summary(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"ExecutableProgram: {len(self.circuit)} gates in "
            f"{len(self.segments)} segments, {self.num_moves} moves, "
            f"{self.move_distance_um:.0f} um tape travel"
        )
