"""The LinQ compiler: decomposition, mapping, routing and scheduling."""

from repro.compiler.decompose import (
    decompose_to_cx,
    decompose_to_native,
    merge_adjacent_rotations,
)
from repro.compiler.executable import ExecutableProgram, TapeSegment
from repro.compiler.layout import QubitMapping, extend_mapping
from repro.compiler.mapping import (
    GreedyInteractionMapper,
    SpectralMapper,
    TrivialMapper,
    interaction_matrix,
    make_mapper,
)
from repro.compiler.metrics import CompileStats, collect_stats
from repro.compiler.pipeline import (
    CompileResult,
    CompilerConfig,
    LinQCompiler,
    compile_for_tilt,
)
from repro.compiler.qccd_compiler import (
    QccdCompiler,
    QccdGateEvent,
    QccdProgram,
    QccdShuttleEvent,
    compile_for_qccd,
)
from repro.compiler.routing import RoutingResult, SwapRecord, check_routed
from repro.compiler.schedule import (
    SchedulerConfig,
    TapeScheduler,
    schedule_tape_moves,
)
from repro.compiler.swap_baseline import BaselineSwapInserter
from repro.compiler.swap_linq import LinqSwapInserter

__all__ = [
    "BaselineSwapInserter",
    "CompileResult",
    "CompileStats",
    "CompilerConfig",
    "ExecutableProgram",
    "GreedyInteractionMapper",
    "LinQCompiler",
    "LinqSwapInserter",
    "QccdCompiler",
    "QccdGateEvent",
    "QccdProgram",
    "QccdShuttleEvent",
    "QubitMapping",
    "RoutingResult",
    "SchedulerConfig",
    "SpectralMapper",
    "SwapRecord",
    "TapeScheduler",
    "TapeSegment",
    "TrivialMapper",
    "check_routed",
    "collect_stats",
    "compile_for_qccd",
    "compile_for_tilt",
    "decompose_to_cx",
    "decompose_to_native",
    "extend_mapping",
    "interaction_matrix",
    "make_mapper",
    "merge_adjacent_rotations",
    "schedule_tape_moves",
]
