"""Shared types and helpers for swap-insertion (routing) passes.

Both routers — the baseline stochastic inserter and the LinQ heuristic of
Algorithm 1 — consume a *logical* circuit plus an initial
:class:`~repro.compiler.layout.QubitMapping` and produce a *physical*
circuit in which every two-qubit gate fits under the laser head, together
with a record of every inserted SWAP (and whether it was an opposing swap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler.layout import QubitMapping
from repro.exceptions import RoutingError


@dataclass(frozen=True)
class SwapRecord:
    """One SWAP inserted by a router.

    Attributes
    ----------
    physical_pair:
        The two physical positions exchanged (sorted ascending).
    gate_index:
        Index of the SWAP gate in the routed circuit.
    resolving_gate_index:
        Index (in the *logical* circuit) of the two-qubit gate this SWAP was
        inserted to resolve.
    opposing:
        True when the SWAP simultaneously moves data usefully in both
        directions (Figure 2(c) of the paper).
    """

    physical_pair: tuple[int, int]
    gate_index: int
    resolving_gate_index: int
    opposing: bool

    @property
    def span(self) -> int:
        """Physical distance covered by the SWAP."""
        return self.physical_pair[1] - self.physical_pair[0]


@dataclass
class RoutingResult:
    """Output of a routing pass."""

    circuit: Circuit
    initial_mapping: QubitMapping
    final_mapping: QubitMapping
    swaps: list[SwapRecord] = field(default_factory=list)

    @property
    def num_swaps(self) -> int:
        """Total number of inserted SWAP gates."""
        return len(self.swaps)

    @property
    def num_opposing_swaps(self) -> int:
        """Number of SWAPs classified as opposing."""
        return sum(1 for record in self.swaps if record.opposing)

    @property
    def opposing_swap_ratio(self) -> float:
        """Fraction of SWAPs that were opposing (0.0 when no SWAPs)."""
        if not self.swaps:
            return 0.0
        return self.num_opposing_swaps / self.num_swaps

    def max_swap_span(self) -> int:
        """Largest physical span among inserted SWAPs (0 when none)."""
        return max((record.span for record in self.swaps), default=0)


def check_routed(circuit: Circuit, device: TiltDevice) -> None:
    """Raise :class:`RoutingError` unless every 2q gate fits under the head."""
    for index, gate in enumerate(circuit):
        if gate.is_two_qubit and gate.span > device.max_gate_span:
            raise RoutingError(
                f"gate {index} ({gate}) spans {gate.span} > "
                f"{device.max_gate_span}"
            )


def pending_two_qubit_gates(circuit: Circuit, start_index: int,
                            limit: int) -> list[tuple[int, Gate]]:
    """The next *limit* two-qubit gates of *circuit* from *start_index* on."""
    window: list[tuple[int, Gate]] = []
    for index in range(start_index, len(circuit)):
        gate = circuit[index]
        if gate.is_two_qubit:
            window.append((index, gate))
            if len(window) >= limit:
                break
    return window


def classify_opposing(swap_low: int, swap_high: int,
                      pending: Sequence[tuple[int, Gate]],
                      mapping: QubitMapping) -> bool:
    """Decide whether swapping positions (low, high) is an opposing swap.

    The swap moves the ion at ``swap_low`` rightwards and the ion at
    ``swap_high`` leftwards.  It is *opposing* when at least one pending
    two-qubit gate gets closer because of the rightward move **and** another
    pending gate gets closer because of the leftward move — i.e. two data
    movements in opposite directions were combined into a single SWAP
    (Figure 2(c)).  The gate joining the two swapped ions themselves keeps
    its distance and never counts.
    """
    logical_low = mapping.logical(swap_low)
    logical_high = mapping.logical(swap_high)
    rightward_benefits = False
    leftward_benefits = False
    for _, gate in pending:
        a, b = gate.qubits
        if logical_low in (a, b) and logical_high in (a, b):
            continue  # the swapped pair itself: distance unchanged
        if logical_low in (a, b):
            partner = b if a == logical_low else a
            partner_position = mapping.physical(partner)
            if abs(partner_position - swap_high) < abs(partner_position - swap_low):
                rightward_benefits = True
        if logical_high in (a, b):
            partner = b if a == logical_high else a
            partner_position = mapping.physical(partner)
            if abs(partner_position - swap_low) < abs(partner_position - swap_high):
                leftward_benefits = True
        if rightward_benefits and leftward_benefits:
            return True
    return False
