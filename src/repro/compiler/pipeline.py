"""The LinQ compilation pipeline (Figure 4 of the paper).

``quantum program -> native gate decomposition -> qubit mapping + swap
insertion -> tape movement scheduling -> executable program``.

:class:`LinQCompiler` wires the individual passes together and records
wall-clock timings for the Table III columns (t_swap, t_move).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.compiler.executable import ExecutableProgram
from repro.compiler.layout import QubitMapping
from repro.compiler.mapping import make_mapper
from repro.compiler.metrics import CompileStats, collect_stats
from repro.compiler.routing import RoutingResult
from repro.compiler.schedule import SchedulerConfig, TapeScheduler
from repro.compiler.swap_baseline import BaselineSwapInserter
from repro.compiler.swap_linq import LinqSwapInserter
from repro.exceptions import CompilationError


@dataclass(frozen=True)
class CompilerConfig:
    """All tunable knobs of the LinQ pipeline.

    Attributes
    ----------
    mapper:
        Initial-mapping strategy: ``"trivial"``, ``"spectral"`` or
        ``"greedy"`` (see :mod:`repro.compiler.mapping`).
    router:
        Swap-insertion strategy: ``"linq"`` (Algorithm 1) or ``"baseline"``
        (the StochasticSwap-style strawman).
    max_swap_len:
        Maximum SWAP span; ``None`` means ``head_size - 1``.  Restricting it
        below the maximum trades a few extra swaps for scheduling freedom
        (Figure 7).
    lookahead_window, alpha:
        Eq. 1 scoring parameters of the LinQ router.
    baseline_trials, seed:
        Randomisation controls of the baseline router.
    merge_rotations:
        Fuse adjacent same-axis rotations after decomposition.
    strip_barriers:
        Remove barriers before scheduling (a full-width barrier can never
        fit under the head).
    initial_position, prefer_near_moves:
        Scheduler options (see :class:`~repro.compiler.schedule.SchedulerConfig`).
    """

    mapper: str = "trivial"
    router: str = "linq"
    max_swap_len: int | None = None
    lookahead_window: int = 200
    alpha: float = 0.98
    baseline_trials: int = 5
    seed: int = 11
    merge_rotations: bool = True
    strip_barriers: bool = True
    initial_position: int | None = None
    prefer_near_moves: bool = True

    def with_overrides(self, **kwargs: object) -> "CompilerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class CompileResult:
    """Everything produced by one run of the LinQ pipeline."""

    source_circuit: Circuit
    native_circuit: Circuit
    routing: RoutingResult
    program: ExecutableProgram
    stats: CompileStats
    device: TiltDevice
    config: CompilerConfig

    @property
    def routed_circuit(self) -> Circuit:
        """The physical circuit with SWAPs inserted."""
        return self.routing.circuit

    @property
    def initial_mapping(self) -> QubitMapping:
        return self.routing.initial_mapping

    @property
    def final_mapping(self) -> QubitMapping:
        return self.routing.final_mapping

    def summary(self) -> str:
        """Human-readable multi-line description of the compilation."""
        stats = self.stats
        return "\n".join(
            [
                f"compiled {self.source_circuit.name!r} for "
                f"{self.device.describe()}",
                f"  native gates : {stats.num_gates} "
                f"({stats.num_two_qubit_gates} two-qubit)",
                f"  swaps        : {stats.num_swaps} "
                f"({stats.num_opposing_swaps} opposing, "
                f"ratio {stats.opposing_swap_ratio:.2f})",
                f"  tape moves   : {stats.num_moves} "
                f"({stats.move_distance_um:.0f} um travel)",
                f"  compile time : {stats.total_compile_time_s:.3f} s "
                f"(swap {stats.time_swap_s:.3f} s, "
                f"schedule {stats.time_schedule_s:.3f} s)",
            ]
        )


class LinQCompiler:
    """End-to-end compiler from a logical circuit to a TILT executable."""

    def __init__(self, device: TiltDevice,
                 config: CompilerConfig | None = None) -> None:
        self.device = device
        self.config = config or CompilerConfig()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def compile(self, circuit: Circuit,
                initial_mapping: QubitMapping | None = None) -> CompileResult:
        """Run decomposition, mapping, routing and scheduling on *circuit*."""
        if circuit.num_qubits > self.device.num_qubits:
            raise CompilationError(
                f"circuit needs {circuit.num_qubits} qubits but the device "
                f"has {self.device.num_qubits}"
            )
        config = self.config

        start = time.perf_counter()
        native = self._decompose(circuit)
        time_decompose = time.perf_counter() - start

        start = time.perf_counter()
        mapping = initial_mapping or self._initial_mapping(native)
        routing = self._route(native, mapping)
        time_swap = time.perf_counter() - start

        start = time.perf_counter()
        scheduler = TapeScheduler(
            self.device,
            SchedulerConfig(
                initial_position=config.initial_position,
                prefer_near_moves=config.prefer_near_moves,
            ),
        )
        program = scheduler.schedule(routing.circuit)
        time_schedule = time.perf_counter() - start

        stats = collect_stats(
            routing,
            program,
            time_decompose_s=time_decompose,
            time_swap_s=time_swap,
            time_schedule_s=time_schedule,
        )
        return CompileResult(
            source_circuit=circuit,
            native_circuit=native,
            routing=routing,
            program=program,
            stats=stats,
            device=self.device,
            config=config,
        )

    # ------------------------------------------------------------------
    # Individual passes
    # ------------------------------------------------------------------
    def _decompose(self, circuit: Circuit) -> Circuit:
        working = circuit
        if self.config.strip_barriers:
            working = working.without(["barrier"])
        native = decompose_to_native(working)
        if self.config.merge_rotations:
            native = merge_adjacent_rotations(native)
        return native

    def _initial_mapping(self, native: Circuit) -> QubitMapping:
        mapper = make_mapper(self.config.mapper)
        return mapper.map(native, self.device.num_qubits)

    def _route(self, native: Circuit, mapping: QubitMapping) -> RoutingResult:
        config = self.config
        if config.router == "linq":
            router = LinqSwapInserter(
                self.device,
                max_swap_len=config.max_swap_len,
                lookahead_window=config.lookahead_window,
                alpha=config.alpha,
            )
        elif config.router == "baseline":
            router = BaselineSwapInserter(
                self.device,
                max_swap_len=config.max_swap_len,
                trials=config.baseline_trials,
                seed=config.seed,
            )
        else:
            raise CompilationError(
                f"unknown router {config.router!r}; choose 'linq' or 'baseline'"
            )
        return router.route(native, mapping)


def compile_for_tilt(circuit: Circuit, device: TiltDevice,
                     config: CompilerConfig | None = None) -> CompileResult:
    """Convenience wrapper: compile *circuit* for *device* in one call."""
    return LinQCompiler(device, config).compile(circuit)
