"""Logical-to-physical qubit mapping.

On a TILT machine the physical qubits are positions along the ion chain.  A
:class:`QubitMapping` is a bijection between the program's logical qubits and
those positions; routing updates it every time a SWAP is inserted.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuits.gate import Gate
from repro.exceptions import CompilationError


class QubitMapping:
    """Bijective map between logical qubits and physical chain positions."""

    def __init__(self, logical_to_physical: Sequence[int]) -> None:
        layout = list(int(p) for p in logical_to_physical)
        size = len(layout)
        if sorted(layout) != list(range(size)):
            raise CompilationError(
                "logical_to_physical must be a permutation of 0..n-1"
            )
        self._log_to_phys = layout
        self._phys_to_log = [0] * size
        for logical, physical in enumerate(layout):
            self._phys_to_log[physical] = logical

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "QubitMapping":
        """The trivial mapping: logical qubit i sits at position i."""
        return cls(list(range(num_qubits)))

    def copy(self) -> "QubitMapping":
        """Independent copy of the mapping."""
        return QubitMapping(self._log_to_phys)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self._log_to_phys)

    def physical(self, logical: int) -> int:
        """Physical position of *logical* qubit."""
        return self._log_to_phys[logical]

    def logical(self, physical: int) -> int:
        """Logical qubit currently at *physical* position."""
        return self._phys_to_log[physical]

    def logical_to_physical(self) -> list[int]:
        """The full logical->physical permutation (copy)."""
        return list(self._log_to_phys)

    def physical_to_logical(self) -> list[int]:
        """The full physical->logical permutation (copy)."""
        return list(self._phys_to_log)

    def distance(self, logical_a: int, logical_b: int) -> int:
        """Physical distance (in ion spacings) between two logical qubits."""
        return abs(self._log_to_phys[logical_a] - self._log_to_phys[logical_b])

    def gate_distance(self, gate: Gate) -> int:
        """Physical span of a (logical) two-qubit gate under this mapping."""
        if not gate.is_two_qubit:
            raise CompilationError("gate_distance needs a two-qubit gate")
        a, b = gate.qubits
        return self.distance(a, b)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def swap_physical(self, position_a: int, position_b: int) -> None:
        """Exchange the logical qubits sitting at two physical positions."""
        logical_a = self._phys_to_log[position_a]
        logical_b = self._phys_to_log[position_b]
        self._phys_to_log[position_a] = logical_b
        self._phys_to_log[position_b] = logical_a
        self._log_to_phys[logical_a] = position_b
        self._log_to_phys[logical_b] = position_a

    def apply_to_gate(self, gate: Gate) -> Gate:
        """Return *gate* relabelled from logical qubits to physical positions."""
        return gate.remapped(self._log_to_phys)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QubitMapping):
            return NotImplemented
        return self._log_to_phys == other._log_to_phys

    def __repr__(self) -> str:
        return f"QubitMapping({self._log_to_phys})"


def extend_mapping(mapping: QubitMapping, num_physical: int) -> QubitMapping:
    """Extend a mapping over a larger physical register (extra qubits idle).

    Logical qubits keep their positions; the new positions are filled with
    fresh logical indices so the result stays a permutation.
    """
    if num_physical < mapping.num_qubits:
        raise CompilationError("cannot shrink a mapping")
    layout = mapping.logical_to_physical()
    used = set(layout)
    layout.extend(p for p in range(num_physical) if p not in used)
    return QubitMapping(layout)
