"""Tape movement scheduling — Algorithm 2 of the paper.

Given a routed circuit (every two-qubit gate fits under the laser head), the
scheduler repeatedly picks the head position at which the largest number of
dependency-ready gates can execute, executes them, and shuttles the tape to
the next chosen position.  Minimising the number of tape movements directly
improves the program success rate because every shuttle heats the chain
(Section IV-D).

The per-position query "how many gates could run here" is answered by
:meth:`repro.circuits.dag.FrontierTracker.greedy_closure`, which simulates
greedy execution restricted to the head window without mutating the shared
tracker.  The original Algorithm 2 evaluates that query at every one of the
``num_qubits - head_size + 1`` head positions per segment; this
implementation prunes the scan without changing any decision:

* **candidate filter** — only positions whose window fully covers at least
  one *ready* gate are evaluated (derived from the qubit extents of the
  current ready set).  Everywhere else the greedy closure is empty, and an
  empty closure can never win the ``(-count, distance, position)`` key.
* **containment bound** — the closure at position ``p`` can only contain
  not-yet-executed gates that fit entirely inside ``window(p)``; the count
  of such gates is maintained incrementally and is a cheap upper bound on
  the closure size.  Candidates are visited in decreasing bound order and
  the scan stops as soon as the bound drops *below* the best count found
  (positions whose bound merely ties the best are still evaluated, so the
  distance/leftmost tie-breaks match the exhaustive scan exactly).

``SchedulerConfig(exhaustive_scan=True)`` restores the full scan; the test
suite asserts both modes produce identical segments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.dag import FrontierTracker
from repro.compiler.executable import ExecutableProgram, TapeSegment
from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable knobs of the tape-movement scheduler.

    Attributes
    ----------
    initial_position:
        Head position before the first segment; ``None`` lets the scheduler
        choose freely (the first alignment is not counted as a move).
    prefer_near_moves:
        Tie-break equal scores by distance from the current position, so the
        tape travels as little as possible when it must move anyway.
    exhaustive_scan:
        Evaluate the greedy closure at every head position instead of the
        pruned candidate set.  Both modes choose identical segments; the
        exhaustive scan exists as the reference for equivalence tests.
    """

    initial_position: int | None = None
    prefer_near_moves: bool = True
    exhaustive_scan: bool = False


class TapeScheduler:
    """Greedy max-executable-gates scheduler (Algorithm 2)."""

    def __init__(self, device: TiltDevice,
                 config: SchedulerConfig | None = None) -> None:
        self.device = device
        self.config = config or SchedulerConfig()
        if (self.config.initial_position is not None
                and self.config.initial_position not in device.head_positions()):
            raise SchedulingError(
                f"initial position {self.config.initial_position} invalid for "
                f"{device.describe()}"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self, circuit: Circuit) -> ExecutableProgram:
        """Schedule *circuit* into tape segments covering every gate."""
        for gate in circuit:
            if gate.is_two_qubit and gate.span > self.device.max_gate_span:
                raise SchedulingError(
                    f"gate {gate} does not fit under the head; route first"
                )
            if gate.name == "barrier" and gate.span > self.device.max_gate_span:
                raise SchedulingError(
                    "full-width barriers cannot be scheduled; strip them first"
                )

        tracker = FrontierTracker(circuit)
        segments: list[TapeSegment] = []
        current_position = self.config.initial_position

        # Covering range of each gate: head positions whose window contains
        # the whole gate.  `containable[p]` counts not-yet-executed gates
        # containable at position p — the upper bound used for pruning.
        num_positions = self.device.num_head_positions
        head_size = self.device.head_size
        last_position = num_positions - 1
        ranges: list[tuple[int, int]] = []
        containable = [0] * num_positions
        for gate in circuit:
            lo, hi = min(gate.qubits), max(gate.qubits)
            first = max(0, hi - head_size + 1)
            last = min(last_position, lo)
            ranges.append((first, last))
            for position in range(first, last + 1):
                containable[position] += 1

        while not tracker.is_done():
            if self.config.exhaustive_scan:
                position, executable = self._best_position(
                    tracker, current_position
                )
            else:
                position, executable = self._best_position_pruned(
                    tracker, current_position, containable, ranges
                )
            if not executable:
                raise SchedulingError(
                    "scheduler stalled: no executable gate at any head position"
                )
            tracker.complete_many(executable)
            for index in executable:
                first, last = ranges[index]
                for p in range(first, last + 1):
                    containable[p] -= 1
            segments.append(TapeSegment(position, tuple(executable)))
            current_position = position

        program = ExecutableProgram(circuit, self.device, segments)
        program.validate()
        return program

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _position_key(self, position: int, count: int,
                      current_position: int | None) -> tuple[int, int, int]:
        """Minimisation key: maximise count, then travel, then leftmost."""
        if current_position is None or not self.config.prefer_near_moves:
            distance = 0
        else:
            distance = abs(position - current_position)
        return (-count, distance, position)

    def _closure_at(self, tracker: FrontierTracker, position: int) -> list[int]:
        """Gates greedily executable with the head at *position*."""
        low = position
        high = position + self.device.head_size - 1

        def accepts(gate, _low=low, _high=high):  # noqa: ANN001 - hot path
            for q in gate.qubits:
                if q < _low or q > _high:
                    return False
            return True

        return tracker.greedy_closure(accepts)

    def _best_position(self, tracker: FrontierTracker,
                       current_position: int | None) -> tuple[int, list[int]]:
        """Exhaustive reference scan over every head position (Eq. 2)."""
        best_position = -1
        best_executable: list[int] = []
        best_key: tuple[int, int, int] | None = None
        for position in self.device.head_positions():
            executable = self._closure_at(tracker, position)
            key = self._position_key(position, len(executable), current_position)
            if best_key is None or key < best_key:
                best_key = key
                best_position = position
                best_executable = executable
        return best_position, best_executable

    def _best_position_pruned(
        self,
        tracker: FrontierTracker,
        current_position: int | None,
        containable: list[int],
        ranges: list[tuple[int, int]],
    ) -> tuple[int, list[int]]:
        """Pruned scan: candidates from ready-gate extents, bound-ordered.

        Equivalent to :meth:`_best_position`: a position covering no ready
        gate has an empty closure (the greedy closure seeds from the ready
        set), and an evaluation is skipped only when its containment bound
        is strictly below the best count already found, so every position
        that could win — or tie and win on the distance/leftmost
        tie-breaks — is still evaluated with the same key.
        """
        num_positions = len(containable)
        coverage = [0] * (num_positions + 1)
        for index in tracker.ready():
            first, last = ranges[index]
            if first <= last:
                coverage[first] += 1
                coverage[last + 1] -= 1
        candidates = []
        covered = 0
        for position in range(num_positions):
            covered += coverage[position]
            if covered > 0:
                candidates.append(position)
        candidates.sort(key=lambda p: (-containable[p], p))

        best_position = -1
        best_executable: list[int] = []
        best_key: tuple[int, int, int] | None = None
        for position in candidates:
            if best_key is not None and containable[position] < len(best_executable):
                break  # sorted by bound: nothing later can win or tie
            executable = self._closure_at(tracker, position)
            key = self._position_key(position, len(executable), current_position)
            if best_key is None or key < best_key:
                best_key = key
                best_position = position
                best_executable = executable
        return best_position, best_executable


def schedule_tape_moves(circuit: Circuit, device: TiltDevice,
                        config: SchedulerConfig | None = None) -> ExecutableProgram:
    """Convenience wrapper around :class:`TapeScheduler`."""
    return TapeScheduler(device, config).schedule(circuit)
