"""Tape movement scheduling — Algorithm 2 of the paper.

Given a routed circuit (every two-qubit gate fits under the laser head), the
scheduler repeatedly picks the head position at which the largest number of
dependency-ready gates can execute, executes them, and shuttles the tape to
the next chosen position.  Minimising the number of tape movements directly
improves the program success rate because every shuttle heats the chain
(Section IV-D).

The per-position query "how many gates could run here" is answered by
:meth:`repro.circuits.dag.FrontierTracker.greedy_closure`, which simulates
greedy execution restricted to the head window without mutating the shared
tracker, so one scheduling step costs O(head positions x gates executed)
rather than O(head positions x circuit size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.dag import FrontierTracker
from repro.circuits.gate import Gate
from repro.compiler.executable import ExecutableProgram, TapeSegment
from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable knobs of the tape-movement scheduler.

    Attributes
    ----------
    initial_position:
        Head position before the first segment; ``None`` lets the scheduler
        choose freely (the first alignment is not counted as a move).
    prefer_near_moves:
        Tie-break equal scores by distance from the current position, so the
        tape travels as little as possible when it must move anyway.
    """

    initial_position: int | None = None
    prefer_near_moves: bool = True


class TapeScheduler:
    """Greedy max-executable-gates scheduler (Algorithm 2)."""

    def __init__(self, device: TiltDevice,
                 config: SchedulerConfig | None = None) -> None:
        self.device = device
        self.config = config or SchedulerConfig()
        if (self.config.initial_position is not None
                and self.config.initial_position not in device.head_positions()):
            raise SchedulingError(
                f"initial position {self.config.initial_position} invalid for "
                f"{device.describe()}"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self, circuit: Circuit) -> ExecutableProgram:
        """Schedule *circuit* into tape segments covering every gate."""
        for gate in circuit:
            if gate.is_two_qubit and gate.span > self.device.max_gate_span:
                raise SchedulingError(
                    f"gate {gate} does not fit under the head; route first"
                )
            if gate.name == "barrier" and gate.span > self.device.max_gate_span:
                raise SchedulingError(
                    "full-width barriers cannot be scheduled; strip them first"
                )

        tracker = FrontierTracker(circuit)
        segments: list[TapeSegment] = []
        current_position = self.config.initial_position

        while not tracker.is_done():
            position, executable = self._best_position(tracker, current_position)
            if not executable:
                raise SchedulingError(
                    "scheduler stalled: no executable gate at any head position"
                )
            tracker.complete_many(executable)
            segments.append(TapeSegment(position, tuple(executable)))
            current_position = position

        program = ExecutableProgram(circuit, self.device, segments)
        program.validate()
        return program

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _best_position(self, tracker: FrontierTracker,
                       current_position: int | None) -> tuple[int, list[int]]:
        """Return the head position with the most executable gates (Eq. 2)."""
        best_position = -1
        best_executable: list[int] = []
        best_key: tuple[int, int, int] | None = None
        for position in self.device.head_positions():
            window = self.device.window(position)
            window_set = frozenset(window)

            def accepts(gate: Gate, _window: frozenset[int] = window_set) -> bool:
                return all(q in _window for q in gate.qubits)

            executable = tracker.greedy_closure(accepts)
            if current_position is None or not self.config.prefer_near_moves:
                distance = 0
            else:
                distance = abs(position - current_position)
            # Maximise count; tie-break on minimal travel, then leftmost.
            key = (-len(executable), distance, position)
            if best_key is None or key < best_key:
                best_key = key
                best_position = position
                best_executable = executable
        return best_position, best_executable


def schedule_tape_moves(circuit: Circuit, device: TiltDevice,
                        config: SchedulerConfig | None = None) -> ExecutableProgram:
    """Convenience wrapper around :class:`TapeScheduler`."""
    return TapeScheduler(device, config).schedule(circuit)
