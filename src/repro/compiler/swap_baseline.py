"""Baseline swap insertion (the paper's Qiskit-StochasticSwap stand-in).

The paper's baseline resolves every unexecutable two-qubit gate with the
Qiskit StochasticSwap pass configured to allow SWAPs as long as the laser
head.  Qiskit is not available in this offline environment, so this module
re-implements the two properties of that baseline that drive the Figure 6
comparison:

* every inserted SWAP covers the maximum executable span (``head_size - 1``
  by default), so the tape is forced to one exact position per SWAP; and
* SWAPs are chosen per gate without any lookahead, so opposing swaps only
  happen by accident.

The "stochastic" part is reproduced by running several seeded trials that
randomise which endpoint of the long gate moves, and keeping the trial with
the fewest SWAPs (ties broken by total SWAP span).
"""

from __future__ import annotations

import random

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler.layout import QubitMapping
from repro.compiler.routing import (
    RoutingResult,
    SwapRecord,
    check_routed,
    classify_opposing,
    pending_two_qubit_gates,
)
from repro.exceptions import RoutingError


class BaselineSwapInserter:
    """Greedy full-span router with randomised endpoint choice.

    Parameters
    ----------
    device:
        Target TILT device.
    max_swap_len:
        Span of each inserted SWAP (defaults to the maximum executable span,
        ``head_size - 1`` — the paper's "tape head size as the swap
        distance" baseline).
    trials:
        Number of randomised routing attempts; the best (fewest swaps) is
        returned.
    seed:
        Base random seed for the trials.
    lookahead_for_classification:
        Number of upcoming two-qubit gates consulted only to *classify*
        accidental opposing swaps (does not influence routing decisions).
    """

    def __init__(
        self,
        device: TiltDevice,
        *,
        max_swap_len: int | None = None,
        trials: int = 5,
        seed: int = 11,
        lookahead_for_classification: int = 20,
    ) -> None:
        if max_swap_len is None:
            max_swap_len = device.max_gate_span
        if not 1 <= max_swap_len <= device.max_gate_span:
            raise RoutingError(
                f"max_swap_len must be in [1, {device.max_gate_span}], "
                f"got {max_swap_len}"
            )
        if trials < 1:
            raise RoutingError("need at least one routing trial")
        self.device = device
        self.max_swap_len = max_swap_len
        self.trials = trials
        self.seed = seed
        self.lookahead_for_classification = lookahead_for_classification

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def route(self, circuit: Circuit,
              initial_mapping: QubitMapping | None = None) -> RoutingResult:
        """Insert SWAPs; return the best of ``trials`` randomised attempts."""
        if circuit.num_qubits > self.device.num_qubits:
            raise RoutingError(
                f"circuit has {circuit.num_qubits} qubits but the device has "
                f"only {self.device.num_qubits}"
            )
        base_mapping = (
            initial_mapping.copy()
            if initial_mapping is not None
            else QubitMapping.identity(self.device.num_qubits)
        )
        best: RoutingResult | None = None
        best_key: tuple[int, int] | None = None
        for trial in range(self.trials):
            rng = random.Random(self.seed + trial)
            result = self._route_once(circuit, base_mapping.copy(), rng)
            key = (result.num_swaps,
                   sum(record.span for record in result.swaps))
            if best_key is None or key < best_key:
                best, best_key = result, key
        assert best is not None
        check_routed(best.circuit, self.device)
        return best

    # ------------------------------------------------------------------
    # Single randomised attempt
    # ------------------------------------------------------------------
    def _route_once(self, circuit: Circuit, mapping: QubitMapping,
                    rng: random.Random) -> RoutingResult:
        initial = mapping.copy()
        routed = Circuit(self.device.num_qubits, f"{circuit.name}_routed")
        swaps: list[SwapRecord] = []
        for index, gate in enumerate(circuit):
            if not gate.is_two_qubit:
                routed.append(mapping.apply_to_gate(gate))
                continue
            guard = 0
            while mapping.gate_distance(gate) > self.device.max_gate_span:
                guard += 1
                if guard > 2 * self.device.num_qubits:
                    raise RoutingError(
                        f"baseline routing failed to converge for gate {gate}"
                    )
                self._insert_swap(gate, index, circuit, mapping, routed,
                                  swaps, rng)
            routed.append(mapping.apply_to_gate(gate))
        return RoutingResult(routed, initial, mapping, swaps)

    def _insert_swap(
        self,
        gate: Gate,
        gate_index: int,
        circuit: Circuit,
        mapping: QubitMapping,
        routed: Circuit,
        swaps: list[SwapRecord],
        rng: random.Random,
    ) -> None:
        """Move a randomly chosen endpoint the full SWAP span inward."""
        position_a = mapping.physical(gate.qubits[0])
        position_b = mapping.physical(gate.qubits[1])
        low, high = min(position_a, position_b), max(position_a, position_b)
        distance = high - low
        step = min(self.max_swap_len, distance - 1)
        move_left_end = rng.random() < 0.5
        if move_left_end:
            pair = (low, low + step)
        else:
            pair = (high - step, high)
        pending = pending_two_qubit_gates(
            circuit, gate_index, self.lookahead_for_classification
        )
        opposing = classify_opposing(pair[0], pair[1], pending, mapping)
        swaps.append(
            SwapRecord(
                physical_pair=pair,
                gate_index=len(routed),
                resolving_gate_index=gate_index,
                opposing=opposing,
            )
        )
        routed.append(Gate("swap", pair))
        mapping.swap_physical(*pair)
