"""LinQ swap insertion — Algorithm 1 of the paper.

For every two-qubit gate whose physical span exceeds the laser-head width,
SWAPs are inserted one at a time.  Candidate SWAPs move one endpoint of the
gate to an intermediate position no further than ``max_swap_len`` away; each
candidate is scored with Eq. 1 — the sum of the physical spans of the
upcoming two-qubit gates under the post-swap mapping, discounted by
``alpha ** lookahead_offset`` — and the lowest-scoring candidate is applied.
Because the score looks at *all* pending gates, the router naturally prefers
SWAPs that help traffic flowing in both directions at once (opposing swaps,
Figure 2(c)), which is where the swap-count savings over the baseline come
from.

The score is evaluated over a finite lookahead window (default 200 upcoming
two-qubit gates); with ``alpha < 1`` the dropped tail contributes a
geometrically vanishing amount, and the truncation keeps each SWAP decision
O(candidates x window) instead of O(candidates x remaining gates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler.layout import QubitMapping
from repro.compiler.routing import (
    RoutingResult,
    SwapRecord,
    check_routed,
    classify_opposing,
)
from repro.exceptions import RoutingError


@dataclass(frozen=True)
class _Candidate:
    """A candidate SWAP between two physical positions."""

    low: int
    high: int

    @property
    def span(self) -> int:
        return self.high - self.low


class LinqSwapInserter:
    """Opposing-swap-aware router (Algorithm 1).

    Parameters
    ----------
    device:
        Target TILT device.
    max_swap_len:
        Maximum physical span of an inserted SWAP; defaults to
        ``head_size - 1`` and may be reduced to give the tape-movement
        scheduler more freedom (Figure 7).
    lookahead_window:
        Number of upcoming two-qubit gates included in the Eq. 1 score.  A
        window of ~200 is needed for the opposing-swap structure of QFT-like
        programs (whose return traffic appears an outer loop later) to be
        visible to the score.
    alpha:
        Eq. 1 discount factor in (0, 1).
    """

    def __init__(
        self,
        device: TiltDevice,
        *,
        max_swap_len: int | None = None,
        lookahead_window: int = 200,
        alpha: float = 0.98,
    ) -> None:
        if max_swap_len is None:
            max_swap_len = device.max_gate_span
        if not 1 <= max_swap_len <= device.max_gate_span:
            raise RoutingError(
                f"max_swap_len must be in [1, {device.max_gate_span}], "
                f"got {max_swap_len}"
            )
        if lookahead_window < 1:
            raise RoutingError("lookahead_window must be at least 1")
        if not 0 < alpha < 1:
            raise RoutingError("alpha must be strictly between 0 and 1")
        self.device = device
        self.max_swap_len = max_swap_len
        self.lookahead_window = lookahead_window
        self.alpha = alpha

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def route(self, circuit: Circuit,
              initial_mapping: QubitMapping | None = None) -> RoutingResult:
        """Insert SWAPs so every two-qubit gate fits under the laser head."""
        if circuit.num_qubits > self.device.num_qubits:
            raise RoutingError(
                f"circuit has {circuit.num_qubits} qubits but the device has "
                f"{self.device.num_qubits}"
            )
        mapping = (
            initial_mapping.copy()
            if initial_mapping is not None
            else QubitMapping.identity(self.device.num_qubits)
        )
        initial = mapping.copy()
        routed = Circuit(self.device.num_qubits, f"{circuit.name}_routed")
        swaps: list[SwapRecord] = []

        # Positions of all two-qubit gates, used for the lookahead window.
        two_qubit_indices = [
            index for index, gate in enumerate(circuit) if gate.is_two_qubit
        ]
        next_window_start = 0

        for index, gate in enumerate(circuit):
            if not gate.is_two_qubit:
                routed.append(mapping.apply_to_gate(gate))
                continue
            # Advance the lookahead cursor to this gate.
            while (next_window_start < len(two_qubit_indices)
                   and two_qubit_indices[next_window_start] < index):
                next_window_start += 1
            pending = [
                (gate_index, circuit[gate_index])
                for gate_index in two_qubit_indices[
                    next_window_start : next_window_start + self.lookahead_window
                ]
            ]
            self._resolve_gate(gate, index, circuit, mapping, routed,
                               swaps, pending)
            routed.append(mapping.apply_to_gate(gate))

        check_routed(routed, self.device)
        return RoutingResult(routed, initial, mapping, swaps)

    # ------------------------------------------------------------------
    # Algorithm 1 internals
    # ------------------------------------------------------------------
    def _resolve_gate(
        self,
        gate: Gate,
        gate_index: int,
        circuit: Circuit,
        mapping: QubitMapping,
        routed: Circuit,
        swaps: list[SwapRecord],
        pending: list[tuple[int, Gate]],
    ) -> None:
        """Insert SWAPs until *gate* becomes executable."""
        guard = 0
        while mapping.gate_distance(gate) > self.device.max_gate_span:
            guard += 1
            if guard > 2 * self.device.num_qubits:
                raise RoutingError(
                    f"swap insertion failed to converge for gate {gate}"
                )
            candidate = self._best_candidate(gate, mapping, pending)
            opposing = classify_opposing(candidate.low, candidate.high,
                                         pending, mapping)
            swap_gate = Gate("swap", (candidate.low, candidate.high))
            swaps.append(
                SwapRecord(
                    physical_pair=(candidate.low, candidate.high),
                    gate_index=len(routed),
                    resolving_gate_index=gate_index,
                    opposing=opposing,
                )
            )
            routed.append(swap_gate)
            mapping.swap_physical(candidate.low, candidate.high)

    def _candidates(self, gate: Gate, mapping: QubitMapping) -> list[_Candidate]:
        """Candidate SWAPs moving one endpoint of *gate* strictly inward."""
        position_a = mapping.physical(gate.qubits[0])
        position_b = mapping.physical(gate.qubits[1])
        low, high = min(position_a, position_b), max(position_a, position_b)
        candidates: list[_Candidate] = []
        for intermediate in range(low + 1, high):
            if intermediate - low <= self.max_swap_len:
                candidates.append(_Candidate(low, intermediate))
            if high - intermediate <= self.max_swap_len:
                candidates.append(_Candidate(intermediate, high))
        return candidates

    def _best_candidate(self, gate: Gate, mapping: QubitMapping,
                        pending: list[tuple[int, Gate]]) -> _Candidate:
        """Pick the lowest-scoring candidate (Eq. 1)."""
        candidates = self._candidates(gate, mapping)
        if not candidates:
            raise RoutingError(f"no swap candidates for gate {gate}")
        best: _Candidate | None = None
        best_key: tuple[float, int, int] | None = None
        for candidate in candidates:
            score = self._score_delta(candidate, mapping, pending)
            key = (score, candidate.span, candidate.low)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        assert best is not None
        return best

    def _score_delta(self, candidate: _Candidate, mapping: QubitMapping,
                     pending: list[tuple[int, Gate]]) -> float:
        """Change in the Eq. 1 score caused by applying *candidate*.

        Only pending gates touching one of the two moved logical qubits
        change distance, so the (common) contribution of every other gate is
        omitted — candidate ranking is unaffected.
        """
        moved_low = mapping.logical(candidate.low)
        moved_high = mapping.logical(candidate.high)
        delta = 0.0
        discount = 1.0
        for _, pending_gate in pending:
            qubit_a, qubit_b = pending_gate.qubits
            touches = moved_low in (qubit_a, qubit_b) or moved_high in (
                qubit_a, qubit_b
            )
            if touches:
                old_distance = mapping.gate_distance(pending_gate)
                new_distance = abs(
                    self._position_after(qubit_a, candidate, mapping)
                    - self._position_after(qubit_b, candidate, mapping)
                )
                delta += (new_distance - old_distance) * discount
            discount *= self.alpha
        return delta

    @staticmethod
    def _position_after(logical: int, candidate: _Candidate,
                        mapping: QubitMapping) -> int:
        """Physical position of *logical* after applying *candidate*."""
        position = mapping.physical(logical)
        if position == candidate.low:
            return candidate.high
        if position == candidate.high:
            return candidate.low
        return position
