"""Initial qubit mapping heuristics (Section IV-C).

The paper adopts existing heuristic mapping algorithms [40, 51] before swap
insertion.  Three strategies are provided:

* :class:`TrivialMapper` — logical qubit *i* starts at position *i*.
* :class:`SpectralMapper` — linear arrangement from the Fiedler vector of
  the weighted interaction graph.  Spectral seriation places frequently
  interacting qubits close together on the line, which is the appropriate
  specialisation of 2D heuristic mappers to a 1D tape.
* :class:`GreedyInteractionMapper` — seed with the heaviest edge and grow
  the line outward, always appending the unplaced qubit with the strongest
  attraction to the nearer end.

All mappers implement ``map(circuit, num_physical) -> QubitMapping``.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.circuits.circuit import Circuit
from repro.compiler.layout import QubitMapping
from repro.exceptions import CompilationError


class InitialMapper(Protocol):
    """Interface of every initial-mapping strategy."""

    def map(self, circuit: Circuit, num_physical: int) -> QubitMapping:
        """Produce a mapping of the circuit's logical qubits onto positions."""
        ...


def _check_width(circuit: Circuit, num_physical: int) -> None:
    if circuit.num_qubits > num_physical:
        raise CompilationError(
            f"circuit needs {circuit.num_qubits} qubits but the device has "
            f"only {num_physical}"
        )


def interaction_matrix(circuit: Circuit, num_qubits: int,
                       *, decay: float = 1.0) -> np.ndarray:
    """Symmetric matrix of (optionally decayed) two-qubit interaction weights.

    ``decay < 1`` discounts later gates geometrically so the mapping favours
    the start of the program, where the initial placement matters most.
    """
    weights = np.zeros((num_qubits, num_qubits))
    weight = 1.0
    for gate in circuit:
        if gate.is_two_qubit:
            a, b = gate.qubits
            weights[a, b] += weight
            weights[b, a] += weight
            weight *= decay
    return weights


def _layout_from_order(order: list[int], num_logical: int,
                       num_physical: int) -> QubitMapping:
    """Place logical qubits (in *order*) onto contiguous central positions."""
    offset = (num_physical - num_logical) // 2
    logical_to_physical = [0] * num_physical
    placed = set()
    for position, logical in enumerate(order):
        logical_to_physical[logical] = offset + position
        placed.add(offset + position)
    spare_positions = [p for p in range(num_physical) if p not in placed]
    for extra_logical, position in zip(range(num_logical, num_physical),
                                       spare_positions):
        logical_to_physical[extra_logical] = position
    return QubitMapping(logical_to_physical)


class TrivialMapper:
    """Identity placement (logical i at position i)."""

    def map(self, circuit: Circuit, num_physical: int) -> QubitMapping:
        _check_width(circuit, num_physical)
        return QubitMapping.identity(num_physical)


class SpectralMapper:
    """Fiedler-vector (spectral seriation) linear arrangement."""

    def __init__(self, decay: float = 1.0) -> None:
        if not 0 < decay <= 1:
            raise CompilationError("decay must be in (0, 1]")
        self.decay = decay

    def map(self, circuit: Circuit, num_physical: int) -> QubitMapping:
        _check_width(circuit, num_physical)
        n = circuit.num_qubits
        weights = interaction_matrix(circuit, n, decay=self.decay)
        if not weights.any():
            return QubitMapping.identity(num_physical)
        laplacian = np.diag(weights.sum(axis=1)) - weights
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        # The Fiedler vector is the eigenvector of the second-smallest
        # eigenvalue; ordering qubits by its entries approximately minimises
        # the total squared wire length of the interaction graph on a line.
        fiedler = eigenvectors[:, np.argsort(eigenvalues)[1]] if n > 1 else np.zeros(1)
        order = list(np.argsort(fiedler, kind="stable"))
        # Keep the ordering deterministic when the graph is disconnected and
        # several entries tie at zero.
        order = [int(q) for q in order]
        return _layout_from_order(order, n, num_physical)


class GreedyInteractionMapper:
    """Grow the line outward from the heaviest-interacting pair."""

    def __init__(self, decay: float = 1.0) -> None:
        if not 0 < decay <= 1:
            raise CompilationError("decay must be in (0, 1]")
        self.decay = decay

    def map(self, circuit: Circuit, num_physical: int) -> QubitMapping:
        _check_width(circuit, num_physical)
        n = circuit.num_qubits
        weights = interaction_matrix(circuit, n, decay=self.decay)
        if not weights.any():
            return QubitMapping.identity(num_physical)
        seed_a, seed_b = np.unravel_index(int(np.argmax(weights)), weights.shape)
        order: list[int] = [int(seed_a), int(seed_b)]
        unplaced = set(range(n)) - set(order)
        while unplaced:
            left, right = order[0], order[-1]
            best_qubit, best_weight, best_side = -1, -1.0, "right"
            for qubit in sorted(unplaced):
                left_weight = weights[qubit, left]
                right_weight = weights[qubit, right]
                if left_weight > best_weight:
                    best_qubit, best_weight, best_side = qubit, left_weight, "left"
                if right_weight > best_weight:
                    best_qubit, best_weight, best_side = qubit, right_weight, "right"
            unplaced.discard(best_qubit)
            if best_side == "left":
                order.insert(0, best_qubit)
            else:
                order.append(best_qubit)
        return _layout_from_order(order, n, num_physical)


#: Registry used by :class:`repro.compiler.pipeline.CompilerConfig`.
MAPPERS = {
    "trivial": TrivialMapper,
    "spectral": SpectralMapper,
    "greedy": GreedyInteractionMapper,
}


def make_mapper(name: str, **kwargs: float) -> InitialMapper:
    """Instantiate a mapper by registry name."""
    try:
        factory = MAPPERS[name]
    except KeyError as exc:
        raise CompilationError(
            f"unknown mapper {name!r}; choose from {sorted(MAPPERS)}"
        ) from exc
    return factory(**kwargs)
