"""Native gate decomposition (Section IV-B of the paper).

Two levels are provided:

* :func:`decompose_to_cx` — rewrite every multi-qubit gate into CX plus
  single-qubit gates.  This is the level at which the paper counts "2Q
  gates" (Table II) and at which routing reasons about interactions.
* :func:`decompose_to_native` — further rewrite everything into the TILT
  native set ``{rx, ry, rz, xx}``.  CX follows the paper's Molmer-Sorensen
  construction (Ry/XX/Rx/Rx/Ry); the sign of the Rx rotations differs from
  the paper's listing because of the rotation-sign convention used here
  (``r*(theta) = exp(-i theta P / 2)``, ``xx(theta) = exp(+i theta XX)``) —
  the decomposition is verified against the exact CX unitary in the tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import CompilationError

_PI = math.pi


def _one_qubit_to_native(gate: Gate) -> Iterator[Gate]:
    """Rewrite a single-qubit gate as rz/ry/rx rotations."""
    (q,) = gate.qubits
    name = gate.name
    if name == "id":
        return
    if name in ("rx", "ry", "rz"):
        yield gate
        return
    if name == "x":
        yield Gate("rx", (q,), (_PI,))
    elif name == "y":
        yield Gate("ry", (q,), (_PI,))
    elif name == "z":
        yield Gate("rz", (q,), (_PI,))
    elif name == "h":
        yield Gate("rz", (q,), (_PI,))
        yield Gate("ry", (q,), (_PI / 2,))
    elif name == "s":
        yield Gate("rz", (q,), (_PI / 2,))
    elif name == "sdg":
        yield Gate("rz", (q,), (-_PI / 2,))
    elif name == "t":
        yield Gate("rz", (q,), (_PI / 4,))
    elif name == "tdg":
        yield Gate("rz", (q,), (-_PI / 4,))
    elif name == "sx":
        yield Gate("rx", (q,), (_PI / 2,))
    elif name == "p":
        yield Gate("rz", (q,), (gate.params[0],))
    elif name == "u3":
        theta, phi, lam = gate.params
        yield Gate("rz", (q,), (lam,))
        yield Gate("ry", (q,), (theta,))
        yield Gate("rz", (q,), (phi,))
    else:  # pragma: no cover - defensive
        raise CompilationError(f"no native decomposition for 1q gate {name!r}")


def _cx_to_native(control: int, target: int) -> Iterator[Gate]:
    """Molmer-Sorensen CX construction (paper Section IV-B)."""
    yield Gate("ry", (control,), (_PI / 2,))
    yield Gate("xx", (control, target), (_PI / 4,))
    yield Gate("rx", (control,), (_PI / 2,))
    yield Gate("rx", (target,), (_PI / 2,))
    yield Gate("ry", (control,), (-_PI / 2,))


def _two_qubit_to_cx(gate: Gate) -> Iterator[Gate]:
    """Rewrite a two-qubit gate into CX plus single-qubit gates."""
    name = gate.name
    q1, q2 = gate.qubits
    if name == "cx":
        yield gate
    elif name == "cz":
        yield Gate("h", (q2,))
        yield Gate("cx", (q1, q2))
        yield Gate("h", (q2,))
    elif name == "swap":
        yield Gate("cx", (q1, q2))
        yield Gate("cx", (q2, q1))
        yield Gate("cx", (q1, q2))
    elif name == "cp":
        theta = gate.params[0]
        yield Gate("p", (q1,), (theta / 2,))
        yield Gate("cx", (q1, q2))
        yield Gate("p", (q2,), (-theta / 2,))
        yield Gate("cx", (q1, q2))
        yield Gate("p", (q2,), (theta / 2,))
    elif name == "rzz":
        theta = gate.params[0]
        yield Gate("cx", (q1, q2))
        yield Gate("rz", (q2,), (theta,))
        yield Gate("cx", (q1, q2))
    elif name == "rxx":
        theta = gate.params[0]
        yield Gate("h", (q1,))
        yield Gate("h", (q2,))
        yield Gate("cx", (q1, q2))
        yield Gate("rz", (q2,), (theta,))
        yield Gate("cx", (q1, q2))
        yield Gate("h", (q1,))
        yield Gate("h", (q2,))
    elif name == "xx":
        # xx(theta) = exp(+i theta XX) = rxx(-2 theta)
        yield from _two_qubit_to_cx(Gate("rxx", (q1, q2), (-2.0 * gate.params[0],)))
    else:  # pragma: no cover - defensive
        raise CompilationError(f"no CX decomposition for 2q gate {name!r}")


def _ccx_to_cx(c1: int, c2: int, target: int) -> Iterator[Gate]:
    """Standard 6-CX Toffoli decomposition."""
    yield Gate("h", (target,))
    yield Gate("cx", (c2, target))
    yield Gate("tdg", (target,))
    yield Gate("cx", (c1, target))
    yield Gate("t", (target,))
    yield Gate("cx", (c2, target))
    yield Gate("tdg", (target,))
    yield Gate("cx", (c1, target))
    yield Gate("t", (c2,))
    yield Gate("t", (target,))
    yield Gate("h", (target,))
    yield Gate("cx", (c1, c2))
    yield Gate("t", (c1,))
    yield Gate("tdg", (c2,))
    yield Gate("cx", (c1, c2))


def _gate_to_cx(gate: Gate, keep_xx: bool) -> Iterator[Gate]:
    if gate.name in ("measure", "barrier"):
        yield gate
    elif gate.num_qubits == 1:
        yield gate
    elif gate.name == "ccx":
        yield from _ccx_to_cx(*gate.qubits)
    elif gate.name == "xx" and keep_xx:
        yield gate
    elif gate.num_qubits == 2:
        yield from _two_qubit_to_cx(gate)
    else:  # pragma: no cover - defensive
        raise CompilationError(f"cannot decompose gate {gate.name!r}")


def decompose_to_cx(circuit: Circuit, *, keep_xx: bool = False) -> Circuit:
    """Rewrite every multi-qubit gate into CX + single-qubit gates.

    Parameters
    ----------
    keep_xx:
        When True, native ``xx`` gates pass through untouched (useful when
        the input is already partially native).
    """
    out = Circuit(circuit.num_qubits, f"{circuit.name}_cx")
    for gate in circuit:
        out.extend(_gate_to_cx(gate, keep_xx))
    return out


def decompose_to_native(circuit: Circuit) -> Circuit:
    """Rewrite *circuit* into the TILT native gate set {rx, ry, rz, xx}."""
    cx_level = decompose_to_cx(circuit, keep_xx=True)
    out = Circuit(circuit.num_qubits, f"{circuit.name}_native")
    for gate in cx_level:
        if gate.name in ("measure", "barrier", "xx"):
            out.append(gate)
        elif gate.name == "cx":
            out.extend(_cx_to_native(*gate.qubits))
        elif gate.num_qubits == 1:
            out.extend(_one_qubit_to_native(gate))
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unexpected gate {gate.name!r} after CX pass")
    return out


def merge_adjacent_rotations(circuit: Circuit, *,
                             angle_tolerance: float = 1e-12) -> Circuit:
    """Peephole optimisation: fuse back-to-back rotations about the same axis.

    Consecutive ``rx``/``ry``/``rz`` gates on the same qubit with no
    intervening gate on that qubit are summed; rotations whose total angle is
    a multiple of 2*pi are dropped.  This keeps native circuits from carrying
    obviously redundant pulses into the fidelity model.
    """
    out = Circuit(circuit.num_qubits, circuit.name)
    pending: dict[int, Gate] = {}

    def flush(qubit: int) -> None:
        gate = pending.pop(qubit, None)
        if gate is None:
            return
        angle = math.remainder(gate.params[0], 2 * _PI)
        if abs(angle) > angle_tolerance:
            out.append(Gate(gate.name, gate.qubits, (angle,)))

    for gate in circuit:
        if gate.name in ("rx", "ry", "rz"):
            (q,) = gate.qubits
            held = pending.get(q)
            if held is not None and held.name == gate.name:
                pending[q] = Gate(
                    gate.name, gate.qubits, (held.params[0] + gate.params[0],)
                )
                continue
            flush(q)
            pending[q] = gate
            continue
        for q in gate.qubits:
            flush(q)
        out.append(gate)
    for q in list(pending):
        flush(q)
    return out
