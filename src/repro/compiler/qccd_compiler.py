"""QCCD routing: the comparison architecture's compiler.

The QCCD baseline (Murali et al. [64], the architecture the paper compares
against in Figure 8) keeps ions in several small traps.  Gates between ions
in the same trap execute directly (traps are fully connected); a gate whose
operands sit in different traps first moves one ion: it is swapped to the
edge of its chain, split off, shuttled across the inter-trap segments and
merged into the destination chain.  Every one of those primitives deposits
motional quanta into the affected chains, which is what makes frequent
cross-trap communication expensive.

The compiler produces a :class:`QccdProgram` — a flat list of events — which
:class:`repro.sim.qccd_sim.QccdSimulator` replays against the noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.arch.qccd import QccdDevice
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.exceptions import CompilationError


@dataclass(frozen=True)
class QccdGateEvent:
    """A gate executed inside one trap.

    ``distance`` is the separation (in chain positions) of the two operands,
    used for the AM gate-time model; it is 0 for single-qubit gates.
    """

    gate: Gate
    trap: int
    distance: int


@dataclass(frozen=True)
class QccdShuttleEvent:
    """One ion transported from ``source_trap`` to ``dest_trap``.

    Attributes
    ----------
    qubit:
        The logical qubit that moved.
    swap_to_edge_gates:
        Number of in-trap SWAP gates needed to bring the ion to the chain
        edge before splitting (each costs three XX gates of fidelity).
    splits, hops, merges:
        Counts of the heating primitives: one split from the source chain,
        one shuttle per inter-trap segment crossed, one merge into the
        destination chain.
    """

    qubit: int
    source_trap: int
    dest_trap: int
    swap_to_edge_gates: int
    splits: int
    hops: int
    merges: int

    @property
    def num_primitives(self) -> int:
        """Total number of heating primitives for this transport."""
        return self.splits + self.hops + self.merges


@dataclass
class QccdProgram:
    """A compiled QCCD execution: gate and shuttle events in program order."""

    device: QccdDevice
    events: list[object] = field(default_factory=list)

    @property
    def gate_events(self) -> list[QccdGateEvent]:
        return [e for e in self.events if isinstance(e, QccdGateEvent)]

    @property
    def shuttle_events(self) -> list[QccdShuttleEvent]:
        return [e for e in self.events if isinstance(e, QccdShuttleEvent)]

    @property
    def num_shuttles(self) -> int:
        """Number of ion transports (each may span several segments)."""
        return len(self.shuttle_events)

    @property
    def num_primitives(self) -> int:
        """Total split/hop/merge primitive count."""
        return sum(e.num_primitives for e in self.shuttle_events)

    def summary(self) -> str:
        """One-line description of the compiled program."""
        return (
            f"QccdProgram: {len(self.gate_events)} gate events, "
            f"{self.num_shuttles} transports "
            f"({self.num_primitives} heating primitives)"
        )


class QccdCompiler:
    """Route a logical circuit onto a QCCD machine."""

    def __init__(self, device: QccdDevice, *, merge_rotations: bool = True) -> None:
        self.device = device
        self.merge_rotations = merge_rotations

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compile(self, circuit: Circuit) -> QccdProgram:
        """Decompose to native gates and insert shuttling events."""
        if circuit.num_qubits > self.device.num_qubits:
            raise CompilationError(
                f"circuit needs {circuit.num_qubits} qubits but the device "
                f"has {self.device.num_qubits}"
            )
        native = decompose_to_native(circuit.without(["barrier"]))
        if self.merge_rotations:
            native = merge_adjacent_rotations(native)

        traps = self.device.initial_layout()
        trap_of = {q: t for t, chain in enumerate(traps) for q in chain}
        program = QccdProgram(self.device)

        for gate in native:
            if gate.num_qubits == 1 or gate.name == "measure":
                program.events.append(
                    QccdGateEvent(gate, trap_of[gate.qubits[0]], 0)
                )
                continue
            qubit_a, qubit_b = gate.qubits
            if trap_of[qubit_a] != trap_of[qubit_b]:
                self._transport(qubit_a, qubit_b, traps, trap_of, program)
            trap = trap_of[qubit_a]
            chain = traps[trap]
            distance = abs(chain.index(qubit_a) - chain.index(qubit_b))
            program.events.append(QccdGateEvent(gate, trap, max(1, distance)))
        return program

    # ------------------------------------------------------------------
    # Shuttling
    # ------------------------------------------------------------------
    def _transport(self, qubit_a: int, qubit_b: int, traps: list[list[int]],
                   trap_of: dict[int, int], program: QccdProgram) -> None:
        """Bring *qubit_a* and *qubit_b* into the same trap."""
        trap_a, trap_b = trap_of[qubit_a], trap_of[qubit_b]
        # Prefer moving into whichever trap has spare capacity; default to
        # moving qubit_a toward qubit_b.
        if len(traps[trap_b]) < self.device.trap_capacity:
            moving, dest = qubit_a, trap_b
        elif len(traps[trap_a]) < self.device.trap_capacity:
            moving, dest = qubit_b, trap_a
        else:
            # Both traps full: make room in trap_b by evicting its ion with
            # the smallest index (deterministic) to the nearest trap with
            # space, then move qubit_a in.
            evicted = min(q for q in traps[trap_b] if q not in (qubit_a, qubit_b))
            refuge = self._nearest_trap_with_space(trap_b, traps)
            self._move_ion(evicted, refuge, traps, trap_of, program)
            moving, dest = qubit_a, trap_b
        self._move_ion(moving, dest, traps, trap_of, program)

    def _nearest_trap_with_space(self, origin: int,
                                 traps: list[list[int]]) -> int:
        candidates = [
            t for t in range(self.device.num_traps)
            if t != origin and len(traps[t]) < self.device.trap_capacity
        ]
        if not candidates:
            raise CompilationError(
                "QCCD device is completely full; increase trap capacity"
            )
        return min(candidates, key=lambda t: (abs(t - origin), t))

    def _move_ion(self, qubit: int, dest_trap: int, traps: list[list[int]],
                  trap_of: dict[int, int], program: QccdProgram) -> None:
        source_trap = trap_of[qubit]
        chain = traps[source_trap]
        index = chain.index(qubit)
        # Swap toward whichever chain end faces the destination trap.
        if dest_trap > source_trap:
            swaps_to_edge = len(chain) - 1 - index
        else:
            swaps_to_edge = index
        chain.remove(qubit)
        if dest_trap > source_trap:
            traps[dest_trap].insert(0, qubit)
        else:
            traps[dest_trap].append(qubit)
        trap_of[qubit] = dest_trap
        hops = self.device.trap_distance(source_trap, dest_trap)
        program.events.append(
            QccdShuttleEvent(
                qubit=qubit,
                source_trap=source_trap,
                dest_trap=dest_trap,
                swap_to_edge_gates=swaps_to_edge,
                splits=1,
                hops=hops,
                merges=1,
            )
        )


def compile_for_qccd(circuit: Circuit, device: QccdDevice) -> QccdProgram:
    """Convenience wrapper around :class:`QccdCompiler`."""
    return QccdCompiler(device).compile(circuit)
