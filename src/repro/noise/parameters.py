"""Noise-model parameters.

The paper's fidelity model (Section IV-E) has four physical inputs: the
background heating rate of the trap (Gamma), the AM two-qubit gate time
(Eq. 3), the amount of heating added by each shuttle (k, scaling like
sqrt(n)), and the residual gate error epsilon.  The paper does not publish
the numerical calibration, so :meth:`NoiseParameters.paper_defaults` provides
values chosen to land in the reported operating ranges (BV success around
0.9 on TILT-16, QFT success far below 1e-10, QCCD behind TILT on
short-distance workloads).  Every value is explicit and overridable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class NoiseParameters:
    """All knobs of the trapped-ion noise model.

    Attributes
    ----------
    background_heating_rate_per_us:
        Gamma in Eq. 4 — fidelity lost per microsecond of two-qubit gate time
        due to background motional heating of the trap.
    residual_gate_error:
        epsilon in Eq. 4 — error of each two-qubit gate caused by imperfect
        phase-space loop closure; amplified exponentially by motional quanta.
    one_qubit_gate_error:
        Constant error of a single-qubit rotation (raw rates are ~1e-3 but
        composite pulses improve them "significantly", Section II-B; 1e-5
        keeps single-qubit error from masking the two-qubit/shuttling
        effects the paper studies).
    one_qubit_gate_time_us:
        Duration of a single-qubit rotation in microseconds.
    two_qubit_time_slope_us / two_qubit_time_offset_us:
        Eq. 3 coefficients: ``tau(d) = slope * d + offset`` microseconds for
        an AM gate spanning ``d`` ion spacings.
    shuttle_quanta_reference:
        Motional quanta added by one full-chain linear shuttle of a chain
        with ``shuttle_reference_ions`` ions (k in the paper before the
        sqrt(n) scaling).
    shuttle_reference_ions:
        Chain length at which ``shuttle_quanta_reference`` was calibrated
        (Honeywell's 8-ion chain).
    qccd_shuttle_quanta:
        Motional quanta added by each QCCD shuttling primitive (split,
        merge, segment shuttle); Honeywell reports an average of about
        2 quanta per operation.
    qccd_cooling_factor:
        Fraction of a QCCD chain's motional quanta that survives the
        sympathetic-cooling step applied after each ion transport
        (1.0 disables cooling).  QCCD traps are small enough to support
        in-circuit recooling, which is why their heating does not accumulate
        without bound the way a full-tape shuttle's does.
    shuttle_speed_um_per_us:
        Tape / ion shuttling speed used for execution-time estimates (Eq. 5).
    measurement_error:
        Per-qubit readout error; 0 disables readout error (the paper's
        success-rate metric ignores it).
    tilt_cooling_interval_moves:
        Section VII extension — sympathetic cooling on the TILT tape.  When
        positive, the chain is re-cooled to its motional ground state after
        every this-many tape moves (0, the paper's main configuration,
        disables cooling so heating accumulates over the whole program).
    tilt_cooling_time_us:
        Duration of one sympathetic-cooling pause on the tape, charged to
        the execution-time estimate when cooling is enabled.
    """

    background_heating_rate_per_us: float = 1.0e-6
    residual_gate_error: float = 1.0e-5
    one_qubit_gate_error: float = 1.0e-5
    one_qubit_gate_time_us: float = 10.0
    two_qubit_time_slope_us: float = 38.0
    two_qubit_time_offset_us: float = 10.0
    shuttle_quanta_reference: float = 1.0
    shuttle_reference_ions: int = 8
    qccd_shuttle_quanta: float = 2.0
    qccd_cooling_factor: float = 0.995
    shuttle_speed_um_per_us: float = 1.0
    measurement_error: float = 0.0
    tilt_cooling_interval_moves: int = 0
    tilt_cooling_time_us: float = 400.0

    def __post_init__(self) -> None:
        non_negative = (
            "background_heating_rate_per_us",
            "residual_gate_error",
            "one_qubit_gate_error",
            "shuttle_quanta_reference",
            "qccd_shuttle_quanta",
            "measurement_error",
        )
        for name in non_negative:
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")
        positive = (
            "one_qubit_gate_time_us",
            "two_qubit_time_slope_us",
            "shuttle_speed_um_per_us",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")
        if self.shuttle_reference_ions <= 0:
            raise SimulationError("shuttle_reference_ions must be positive")
        if not 0.0 <= self.qccd_cooling_factor <= 1.0:
            raise SimulationError("qccd_cooling_factor must be in [0, 1]")
        if self.tilt_cooling_interval_moves < 0:
            raise SimulationError(
                "tilt_cooling_interval_moves cannot be negative"
            )
        if self.tilt_cooling_time_us < 0:
            raise SimulationError("tilt_cooling_time_us cannot be negative")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls) -> "NoiseParameters":
        """Calibration used for every experiment in EXPERIMENTS.md."""
        return cls()

    @classmethod
    def noiseless(cls) -> "NoiseParameters":
        """All error sources switched off (useful for structural tests)."""
        return cls(
            background_heating_rate_per_us=0.0,
            residual_gate_error=0.0,
            one_qubit_gate_error=0.0,
            shuttle_quanta_reference=0.0,
            qccd_shuttle_quanta=0.0,
            measurement_error=0.0,
        )

    def with_overrides(self, **kwargs: float) -> "NoiseParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def shuttle_quanta(self, chain_length: int) -> float:
        """Heating added by one linear shuttle of a chain of *chain_length* ions.

        Implements the paper's ``k ~ sqrt(n)`` scaling relative to the
        reference chain length.
        """
        if chain_length <= 0:
            raise SimulationError("chain length must be positive")
        scale = math.sqrt(chain_length / self.shuttle_reference_ions)
        return self.shuttle_quanta_reference * scale
