"""Gate-duration model.

Two-qubit amplitude-modulated (AM) gates follow Eq. 3 of the paper:
``tau(d) = 38 * d + 10`` microseconds, where *d* is the distance between the
two ions in units of ion spacings.  Single-qubit rotations take a fixed
(parameterisable) time, and a routing SWAP is executed as three XX gates of
the same span.
"""

from __future__ import annotations

from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.noise.parameters import NoiseParameters

#: Number of native XX gates a SWAP expands to (standard 3-CX construction).
XX_GATES_PER_SWAP = 3


def two_qubit_gate_time_us(distance: int, params: NoiseParameters) -> float:
    """Eq. 3: AM gate duration for ions *distance* spacings apart."""
    if distance < 1:
        raise SimulationError("two-qubit gate distance must be >= 1")
    return params.two_qubit_time_slope_us * distance + params.two_qubit_time_offset_us


def gate_time_us(gate: Gate, params: NoiseParameters) -> float:
    """Duration of *gate* on a trapped-ion device.

    Uses the physical span of the gate's qubit indices, so it must be called
    on gates expressed over **physical** qubits (i.e. after routing).
    Barriers take no time; measurements are charged the single-qubit time.
    """
    if gate.name == "barrier":
        return 0.0
    if gate.num_qubits == 1:
        return params.one_qubit_gate_time_us
    if gate.num_qubits == 2:
        base = two_qubit_gate_time_us(gate.span, params)
        if gate.name == "swap":
            return XX_GATES_PER_SWAP * base
        return base
    raise SimulationError(
        f"gate {gate.name!r} must be decomposed before timing "
        f"({gate.num_qubits} qubits)"
    )


def critical_path_time_us(gates_by_depth: list[list[Gate]],
                          params: NoiseParameters) -> float:
    """Sum over depth layers of the longest gate in each layer (Eq. 5 term)."""
    total = 0.0
    for layer in gates_by_depth:
        if layer:
            total += max(gate_time_us(g, params) for g in layer)
    return total
