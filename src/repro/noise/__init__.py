"""Trapped-ion noise model: gate times (Eq. 3), heating, fidelity (Eq. 4),
and the stochastic channel interpretation used for shot sampling."""

from repro.noise.channels import (
    ErrorSite,
    error_site_for_gate,
    pauli_gates,
    sample_pauli_label,
)
from repro.noise.fidelity import (
    SuccessRateAccumulator,
    gate_fidelity,
    measurement_fidelity,
    one_qubit_fidelity,
    two_qubit_fidelity,
)
from repro.noise.gate_times import (
    XX_GATES_PER_SWAP,
    critical_path_time_us,
    gate_time_us,
    two_qubit_gate_time_us,
)
from repro.noise.heating import ChainHeatingState, quanta_after_moves
from repro.noise.parameters import NoiseParameters

__all__ = [
    "ChainHeatingState",
    "ErrorSite",
    "NoiseParameters",
    "SuccessRateAccumulator",
    "XX_GATES_PER_SWAP",
    "critical_path_time_us",
    "error_site_for_gate",
    "gate_fidelity",
    "gate_time_us",
    "measurement_fidelity",
    "one_qubit_fidelity",
    "pauli_gates",
    "quanta_after_moves",
    "sample_pauli_label",
    "two_qubit_fidelity",
    "two_qubit_gate_time_us",
]
