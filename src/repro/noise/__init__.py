"""Trapped-ion noise model: gate times (Eq. 3), heating, fidelity (Eq. 4),
the stochastic channel interpretation used for shot sampling, and the
correlated-noise scenario registry (crosstalk / leakage / heating bursts)."""

from repro.noise.channels import (
    ErrorSite,
    error_site_for_gate,
    pauli_gates,
    sample_pauli_label,
)
from repro.noise.scenarios import (
    NoiseScenario,
    build_scenario_sites,
    compose_scenarios,
    expected_log10_success,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_analytics,
    scenario_names,
)
from repro.noise.fidelity import (
    SuccessRateAccumulator,
    gate_fidelity,
    measurement_fidelity,
    one_qubit_fidelity,
    two_qubit_fidelity,
)
from repro.noise.gate_times import (
    XX_GATES_PER_SWAP,
    critical_path_time_us,
    gate_time_us,
    two_qubit_gate_time_us,
)
from repro.noise.heating import ChainHeatingState, quanta_after_moves
from repro.noise.parameters import NoiseParameters

__all__ = [
    "ChainHeatingState",
    "ErrorSite",
    "NoiseParameters",
    "NoiseScenario",
    "SuccessRateAccumulator",
    "XX_GATES_PER_SWAP",
    "build_scenario_sites",
    "compose_scenarios",
    "critical_path_time_us",
    "error_site_for_gate",
    "expected_log10_success",
    "gate_fidelity",
    "gate_time_us",
    "get_scenario",
    "measurement_fidelity",
    "one_qubit_fidelity",
    "pauli_gates",
    "quanta_after_moves",
    "register_scenario",
    "resolve_scenario",
    "sample_pauli_label",
    "scenario_analytics",
    "scenario_names",
    "two_qubit_fidelity",
    "two_qubit_gate_time_us",
]
