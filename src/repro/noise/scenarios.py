"""Correlated-noise scenarios: crosstalk, leakage and heating bursts.

The paper's Eq. 4 model treats every gate error as independent, but the
TILT architecture's single shared chain makes *correlated* mechanisms the
physically dominant threats at scale (Sections II-B, IV-E, VII):

* **crosstalk** — the laser head is not perfectly confined, so every MS
  gate deposits a small depolarizing kick on the spectator ions sitting
  under the head window, decaying geometrically with ion distance;
* **leakage** — a gate occasionally pumps a qubit out of the computational
  subspace; a leaked qubit makes every later gate touching it act as
  identity-with-error and turns its measurement into a coin flip;
* **heating bursts** — a shuttle occasionally deposits a multi-quanta
  motional burst that scales the error of *every* later gate until the
  next cooling event re-grounds the chain.

This module is declarative: a :class:`NoiseScenario` names one
configuration of the three mechanisms, a process-wide registry maps names
(``"baseline"``, ``"crosstalk"``, ``"leakage"``, ``"heating_burst"``,
``"worst_case"``) to configs, and :func:`build_scenario_sites` expands a
simulator-produced execution timeline into the extra
:class:`~repro.noise.channels.ErrorSite` records the stochastic sampler
consumes.  The analytic counterpart, :func:`scenario_analytics`, computes
the *exact* closed-form success rate of the correlated model — bursts are
handled by a per-window dynamic program over the number of active bursts,
so the analytic and sampled paths agree by construction, not by
approximation.

Adding a new mechanism means adding a new ``ErrorSite`` kind (see
ROADMAP.md) plus its expansion rule here — never a new simulator.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.noise.channels import (
    CROSSTALK,
    HEATING_BURST,
    LEAKAGE,
    MEASURE_FLIP,
    ErrorSite,
    SiteTable,
    error_site_for_gate,
)

#: Mechanism names, in the order attribution tables report them.
MECHANISMS = ("crosstalk", "leakage", "heating_burst")


@dataclass(frozen=True)
class NoiseScenario:
    """One named configuration of the correlated-noise mechanisms.

    Attributes
    ----------
    name:
        Registry key (``JobSpec(scenario=...)`` carries this string).
    description:
        One-line human-readable summary.
    crosstalk_strength:
        Depolarizing-kick probability on a spectator ion at distance 1
        from an MS gate's nearest operand (0 disables crosstalk).
    crosstalk_decay:
        Geometric decay of the kick per additional ion of distance.
    crosstalk_range:
        Farthest spectator distance (in ion spacings) that still receives
        a kick; bounds the number of sites per gate.
    leakage_rate_1q / leakage_rate_2q:
        Per-qubit probability that a one-/two-qubit gate pumps that qubit
        out of the computational subspace (0 disables leakage).
    burst_probability:
        Probability that one shuttle (TILT tape move / QCCD transport)
        deposits a heating burst (0 disables bursts).
    burst_error_multiplier:
        Factor by which each active burst scales the error probability of
        every later gate-level site in its burst-coupling window (the
        stretch until the next full cooling event), compounding per burst
        and capped at probability 1.
    """

    name: str
    description: str = ""
    crosstalk_strength: float = 0.0
    crosstalk_decay: float = 0.5
    crosstalk_range: int = 3
    leakage_rate_1q: float = 0.0
    leakage_rate_2q: float = 0.0
    burst_probability: float = 0.0
    burst_error_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("a scenario needs a non-empty name")
        for attribute in ("crosstalk_strength", "leakage_rate_1q",
                          "leakage_rate_2q", "burst_probability"):
            value = getattr(self, attribute)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{attribute} must be in [0, 1]")
        if not 0.0 < self.crosstalk_decay <= 1.0:
            raise SimulationError("crosstalk_decay must be in (0, 1]")
        if self.crosstalk_range < 1:
            raise SimulationError("crosstalk_range must be >= 1")
        if self.burst_error_multiplier < 1.0:
            raise SimulationError(
                "burst_error_multiplier must be >= 1 (a burst never "
                "improves a gate)"
            )
        if self.burst_probability > 0.0 and self.burst_error_multiplier == 1.0:
            raise SimulationError(
                "burst_probability > 0 with burst_error_multiplier = 1 is "
                "silently inert: bursts would trigger (and cost the "
                "correlated sampling path) without scaling any error"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mechanisms(self) -> tuple[str, ...]:
        """The mechanisms this scenario switches on, in report order."""
        active = []
        if self.crosstalk_strength > 0.0:
            active.append("crosstalk")
        if self.leakage_rate_1q > 0.0 or self.leakage_rate_2q > 0.0:
            active.append("leakage")
        if self.burst_probability > 0.0:
            active.append("heating_burst")
        return tuple(active)

    @property
    def is_baseline(self) -> bool:
        """True when every correlated mechanism is switched off."""
        return not self.mechanisms

    def with_overrides(self, **kwargs) -> "NoiseScenario":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def crosstalk_probability(self, distance: int) -> float:
        """Kick probability on a spectator at *distance* ion spacings."""
        if distance < 1:
            raise SimulationError("spectator distance must be >= 1")
        if distance > self.crosstalk_range:
            return 0.0
        return min(
            1.0, self.crosstalk_strength * self.crosstalk_decay ** (distance - 1)
        )


#: The knobs each mechanism owns (used by :func:`compose_scenarios`).
_MECHANISM_KNOBS = {
    "crosstalk": ("crosstalk_strength", "crosstalk_decay",
                  "crosstalk_range"),
    "leakage": ("leakage_rate_1q", "leakage_rate_2q"),
    "heating_burst": ("burst_probability", "burst_error_multiplier"),
}


def compose_scenarios(name: str, *scenarios: "NoiseScenario",
                      description: str = "") -> NoiseScenario:
    """Combine scenarios by taking the worst (largest) value of every knob.

    Each mechanism's knobs combine by ``max`` over the scenarios that
    *enable* that mechanism — a scenario with a mechanism switched off
    does not leak its inert default knobs into the composition (e.g. a
    leakage-only scenario's default ``crosstalk_decay`` must not
    override a tuned crosstalk scenario's value, which would bias the
    attribution study's interaction term).  The composition is at least
    as noisy as each input.
    """
    if not scenarios:
        raise SimulationError("compose_scenarios needs at least one scenario")
    fields: dict[str, float] = {}
    for mechanism, knobs in _MECHANISM_KNOBS.items():
        active = [s for s in scenarios if mechanism in s.mechanisms]
        if not active:
            continue  # mechanism stays at its (off) defaults
        for knob in knobs:
            fields[knob] = max(getattr(s, knob) for s in active)
    return NoiseScenario(name=name, description=description, **fields)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, NoiseScenario] = {}

#: The all-mechanisms-off scenario every pre-existing code path runs under.
BASELINE = NoiseScenario(
    name="baseline",
    description="independent Eq. 4 gate errors only (the paper's model)",
)


def register_scenario(scenario: NoiseScenario, *,
                      replace: bool = False) -> NoiseScenario:
    """Add *scenario* to the registry (``replace=True`` to overwrite).

    Custom scenarios must be registered at import time (module level) to
    be visible inside :class:`~repro.exec.engine.ExecutionEngine` process
    -pool workers, which re-import the library.
    """
    if scenario.name == BASELINE.name and scenario != BASELINE:
        # The baseline name is exempt from content-key hashing, so
        # rebinding it to different physics would let a warm cache serve
        # results computed under the old model.
        raise SimulationError(
            "the 'baseline' scenario is fixed (all mechanisms off); "
            "register the modified config under a different name"
        )
    if scenario.name in _REGISTRY and not replace:
        raise SimulationError(
            f"scenario {scenario.name!r} is already registered; pass "
            f"replace=True to overwrite it"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> NoiseScenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SimulationError(
            f"unknown noise scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, built-ins first."""
    return tuple(_REGISTRY)


def resolve_scenario(
    scenario: Union["NoiseScenario", str, None]
) -> NoiseScenario:
    """Normalise a scenario argument: ``None`` means baseline."""
    if scenario is None:
        return BASELINE
    if isinstance(scenario, NoiseScenario):
        return scenario
    return get_scenario(scenario)


register_scenario(BASELINE)
register_scenario(NoiseScenario(
    name="crosstalk",
    description="laser-head leakage kicks spectator ions under the window",
    crosstalk_strength=2e-4,
    crosstalk_decay=0.4,
    crosstalk_range=3,
))
register_scenario(NoiseScenario(
    name="leakage",
    description="gates occasionally pump a qubit out of the 0/1 subspace",
    leakage_rate_1q=5e-5,
    leakage_rate_2q=5e-4,
))
register_scenario(NoiseScenario(
    name="heating_burst",
    description="a shuttle sometimes deposits a multi-quanta burst that "
                "amplifies every later gate error until the next cooling",
    burst_probability=0.1,
    burst_error_multiplier=2.0,
))
register_scenario(compose_scenarios(
    "worst_case",
    get_scenario("crosstalk"),
    get_scenario("leakage"),
    get_scenario("heating_burst"),
    description="all three correlated mechanisms at once",
))


# ----------------------------------------------------------------------
# Execution timeline -> error sites
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GatePoint:
    """One executed gate on a simulator's timeline.

    ``index`` is the gate's position in execution order (it doubles as
    the injection index for counts sampling), ``spectators`` lists the
    ``(ion, distance)`` pairs a crosstalk kick can reach, and ``window``
    is the burst-coupling window the gate runs in.
    """

    index: int
    gate: Gate
    fidelity: float
    spectators: tuple[tuple[int, int], ...] = ()
    window: int = 0


@dataclass(frozen=True)
class ShuttlePoint:
    """One shuttle (tape move / QCCD transport) on the timeline.

    ``move`` is the 1-based move/transport number (recorded as the burst
    site's ``index``); ``window`` is the burst-coupling window the
    deposited burst lives in.
    """

    move: int
    window: int = 0


TimelinePoint = Union[GatePoint, ShuttlePoint]


def chain_spectators(qubits: tuple[int, ...], window_ions: Iterable[int],
                     max_distance: int) -> tuple[tuple[int, int], ...]:
    """The ``(ion, distance)`` spectator pairs of a gate in a chain window.

    Distance is the ion's separation from the nearest gate operand; only
    spectators within *max_distance* are returned, sorted by ion index.
    """
    operands = set(qubits)
    spectators = []
    for ion in window_ions:
        if ion in operands:
            continue
        distance = min(abs(ion - q) for q in operands)
        if 1 <= distance <= max_distance:
            spectators.append((ion, distance))
    return tuple(sorted(spectators))


def _is_entangling(gate: Gate) -> bool:
    return gate.num_qubits == 2 and gate.name not in ("barrier",)


def build_scenario_sites(points: Sequence[TimelinePoint],
                         scenario: NoiseScenario) -> list[ErrorSite]:
    """Expand a timeline into the full (base + scenario) error-site list.

    Sites come out in execution order — the order the stochastic sampler
    processes them in, and the order the burst dynamic program relies on:
    a burst only scales sites that appear *after* it in the list and
    share its window.  Per gate the order is: the base Eq. 4 site, then
    crosstalk kicks (by spectator index), then leakage sites (by operand
    order).
    """
    sites: list[ErrorSite] = []
    for point in points:
        if isinstance(point, ShuttlePoint):
            if scenario.burst_probability > 0.0:
                sites.append(ErrorSite(
                    index=point.move, kind=HEATING_BURST, qubits=(),
                    probability=scenario.burst_probability,
                    window=point.window,
                ))
            continue
        gate = point.gate
        base = error_site_for_gate(point.index, gate, point.fidelity,
                                   window=point.window)
        if base is not None:
            sites.append(base)
        if gate.name in ("barrier", "measure"):
            continue
        if scenario.crosstalk_strength > 0.0 and _is_entangling(gate):
            for ion, distance in point.spectators:
                probability = scenario.crosstalk_probability(distance)
                if probability > 0.0:
                    sites.append(ErrorSite(
                        index=point.index, kind=CROSSTALK, qubits=(ion,),
                        probability=probability, window=point.window,
                    ))
        rate = (scenario.leakage_rate_2q if gate.num_qubits == 2
                else scenario.leakage_rate_1q)
        if rate > 0.0:
            for qubit in gate.qubits:
                sites.append(ErrorSite(
                    index=point.index, kind=LEAKAGE, qubits=(qubit,),
                    probability=rate, window=point.window,
                ))
    return sites


def scenario_site_table(points: Sequence[TimelinePoint],
                        scenario: NoiseScenario) -> SiteTable:
    """Columnar :class:`~repro.noise.channels.SiteTable` of a timeline.

    The array form of :func:`build_scenario_sites` — per-site
    probability/window/kind-mask columns in the same execution order —
    for analytics or sampling code that wants vectorized access to a
    scenario's site probabilities without re-walking the object list.
    """
    return SiteTable.from_sites(build_scenario_sites(points, scenario))


# ----------------------------------------------------------------------
# Exact analytic success rate under correlated noise
# ----------------------------------------------------------------------
LOG10_E = math.log10(math.e)

#: Renormalise the burst DP weights when their mass drops below this, so
#: deep circuits (success rates far below double-precision underflow)
#: stay exact in log space.
_DP_RESCALE_FLOOR = 1e-150


def _window_log10_success(sites: Sequence[ErrorSite],
                          multiplier: float) -> float:
    """log10 P(no error event) for the sites of one burst-coupling window.

    Without burst sites this is the plain log-sum of survival
    probabilities.  With bursts it is an exact dynamic program over the
    number of active bursts: ``weights[k]`` tracks the joint probability
    that ``k`` bursts have triggered so far *and* every error site
    processed so far survived; burst sites branch the distribution, error
    sites multiply in their (burst-scaled) survival factor.
    """
    if not any(site.kind == HEATING_BURST for site in sites):
        log_total = 0.0
        for site in sites:
            if site.probability >= 1.0:
                return float("-inf")
            log_total += math.log1p(-site.probability)
        return log_total * LOG10_E

    weights = np.array([1.0])
    log10_total = 0.0
    with np.errstate(over="ignore"):
        scale = multiplier ** np.arange(len(sites) + 1, dtype=float)
    for site in sites:
        if site.kind == HEATING_BURST:
            p = site.probability
            grown = np.zeros(len(weights) + 1)
            grown[:-1] += weights * (1.0 - p)
            grown[1:] += weights * p
            weights = grown
        elif site.kind == MEASURE_FLIP:
            weights = weights * (1.0 - site.probability)
        else:
            scaled = np.minimum(1.0,
                                site.probability * scale[:len(weights)])
            weights = weights * (1.0 - scaled)
        total = float(weights.sum())
        if total <= 0.0:
            return float("-inf")
        if total < _DP_RESCALE_FLOOR:
            log10_total += math.log10(total)
            weights = weights / total
    return log10_total + math.log10(float(weights.sum()))


def expected_log10_success(sites: Sequence[ErrorSite],
                           burst_multiplier: float = 1.0) -> float:
    """Exact log10 success probability of a correlated-noise site list.

    Bursts in different windows are independent and scale disjoint site
    sets, so the success probability factorises over windows; each window
    is solved exactly by :func:`_window_log10_success`.
    """
    windows: dict[int, list[ErrorSite]] = {}
    for site in sites:
        windows.setdefault(site.window, []).append(site)
    return sum(
        _window_log10_success(window_sites, burst_multiplier)
        for window_sites in windows.values()
    )


def expected_success_rate(sites: Sequence[ErrorSite],
                          burst_multiplier: float = 1.0) -> float:
    """Linear-space companion of :func:`expected_log10_success`."""
    log10 = expected_log10_success(sites, burst_multiplier)
    if log10 == float("-inf"):
        return 0.0
    try:
        return math.pow(10.0, log10)
    except OverflowError:  # pragma: no cover - log10 <= 0 always
        return 0.0


@dataclass(frozen=True)
class ScenarioAnalytics:
    """Closed-form summary of one scenario-adjusted execution.

    ``site_counts`` and ``expected_events`` are keyed by site kind and
    feed the per-mechanism fidelity-attribution study.
    ``expected_events`` is the *first-order* per-site trigger expectation
    at unscaled probabilities — burst amplification and leak suppression
    are deliberately excluded so the columns stay linear in the scenario
    knobs (the success rate itself is exact, via the burst DP); under
    active bursts the sampled ``mechanism_counts`` will therefore sit
    above these expectations.
    """

    success_rate: float
    log10_success_rate: float
    site_counts: dict[str, int]
    expected_events: dict[str, float]

    def extras(self) -> dict[str, float]:
        """Flat float dict for :attr:`SimulationResult.extras`."""
        flattened: dict[str, float] = {}
        for kind, count in self.site_counts.items():
            flattened[f"sites_{kind}"] = float(count)
        for kind, expectation in self.expected_events.items():
            flattened[f"expected_{kind}"] = expectation
        return flattened

    def apply_to(self, result):
        """A copy of a baseline ``SimulationResult`` under this scenario.

        Replaces the success rate with the correlated-noise value and
        merges the per-mechanism telemetry into ``extras``; every other
        field (gate counts, timings, heating) is structural and carries
        over.  Duck-typed so the noise layer need not import the sim
        layer.
        """
        return dataclasses.replace(
            result,
            success_rate=self.success_rate,
            log10_success_rate=self.log10_success_rate,
            extras={**result.extras, **self.extras()},
        )


def scenario_analytics(sites: Sequence[ErrorSite],
                       scenario: NoiseScenario) -> ScenarioAnalytics:
    """Exact analytic success rate plus per-mechanism site telemetry."""
    site_counts: dict[str, int] = {}
    expected_events: dict[str, float] = {}
    for site in sites:
        site_counts[site.kind] = site_counts.get(site.kind, 0) + 1
        expected_events[site.kind] = (
            expected_events.get(site.kind, 0.0) + site.probability
        )
    log10 = expected_log10_success(sites, scenario.burst_error_multiplier)
    rate = 0.0 if log10 == float("-inf") else math.pow(10.0, log10)
    return ScenarioAnalytics(
        success_rate=rate,
        log10_success_rate=log10,
        site_counts=site_counts,
        expected_events=expected_events,
    )
