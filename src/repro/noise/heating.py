"""Motional-heating bookkeeping.

The fidelity of a Molmer-Sorensen gate degrades with the motional energy of
the ion chain it runs on (Section II-B / IV-E).  Two sources are tracked:

* **shuttling heating** — each start/stop of a chain move deposits a fixed
  number of quanta that scales like ``sqrt(n)`` with chain length;
* **QCCD primitives** — split, merge, segment shuttles and swap-to-edge
  operations, each depositing ``qccd_shuttle_quanta``.

:class:`ChainHeatingState` is the mutable accumulator both simulators use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.noise.parameters import NoiseParameters


@dataclass
class ChainHeatingState:
    """Accumulated motional quanta of one ion chain.

    Parameters
    ----------
    params:
        Noise parameters providing the per-event heating amounts.
    chain_length:
        Number of ions currently in the chain (TILT: the whole tape;
        QCCD: the trap's occupancy, updated on split/merge).
    """

    params: NoiseParameters
    chain_length: int
    quanta: float = 0.0
    num_shuttles: int = 0
    num_qccd_ops: int = 0

    def __post_init__(self) -> None:
        if self.chain_length <= 0:
            raise SimulationError("chain length must be positive")
        if self.quanta < 0:
            raise SimulationError("motional quanta cannot be negative")

    # ------------------------------------------------------------------
    # Heating events
    # ------------------------------------------------------------------
    def record_linear_shuttle(self) -> float:
        """Add the heating of one full-chain linear shuttle; return the amount."""
        added = self.params.shuttle_quanta(self.chain_length)
        self.quanta += added
        self.num_shuttles += 1
        return added

    def record_qccd_primitive(self, count: int = 1) -> float:
        """Add heating for *count* QCCD primitives (split/merge/shuttle/swap)."""
        if count < 0:
            raise SimulationError("primitive count cannot be negative")
        added = count * self.params.qccd_shuttle_quanta
        self.quanta += added
        self.num_qccd_ops += count
        return added

    def apply_cooling(self, factor: float | None = None) -> None:
        """Sympathetic cooling: scale the accumulated quanta by *factor*.

        Defaults to the parameters' ``qccd_cooling_factor``.
        """
        if factor is None:
            factor = self.params.qccd_cooling_factor
        if not 0.0 <= factor <= 1.0:
            raise SimulationError("cooling factor must be in [0, 1]")
        self.quanta *= factor

    def set_chain_length(self, chain_length: int) -> None:
        """Update the chain length (QCCD traps change size on split/merge)."""
        if chain_length <= 0:
            raise SimulationError("chain length must be positive")
        self.chain_length = chain_length

    def cooled(self) -> "ChainHeatingState":
        """Return a copy with the motional energy reset (sympathetic cooling).

        The event counters (``num_shuttles``/``num_qccd_ops``) are
        telemetry about what already happened, not motional energy, so
        cooling carries them over — dropping them would corrupt per-run
        heating statistics after every cooling event.
        """
        return ChainHeatingState(self.params, self.chain_length, 0.0,
                                 num_shuttles=self.num_shuttles,
                                 num_qccd_ops=self.num_qccd_ops)


def quanta_after_moves(num_moves: int, chain_length: int,
                       params: NoiseParameters) -> float:
    """Total quanta after *num_moves* tape moves of a chain of given length.

    This is the ``m * k`` quantity appearing in Eq. 4 for TILT.  When the
    Section VII sympathetic-cooling extension is enabled
    (``tilt_cooling_interval_moves > 0``), only the moves since the most
    recent cooling pause contribute.  The pause runs *between* the
    interval-th move and the next one, so a gate executed right after the
    interval-th move still sees the full ``interval`` moves of heating —
    ``num_moves`` being an exact positive multiple of the interval maps
    to ``interval`` effective moves, never to a freshly cooled chain
    (that would credit cooling that has not happened yet).
    """
    if num_moves < 0:
        raise SimulationError("number of moves cannot be negative")
    interval = params.tilt_cooling_interval_moves
    if interval <= 0 or num_moves == 0:
        effective_moves = num_moves
    else:
        effective_moves = (num_moves - 1) % interval + 1
    return effective_moves * params.shuttle_quanta(chain_length)
