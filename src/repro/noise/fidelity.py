"""Gate-fidelity model and success-rate accumulation.

Implements Eq. 4 of the paper:

    F_m = 1 - Gamma * tau + (1 - (1 + epsilon) ** (2 m k + 1))

where ``m k`` is the motional energy (in quanta) of the chain at the time the
gate runs, ``tau`` is the gate duration (Eq. 3), ``Gamma`` is the background
heating rate and ``epsilon`` the residual-entanglement error.  Program
success rate is the product of all gate fidelities; because large circuits
reach values far below double-precision underflow (QFT-64 is ~1e-40 in the
paper), the accumulator works in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.noise.gate_times import XX_GATES_PER_SWAP, gate_time_us
from repro.noise.parameters import NoiseParameters


def two_qubit_fidelity(gate_time_microseconds: float, motional_quanta: float,
                       params: NoiseParameters) -> float:
    """Eq. 4 fidelity of one two-qubit gate.

    Parameters
    ----------
    gate_time_microseconds:
        tau — AM gate duration, from Eq. 3.
    motional_quanta:
        The chain's accumulated motional energy (``m * k`` for TILT after
        ``m`` moves, or the per-trap accumulator for QCCD).
    """
    if gate_time_microseconds < 0:
        raise SimulationError("gate time cannot be negative")
    if motional_quanta < 0:
        raise SimulationError("motional quanta cannot be negative")
    gamma = params.background_heating_rate_per_us
    epsilon = params.residual_gate_error
    exponent = 2.0 * motional_quanta + 1.0
    try:
        residual = math.pow(1.0 + epsilon, exponent) - 1.0
    except OverflowError:
        residual = math.inf
    fidelity = 1.0 - gamma * gate_time_microseconds - residual
    return min(1.0, max(0.0, fidelity))


def one_qubit_fidelity(params: NoiseParameters) -> float:
    """Fidelity of a single-qubit rotation (independent of heating)."""
    return min(1.0, max(0.0, 1.0 - params.one_qubit_gate_error))


def measurement_fidelity(params: NoiseParameters) -> float:
    """Fidelity of a single-qubit readout."""
    return min(1.0, max(0.0, 1.0 - params.measurement_error))


def gate_fidelity(gate: Gate, motional_quanta: float,
                  params: NoiseParameters) -> float:
    """Fidelity of an arbitrary (physical) gate under the current heating.

    A SWAP is charged as three XX gates of the same span.  Barriers are free.
    """
    if gate.name == "barrier":
        return 1.0
    if gate.name == "measure":
        return measurement_fidelity(params)
    if gate.num_qubits == 1:
        return one_qubit_fidelity(params)
    if gate.num_qubits == 2:
        single = two_qubit_fidelity(
            gate_time_us(Gate("xx", gate.qubits, (0.0,)), params),
            motional_quanta,
            params,
        )
        if gate.name == "swap":
            return single**XX_GATES_PER_SWAP
        return single
    raise SimulationError(
        f"gate {gate.name!r} must be decomposed before fidelity evaluation"
    )


@dataclass
class SuccessRateAccumulator:
    """Multiplies per-gate fidelities in log space.

    ``success_rate`` is ``exp(sum of log fidelities)``; if any gate has zero
    fidelity the success rate is exactly zero.
    """

    log_fidelity: float = 0.0
    num_gates: int = 0
    hit_zero: bool = False
    _worst: float = field(default=1.0, repr=False)

    def add(self, fidelity: float) -> None:
        """Fold one gate fidelity into the product."""
        if not 0.0 <= fidelity <= 1.0:
            raise SimulationError(f"fidelity {fidelity} outside [0, 1]")
        self.num_gates += 1
        self._worst = min(self._worst, fidelity)
        if fidelity == 0.0:
            self.hit_zero = True
            return
        self.log_fidelity += math.log(fidelity)

    @property
    def success_rate(self) -> float:
        """Product of all fidelities added so far (may underflow to 0.0)."""
        if self.hit_zero:
            return 0.0
        return math.exp(self.log_fidelity)

    @property
    def log10_success_rate(self) -> float:
        """log10 of the success rate (``-inf`` if any fidelity was zero)."""
        if self.hit_zero:
            return float("-inf")
        return self.log_fidelity / math.log(10.0)

    @property
    def worst_gate_fidelity(self) -> float:
        """The smallest single-gate fidelity seen."""
        return self._worst

    @property
    def average_gate_fidelity(self) -> float:
        """Geometric mean of the fidelities added so far."""
        if self.num_gates == 0:
            return 1.0
        if self.hit_zero:
            return 0.0
        return math.exp(self.log_fidelity / self.num_gates)
