"""Stochastic (sampled) interpretation of the analytic fidelity model.

The paper's noise model is analytic: every gate contributes a fidelity and
the program success rate is their product (Eq. 4).  The shot-based
Monte-Carlo subsystem (:mod:`repro.sim.stochastic`) reinterprets the same
numbers as stochastic error channels:

* a unitary gate with fidelity ``F`` *fails* with probability ``1 - F``,
  and a failure applies a uniformly random non-identity Pauli on the
  gate's qubits (a depolarizing channel of matching process infidelity);
* a measurement with readout fidelity ``F`` flips its classical outcome
  bit with probability ``1 - F``.

Under this interpretation the probability that one shot samples *zero*
errors is exactly the product of all gate fidelities — the analytic
success rate — so the sampled success rate converges to the closed-form
model by construction.  That agreement is what
:mod:`repro.analysis.convergence` tabulates and the stochastic test-suite
pins down.

This module holds the channel vocabulary: :class:`ErrorSite` (one
potential error location with its trigger probability), its columnar
companion :class:`SiteTable` (the same site list as numpy arrays, the
form the vectorized sampler consumes) and the Pauli sampling rules.  The
per-architecture site extraction lives with each simulator, because only
the simulator knows the heating state a gate runs under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.circuits.gate import Gate
from repro.exceptions import SimulationError

#: Error-site kinds.
PAULI_1Q = "pauli1"
PAULI_2Q = "pauli2"
MEASURE_FLIP = "measure_flip"

#: Correlated-noise site kinds (see :mod:`repro.noise.scenarios`): a
#: depolarizing kick on a spectator ion when an MS gate fires, a qubit
#: leaving the computational subspace, and a shuttle-induced multi-quanta
#: burst that scales every later error in its burst-coupling window.
CROSSTALK = "crosstalk"
LEAKAGE = "leakage"
HEATING_BURST = "heating_burst"

#: Every kind a site may carry.
SITE_KINDS = (PAULI_1Q, PAULI_2Q, MEASURE_FLIP, CROSSTALK, LEAKAGE,
              HEATING_BURST)

#: Kinds whose trigger is an *error event* (a shot fails iff one of these
#: triggers).  A heating burst is not itself an error — it only raises the
#: probability of later ones — so it is deliberately absent.
ERROR_KINDS = frozenset({PAULI_1Q, PAULI_2Q, MEASURE_FLIP, CROSSTALK,
                         LEAKAGE})

#: Kinds whose probability a triggered heating burst scales (gate-level
#: mechanisms; classical readout is unaffected by motional energy).
BURST_SCALED_KINDS = frozenset({PAULI_1Q, PAULI_2Q, CROSSTALK, LEAKAGE})

#: Kinds whose trigger consumes one Pauli-label draw from the shot
#: stream (leakage, bursts and readout flips carry fixed labels).
LABEL_KINDS = frozenset({PAULI_1Q, PAULI_2Q, CROSSTALK})

#: Kinds that only appear on correlated (scenario) timelines.  Their
#: presence switches the sampler to the correlated draw discipline.
CORRELATED_KINDS = frozenset({CROSSTALK, LEAKAGE, HEATING_BURST})

#: Non-identity Pauli labels of the single-qubit depolarizing channel.
PAULI_LABELS_1Q: tuple[str, ...] = ("X", "Y", "Z")

#: The 15 non-identity two-qubit Pauli labels ("IX" means I on the first
#: operand qubit, X on the second).
PAULI_LABELS_2Q: tuple[str, ...] = tuple(
    a + b for a in "IXYZ" for b in "IXYZ" if a + b != "II"
)


@dataclass(frozen=True)
class ErrorSite:
    """One potential error location in an executed gate sequence.

    Attributes
    ----------
    index:
        Position of the owning gate in execution order (used to inject
        sampled Paulis at the right place for counts sampling).  For
        ``"heating_burst"`` sites it is the move/transport number instead
        (bursts own no gate).
    kind:
        ``"pauli1"`` / ``"pauli2"`` for depolarizing noise after a unitary
        gate, ``"measure_flip"`` for classical readout error,
        ``"crosstalk"`` for a depolarizing kick on one spectator ion,
        ``"leakage"`` for one qubit leaving the computational subspace and
        ``"heating_burst"`` for a shuttle-induced error amplifier.
    qubits:
        The qubits the error can act on (the gate's operands, the
        spectator ion, or the leaking qubit; empty for bursts).
    probability:
        Per-shot trigger probability, ``1 - fidelity`` of the gate under
        its heating state (or the scenario-derived mechanism rate).
    window:
        Burst-coupling window id.  A triggered ``"heating_burst"`` site
        scales the probability of every *later* burst-scalable site that
        shares its window (TILT: the stretch between two sympathetic
        cooling pauses; QCCD: the trap).
    """

    index: int
    kind: str
    qubits: tuple[int, ...]
    probability: float
    window: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SITE_KINDS:
            raise SimulationError(f"unknown error-site kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError(
                f"error probability {self.probability} outside [0, 1]"
            )


@dataclass(frozen=True)
class SiteTable:
    """Columnar (structure-of-arrays) view of an error-site sequence.

    The vectorized sampler needs per-site *columns* — one probability,
    window and kind-class entry per site, aligned with the site's
    position in execution order — rather than a list of
    :class:`ErrorSite` objects.  Building those columns once per sampler
    keeps every hot shot-block free of per-site Python iteration.

    All arrays are marked read-only: the table is shared between the
    trigger kernels, the hazard-table cache and telemetry, and none of
    them may mutate it.  ``kinds`` keeps the raw kind string per site
    for telemetry grouping.
    """

    probabilities: np.ndarray
    windows: np.ndarray
    kinds: tuple[str, ...]
    #: Per-site boolean columns classifying the kind (aligned with
    #: ``probabilities``): consumes a Pauli-label draw, classical readout
    #: flip, leakage, heating burst, any correlated-only kind.
    label_mask: np.ndarray
    flip_mask: np.ndarray
    leak_mask: np.ndarray
    burst_mask: np.ndarray
    correlated_mask: np.ndarray

    @classmethod
    def from_sites(cls, sites: Sequence[ErrorSite]) -> "SiteTable":
        """Build the columns of *sites* (kept in execution order)."""
        kinds = tuple(site.kind for site in sites)
        probabilities = np.array(
            [site.probability for site in sites], dtype=float
        )
        windows = np.array([site.window for site in sites], dtype=np.int64)
        columns = {
            "label_mask": np.array(
                [kind in LABEL_KINDS for kind in kinds], dtype=bool
            ),
            "flip_mask": np.array(
                [kind == MEASURE_FLIP for kind in kinds], dtype=bool
            ),
            "leak_mask": np.array(
                [kind == LEAKAGE for kind in kinds], dtype=bool
            ),
            "burst_mask": np.array(
                [kind == HEATING_BURST for kind in kinds], dtype=bool
            ),
            "correlated_mask": np.array(
                [kind in CORRELATED_KINDS for kind in kinds], dtype=bool
            ),
        }
        for array in (probabilities, windows, *columns.values()):
            array.setflags(write=False)
        return cls(probabilities=probabilities, windows=windows,
                   kinds=kinds, **columns)

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def correlated(self) -> bool:
        """True when any site needs the correlated draw discipline."""
        return bool(self.correlated_mask.any())


def error_site_for_gate(index: int, gate: Gate, fidelity: float,
                        window: int = 0) -> ErrorSite | None:
    """The error site of one executed gate, or ``None`` if it cannot fail.

    Barriers and gates with fidelity 1 produce no site (zero-probability
    sites would only slow the sampler down).
    """
    if not 0.0 <= fidelity <= 1.0:
        raise SimulationError(f"fidelity {fidelity} outside [0, 1]")
    if gate.name == "barrier" or fidelity >= 1.0:
        return None
    if gate.name == "measure":
        kind = MEASURE_FLIP
    elif gate.num_qubits == 1:
        kind = PAULI_1Q
    elif gate.num_qubits == 2:
        kind = PAULI_2Q
    else:
        raise SimulationError(
            f"gate {gate.name!r} must be decomposed before stochastic "
            "noise evaluation"
        )
    return ErrorSite(index=index, kind=kind, qubits=gate.qubits,
                     probability=1.0 - fidelity, window=window)


def sample_pauli_label(site: ErrorSite, rng) -> str:
    """Draw the error label for a triggered *site* from its channel.

    *rng* is a :class:`numpy.random.Generator`; exactly one ``integers``
    draw is consumed for Pauli channels (crosstalk kicks included) and
    none for the classical kinds, so the per-shot random stream stays
    reproducible.  Crosstalk labels are prefixed ``"XT"`` so per-shot
    records stay attributable to their mechanism.
    """
    if site.kind == PAULI_1Q:
        return PAULI_LABELS_1Q[int(rng.integers(len(PAULI_LABELS_1Q)))]
    if site.kind == PAULI_2Q:
        return PAULI_LABELS_2Q[int(rng.integers(len(PAULI_LABELS_2Q)))]
    if site.kind == CROSSTALK:
        return "XT" + PAULI_LABELS_1Q[int(rng.integers(len(PAULI_LABELS_1Q)))]
    if site.kind == LEAKAGE:
        return "LEAK"
    if site.kind == HEATING_BURST:
        return "BURST"
    return "FLIP"


def pauli_gates(site: ErrorSite, label: str) -> list[Gate]:
    """The unitary gates that realise a sampled Pauli *label* at *site*.

    Measurement flips are classical (handled on the sampled bit string),
    leakage is handled structurally (later gates on the leaked qubit are
    dropped) and bursts only scale probabilities, so none of those
    produce gates.  Crosstalk kicks strip their ``"XT"`` record prefix
    and inject the single-qubit Pauli on the spectator.
    """
    if site.kind in (MEASURE_FLIP, LEAKAGE, HEATING_BURST):
        return []
    if site.kind == CROSSTALK:
        label = label[-1:]
    gates: list[Gate] = []
    for qubit, factor in zip(site.qubits, label):
        if factor != "I":
            gates.append(Gate(factor.lower(), (qubit,)))
    return gates
