"""Stochastic (sampled) interpretation of the analytic fidelity model.

The paper's noise model is analytic: every gate contributes a fidelity and
the program success rate is their product (Eq. 4).  The shot-based
Monte-Carlo subsystem (:mod:`repro.sim.stochastic`) reinterprets the same
numbers as stochastic error channels:

* a unitary gate with fidelity ``F`` *fails* with probability ``1 - F``,
  and a failure applies a uniformly random non-identity Pauli on the
  gate's qubits (a depolarizing channel of matching process infidelity);
* a measurement with readout fidelity ``F`` flips its classical outcome
  bit with probability ``1 - F``.

Under this interpretation the probability that one shot samples *zero*
errors is exactly the product of all gate fidelities — the analytic
success rate — so the sampled success rate converges to the closed-form
model by construction.  That agreement is what
:mod:`repro.analysis.convergence` tabulates and the stochastic test-suite
pins down.

This module holds the channel vocabulary: :class:`ErrorSite` (one
potential error location with its trigger probability) and the Pauli
sampling rules.  The per-architecture site extraction lives with each
simulator, because only the simulator knows the heating state a gate
runs under.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gate import Gate
from repro.exceptions import SimulationError

#: Error-site kinds.
PAULI_1Q = "pauli1"
PAULI_2Q = "pauli2"
MEASURE_FLIP = "measure_flip"

#: Non-identity Pauli labels of the single-qubit depolarizing channel.
PAULI_LABELS_1Q: tuple[str, ...] = ("X", "Y", "Z")

#: The 15 non-identity two-qubit Pauli labels ("IX" means I on the first
#: operand qubit, X on the second).
PAULI_LABELS_2Q: tuple[str, ...] = tuple(
    a + b for a in "IXYZ" for b in "IXYZ" if a + b != "II"
)


@dataclass(frozen=True)
class ErrorSite:
    """One potential error location in an executed gate sequence.

    Attributes
    ----------
    index:
        Position of the owning gate in execution order (used to inject
        sampled Paulis at the right place for counts sampling).
    kind:
        ``"pauli1"`` / ``"pauli2"`` for depolarizing noise after a unitary
        gate, ``"measure_flip"`` for classical readout error.
    qubits:
        The qubits the error can act on (the gate's operands).
    probability:
        Per-shot trigger probability, ``1 - fidelity`` of the gate under
        its heating state.
    """

    index: int
    kind: str
    qubits: tuple[int, ...]
    probability: float

    def __post_init__(self) -> None:
        if self.kind not in (PAULI_1Q, PAULI_2Q, MEASURE_FLIP):
            raise SimulationError(f"unknown error-site kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError(
                f"error probability {self.probability} outside [0, 1]"
            )


def error_site_for_gate(index: int, gate: Gate,
                        fidelity: float) -> ErrorSite | None:
    """The error site of one executed gate, or ``None`` if it cannot fail.

    Barriers and gates with fidelity 1 produce no site (zero-probability
    sites would only slow the sampler down).
    """
    if not 0.0 <= fidelity <= 1.0:
        raise SimulationError(f"fidelity {fidelity} outside [0, 1]")
    if gate.name == "barrier" or fidelity >= 1.0:
        return None
    if gate.name == "measure":
        kind = MEASURE_FLIP
    elif gate.num_qubits == 1:
        kind = PAULI_1Q
    elif gate.num_qubits == 2:
        kind = PAULI_2Q
    else:
        raise SimulationError(
            f"gate {gate.name!r} must be decomposed before stochastic "
            "noise evaluation"
        )
    return ErrorSite(index=index, kind=kind, qubits=gate.qubits,
                     probability=1.0 - fidelity)


def sample_pauli_label(site: ErrorSite, rng) -> str:
    """Draw the error label for a triggered *site* from its channel.

    *rng* is a :class:`numpy.random.Generator`; exactly one ``integers``
    draw is consumed for Pauli channels and none for measurement flips,
    so the per-shot random stream stays reproducible.
    """
    if site.kind == PAULI_1Q:
        return PAULI_LABELS_1Q[int(rng.integers(len(PAULI_LABELS_1Q)))]
    if site.kind == PAULI_2Q:
        return PAULI_LABELS_2Q[int(rng.integers(len(PAULI_LABELS_2Q)))]
    return "FLIP"


def pauli_gates(site: ErrorSite, label: str) -> list[Gate]:
    """The unitary gates that realise a sampled Pauli *label* at *site*.

    Measurement flips are classical (handled on the sampled bit string)
    and produce no gates.
    """
    if site.kind == MEASURE_FLIP:
        return []
    gates: list[Gate] = []
    for qubit, factor in zip(site.qubits, label):
        if factor != "I":
            gates.append(Gate(factor.lower(), (qubit,)))
    return gates
