"""Batch execution engine for the reproduction's experiments.

Every paper figure and table boils down to the same unit of work: compile
one circuit for one device under one :class:`~repro.compiler.pipeline.CompilerConfig`
and simulate it under one :class:`~repro.noise.parameters.NoiseParameters`.
This package turns that unit into a declarative :class:`JobSpec` and runs
batches of them through a shared :class:`ExecutionEngine` that

* deduplicates identical specs inside a batch,
* caches results by a content hash of the spec (in memory, and optionally
  in an on-disk JSON cache that survives processes),
* fans independent jobs out over a ``concurrent.futures`` process pool
  (``workers=1`` is a fully serial, deterministic fallback), and
* records per-job wall-clock timings plus batch-level counters.

The sweep / comparison / experiment drivers in :mod:`repro.core` and
:mod:`repro.analysis` are thin wrappers over this engine.

Sampled (Monte-Carlo) jobs add a ``shots=`` / ``seed=`` dimension to the
spec; :func:`run_sampled_job` cuts one logical run into contiguous shot
shards that the engine executes — and caches — like any other batch, then
merges them bit-identically (see :mod:`repro.exec.sampling`).
"""

from repro.exec.cache import ResultCache
from repro.exec.engine import (
    EngineStats,
    ExecutionEngine,
    default_engine,
    execute_spec,
    reset_default_engine,
    run_jobs,
)
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.exec.sampling import run_sampled_job, shard_sampling_spec

__all__ = [
    "EngineStats",
    "ExecutionEngine",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "default_engine",
    "execute_spec",
    "reset_default_engine",
    "run_jobs",
    "run_sampled_job",
    "shard_sampling_spec",
    "spec_key",
]
