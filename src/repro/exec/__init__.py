"""Batch execution engine for the reproduction's experiments.

Every paper figure and table boils down to the same unit of work: compile
one circuit for one device under one :class:`~repro.compiler.pipeline.CompilerConfig`
and simulate it under one :class:`~repro.noise.parameters.NoiseParameters`.
This package turns that unit into a declarative :class:`JobSpec` and runs
batches of them through a shared :class:`ExecutionEngine` that

* deduplicates identical specs inside a batch,
* caches results by a content hash of the spec (in memory, in an on-disk
  JSON :class:`ResultCache`, or in a durable append-only
  :class:`RunStore` that survives interruptions and concurrent writers),
* executes the unique misses on a pluggable :class:`Backend` —
  :class:`SerialBackend` (deterministic in-process reference),
  :class:`ProcessPoolBackend` (chunked, work-stealing process-pool
  fan-out) or :class:`AsyncLocalBackend` (asyncio-driven local executor,
  the extension point for remote backends) — all bit-identical, and
* records per-job wall-clock timings plus batch-level counters.

The sweep / comparison / experiment drivers in :mod:`repro.core` and
:mod:`repro.analysis` are thin wrappers over this engine.

Sampled (Monte-Carlo) jobs add a ``shots=`` / ``seed=`` dimension to the
spec; :func:`run_sampled_job` cuts one logical run into contiguous shot
shards that the engine executes — and caches — like any other batch, then
merges them bit-identically (see :mod:`repro.exec.sampling`).

Long runs pair the engine with a :class:`RunStore`
(``ExecutionEngine(store=...)``): every finished job is appended durably,
a :class:`RunManifest` records the plan and its provenance, and a later
engine on the same store resumes from exactly the completed jobs.
"""

from repro.exec.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    AsyncLocalBackend,
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.exec.cache import ResultCache
from repro.exec.engine import (
    EngineStats,
    ExecutionEngine,
    default_engine,
    execute_spec,
    reset_default_engine,
    run_jobs,
)
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.exec.sampling import run_sampled_job, shard_sampling_spec
from repro.exec.store import (
    RunManifest,
    RunStore,
    collect_provenance,
    read_manifest,
)

__all__ = [
    "AsyncLocalBackend",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "Backend",
    "EngineStats",
    "ExecutionEngine",
    "JobResult",
    "JobSpec",
    "ProcessPoolBackend",
    "ResultCache",
    "RunManifest",
    "RunStore",
    "SerialBackend",
    "collect_provenance",
    "default_engine",
    "execute_spec",
    "read_manifest",
    "reset_default_engine",
    "resolve_backend",
    "run_jobs",
    "run_sampled_job",
    "shard_sampling_spec",
    "spec_key",
]
