"""Shot fan-out: run one sampled job as engine shards and merge the shards.

A stochastic job with many shots is embarrassingly parallel: because every
shot seeds its own generator from ``(root seed, global shot index)``, the
run can be cut into contiguous shard :class:`~repro.exec.jobs.JobSpec`
objects (same circuit/device/noise, disjoint ``shot_offset`` ranges) that
the :class:`~repro.exec.engine.ExecutionEngine` executes like any other
batch — deduplicated, content-hash cached (the hash covers seed, shots and
offset) and fanned out over the process pool.  Merging the shard
:class:`~repro.sim.stochastic.ShotResult` objects reproduces the serial
run bit for bit, which ``tests/test_stochastic.py`` pins down.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import ReproError
from repro.exec.backends import Backend
from repro.exec.engine import (
    ExecutionEngine,
    default_engine,
    resolve_workers,
    run_jobs,
)
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.sim.stochastic import merge_shot_results

#: Floor on the shots one *default* shard carries.  The vectorized
#: sampler amortises its lane setup and trigger kernels over the whole
#: shot block, so cutting a small run into worker-count slivers costs
#: more than the pool parallelises; the default fan-out only opens a
#: shard per this many shots.  An explicit ``shards=`` always wins, and
#: either way the merged result is bit-identical — sharding changes
#: batching, never the per-shot random streams.
MIN_SHOTS_PER_SHARD = 1024


def shard_sampling_spec(spec: JobSpec, shards: int) -> list[JobSpec]:
    """Split a sampled spec into *shards* contiguous shot-range specs.

    Shots are distributed as evenly as possible (the first ``shots %
    shards`` shards take one extra).  Shards whose share would be zero are
    dropped, so asking for more shards than shots is harmless.
    """
    if spec.shots <= 0:
        raise ReproError("only specs with shots > 0 can be sharded")
    if shards <= 0:
        raise ReproError(f"shards must be positive, got {shards}")
    shards = min(shards, spec.shots)
    base, extra = divmod(spec.shots, shards)
    specs: list[JobSpec] = []
    offset = spec.shot_offset
    for shard in range(shards):
        share = base + (1 if shard < extra else 0)
        specs.append(dataclasses.replace(
            spec, shots=share, shot_offset=offset,
            label=f"{spec.label}[{offset}:{offset + share}]",
        ))
        offset += share
    return specs


def run_sampled_job(spec: JobSpec, *, shards: int | None = None,
                    workers: int | None = None,
                    exec_backend: str | Backend | None = None,
                    engine: ExecutionEngine | None = None) -> JobResult:
    """Run one sampled job, sharded across the execution engine.

    Parameters
    ----------
    spec:
        A :class:`JobSpec` with ``shots > 0``.
    shards:
        Number of contiguous shot ranges to cut the run into.  Defaults
        to the worker count of whatever will execute the batch — the
        *workers* override, the given *engine*, or the shared default
        engine (whose pool size follows ``TILT_REPRO_WORKERS``) — so a
        serial engine runs one shard and a pooled engine saturates its
        pool; the default is additionally capped so every shard keeps at
        least :data:`MIN_SHOTS_PER_SHARD` shots for the vectorized
        sampler to batch over.
    exec_backend:
        Execution backend for the shard batch (name or
        :class:`~repro.exec.backends.Backend` instance; ``exec_`` prefix
        because ``spec.backend`` already names the *toolchain*).  Shard
        merging is bit-identical under every backend.
    workers, engine:
        Standard engine controls (see :func:`~repro.exec.engine.run_jobs`).

    Returns
    -------
    JobResult
        Keyed by the *unsharded* spec's content hash, with the merged
        :class:`~repro.sim.stochastic.ShotResult` on ``.shot``.  Compile
        stats and the analytic simulation come from the first shard
        (every shard compiles the same program, so they only differ in
        wall-clock timings); ``wall_time_s`` sums the shard work and
        ``cache_hit`` is True only when every shard was cache-served.
    """
    if spec.shots <= 0:
        raise ReproError("run_sampled_job needs a spec with shots > 0")
    chosen = engine if engine is not None else default_engine()
    if shards is None:
        if workers is not None:
            shards = resolve_workers(workers)
        else:
            shards = chosen.workers
        # hand the vectorized sampler whole shot-blocks: more shards
        # than blocks just pays pool overhead per sliver
        blocks = -(-spec.shots // MIN_SHOTS_PER_SHARD)
        shards = max(1, min(shards, blocks))
    shard_specs = shard_sampling_spec(spec, shards)
    # Announce the plan *before* executing it: live monitors subscribed
    # to the trace stream (repro.obs.live) see the fan-out size the
    # moment it is decided, not when the first shard finishes.
    if chosen.trace.enabled:
        chosen.trace.event(
            "sampling.planned", spec_key=spec_key(spec), label=spec.label,
            shots=spec.shots, shards=len(shard_specs),
        )
    # Span on the chosen engine's recorder (same thread), so the batch
    # the shards run as nests under this fan-out in the trace; per-shard
    # timing comes from each shard's own job.execute span.
    with chosen.trace.span(
        "sampling.fanout", spec_key=spec_key(spec), label=spec.label,
        shots=spec.shots, shards=len(shard_specs),
    ) as span:
        results = run_jobs(shard_specs, workers=workers,
                           backend=exec_backend, engine=chosen)
        merged = merge_shot_results(
            [result.shot for result in results if result.shot is not None]
        )
        span.add(
            shard_wall_time_s=sum(r.wall_time_s for r in results),
            cache_hits=sum(1 for r in results if r.cache_hit),
        )
    first = results[0]
    return JobResult(
        key=spec_key(spec),
        backend=spec.backend,
        label=spec.label,
        stats=first.stats,
        simulation=first.simulation,
        shot=merged,
        wall_time_s=sum(result.wall_time_s for result in results),
        cache_hit=all(result.cache_hit for result in results),
    )
