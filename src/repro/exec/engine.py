"""The batch execution engine.

:class:`ExecutionEngine` takes a batch of :class:`~repro.exec.jobs.JobSpec`
objects and returns one :class:`~repro.exec.jobs.JobResult` per spec, in
input order.  Work proceeds in three steps:

1. **cache lookup** — specs whose content hash is already in the
   :class:`~repro.exec.cache.ResultCache` (or the durable
   :class:`~repro.exec.store.RunStore`) are served immediately;
2. **deduplication** — remaining specs with equal hashes collapse to one
   execution;
3. **execution** — unique specs are handed to a pluggable
   :class:`~repro.exec.backends.Backend`: serial in-process, a chunked
   work-stealing process pool, or an asyncio-driven local executor (the
   extension point for future remote backends).

Because compilation is seeded, the analytic noise model is closed-form
and stochastic sampling derives every shot's generator from ``(seed,
global shot index)``, every backend produces bit-identical results; they
differ only in wall-clock time.  Batch-level counters (cache hits/misses,
jobs executed, per-job timings) accumulate on the engine for the
acceptance checks and the progress report; ``engine.stats.reset()``
zeroes them between measurement phases.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.exceptions import ReproError
from repro.exec.backends import (
    BACKEND_ENV_VAR,
    Backend,
    WORKERS_ENV_VAR,
    execute_spec,
    resolve_backend,
    resolve_workers,
)
from repro.exec.cache import ResultCache
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.exec.store import RunStore

__all__ = [
    "BACKEND_ENV_VAR",
    "EngineStats",
    "ExecutionEngine",
    "WORKERS_ENV_VAR",
    "default_engine",
    "execute_spec",
    "reset_default_engine",
    "resolve_backend",
    "resolve_workers",
    "run_jobs",
]

#: Type of the optional progress callback: (jobs finished, total, result).
ProgressCallback = Callable[[int, int, JobResult], None]


@dataclass
class EngineStats:
    """Cumulative counters over every batch an engine has run."""

    jobs_submitted: int = 0
    jobs_executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    execution_time_s: float = 0.0
    batch_time_s: float = 0.0
    job_times_s: list[float] = field(default_factory=list)

    @property
    def cache_misses(self) -> int:
        """Specs that had to be executed (submitted minus hits and dupes)."""
        return self.jobs_submitted - self.cache_hits - self.deduplicated

    def reset(self) -> None:
        """Zero every counter (the cache itself is untouched).

        Lets callers measure phases separately — e.g. a benchmark
        resetting between its cold and warm passes so each phase reports
        its own cache-hit/dedup numbers instead of cumulative totals.
        """
        self.jobs_submitted = 0
        self.jobs_executed = 0
        self.cache_hits = 0
        self.deduplicated = 0
        self.execution_time_s = 0.0
        self.batch_time_s = 0.0
        self.job_times_s.clear()

    def to_dict(self) -> dict[str, float]:
        """Plain-JSON snapshot of every counter plus derived rates.

        This is what gets dumped next to search results / CI artifacts so
        cache-hit-rate regressions are visible across runs.  The raw
        counters come first so two snapshots can be subtracted; the
        derived ``cache_misses`` / ``cache_hit_rate`` entries are
        recomputed from whichever counters the consumer ends up with.
        """
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_executed": self.jobs_executed,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                self.cache_hits / self.jobs_submitted
                if self.jobs_submitted else 0.0
            ),
            "execution_time_s": self.execution_time_s,
            "batch_time_s": self.batch_time_s,
        }

    def summary(self) -> str:
        return (
            f"{self.jobs_submitted} jobs: {self.jobs_executed} executed, "
            f"{self.cache_hits} cache hits, {self.deduplicated} deduplicated "
            f"({self.execution_time_s:.2f} s work in "
            f"{self.batch_time_s:.2f} s wall)"
        )


class ExecutionEngine:
    """Run batches of jobs with caching, deduplication and a backend.

    Parameters
    ----------
    workers:
        Parallelism for backends the engine constructs itself.  ``1``
        (the default) selects the serial backend — fully deterministic;
        ``0`` means "one per CPU"; ``None`` defers to the
        ``TILT_REPRO_WORKERS`` environment variable.
    cache:
        The :class:`ResultCache` to consult and populate.  Pass an
        explicit instance to share results across engines, or ``None``
        for a private in-memory cache.
    cache_path:
        Convenience: build an on-disk cache at this path (ignored when
        *cache* is given).
    store:
        A :class:`~repro.exec.store.RunStore` (or a directory path for
        one) used *instead of* a :class:`ResultCache`: results persist
        per job in append-only segments, so an interrupted run keeps
        everything it finished and a later engine on the same store
        resumes from it.  Mutually exclusive with *cache* /
        *cache_path*.
    backend:
        Execution backend: a name (``"serial"``, ``"process"``,
        ``"async"``), a :class:`~repro.exec.backends.Backend` instance,
        or ``None`` — which consults ``TILT_REPRO_BACKEND`` and falls
        back to serial-or-pool by worker count.
    progress:
        Optional callback invoked after every finished job with
        ``(jobs done, total, result)``.
    """

    def __init__(self, *, workers: int | None = 1,
                 cache: ResultCache | None = None,
                 cache_path: str | os.PathLike[str] | None = None,
                 store: RunStore | str | os.PathLike[str] | None = None,
                 backend: str | Backend | None = None,
                 progress: ProgressCallback | None = None) -> None:
        self.workers = resolve_workers(workers)
        if store is not None:
            if cache is not None or cache_path is not None:
                raise ReproError(
                    "pass either store= or cache=/cache_path=, not both"
                )
            self.cache: ResultCache | RunStore = (
                store if isinstance(store, RunStore) else RunStore(store)
            )
        else:
            self.cache = cache if cache is not None else ResultCache(cache_path)
        self.backend = backend
        self.progress = progress
        self.stats = EngineStats()

    @property
    def store(self) -> RunStore | None:
        """The durable run store backing this engine, if any."""
        return self.cache if isinstance(self.cache, RunStore) else None

    def describe_backend(self, workers: int | None = None) -> str:
        """Identity string of the backend a batch would run on."""
        count = self.workers if workers is None else resolve_workers(workers)
        return resolve_backend(self.backend, count).describe()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_one(self, spec: JobSpec) -> JobResult:
        """Run a single spec (through the cache)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[JobSpec], *,
            workers: int | None = None,
            backend: str | Backend | None = None) -> list[JobResult]:
        """Run *specs*, returning one result per spec in input order.

        ``workers`` and ``backend`` override the engine's configuration
        for this batch only (engine state is not mutated).  ``workers``
        applies when the backend is resolved *by name* (engine default,
        env var, or a name passed here); a :class:`Backend` *instance*
        owns its parallelism and is used exactly as constructed —
        ``workers`` does not reconfigure it.
        """
        batch_start = time.perf_counter()
        batch_workers = (self.workers if workers is None
                         else resolve_workers(workers))
        keys = [spec_key(spec) for spec in specs]
        results: list[JobResult | None] = [None] * len(specs)
        done = 0
        total = len(specs)

        # 1. Serve cache hits; 2. collapse duplicate keys to one execution.
        pending: dict[str, list[int]] = {}
        for index, (spec, key) in enumerate(zip(specs, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached.with_cache_hit(label=spec.label)
                self.stats.cache_hits += 1
                done += 1
                if self.progress is not None:
                    self.progress(done, total, results[index])
            else:
                pending.setdefault(key, []).append(index)
        unique = [(key, specs[indices[0]]) for key, indices in pending.items()]
        self.stats.jobs_submitted += len(specs)
        self.stats.deduplicated += sum(
            len(indices) - 1 for indices in pending.values()
        )

        # 3. Execute the unique misses on the selected backend.  Results
        # stream: each one is stored (durably, for a RunStore) as it
        # arrives, so an interrupted serial run keeps its finished jobs.
        for key, result in self._execute_all(unique, batch_workers, backend):
            self.cache.store(result)
            self.stats.jobs_executed += 1
            self.stats.execution_time_s += result.wall_time_s
            self.stats.job_times_s.append(result.wall_time_s)
            for position, index in enumerate(pending[key]):
                if position == 0:
                    results[index] = result
                else:  # duplicate spec in the same batch: shared result
                    results[index] = result.with_cache_hit(
                        label=specs[index].label
                    )
                done += 1
                if self.progress is not None:
                    self.progress(done, total, results[index])

        self.cache.flush()
        self.stats.batch_time_s += time.perf_counter() - batch_start
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Backend dispatch
    # ------------------------------------------------------------------
    def _execute_all(
        self, unique: list[tuple[str, JobSpec]], workers: int,
        backend: str | Backend | None = None,
    ) -> Iterable[tuple[str, JobResult]]:
        """Yield each unique job's result as its backend finishes it.

        A generator end to end: serial and process backends stream, so
        the caller persists every result the moment it exists (the
        durable-store guarantee).  If a pooled backend dies mid-batch
        (sandboxes forbidding subprocesses, OOM-killed workers), the
        jobs *not yet yielded* re-run on the serial path — execute_spec
        is pure, so the retry is safe, and already-yielded results are
        not re-executed or double-counted.
        """
        if not unique:
            return
        chosen = backend if backend is not None else self.backend
        resolved = resolve_backend(chosen, workers)
        try:
            done: set[str] = set()
            try:
                for key, result in resolved.submit(unique):
                    done.add(key)
                    yield key, result
            except (OSError, concurrent.futures.BrokenExecutor):
                for key, spec in unique:
                    if key not in done:
                        yield key, execute_spec(spec, key)
        finally:
            if resolved is not chosen:  # engine-constructed: release it
                resolved.close()


# ----------------------------------------------------------------------
# The process-wide default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: ExecutionEngine | None = None


def default_engine() -> ExecutionEngine:
    """The process-wide shared engine (created on first use).

    Its in-memory cache is what makes repeated sweep invocations inside
    one process free; its worker count comes from ``TILT_REPRO_WORKERS``
    and its backend from ``TILT_REPRO_BACKEND`` (default: serial).
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExecutionEngine(workers=None)
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Drop the shared engine (mainly for tests)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None


def run_jobs(specs: Sequence[JobSpec], *,
             workers: int | None = None,
             backend: str | Backend | None = None,
             engine: ExecutionEngine | None = None) -> list[JobResult]:
    """Run *specs* on *engine* (default: the shared engine).

    ``workers`` and ``backend`` override the engine's pool size and
    execution backend for this call only, so callers can opt into
    parallelism (or a different dispatch strategy) without reconfiguring
    the engine.
    """
    chosen = engine if engine is not None else default_engine()
    return chosen.run(specs, workers=workers, backend=backend)
