"""The batch execution engine.

:class:`ExecutionEngine` takes a batch of :class:`~repro.exec.jobs.JobSpec`
objects and returns one :class:`~repro.exec.jobs.JobResult` per spec, in
input order.  Work proceeds in three steps:

1. **cache lookup** — specs whose content hash is already in the
   :class:`~repro.exec.cache.ResultCache` are served immediately;
2. **deduplication** — remaining specs with equal hashes collapse to one
   execution;
3. **execution** — unique specs run either inline (``workers=1``, the
   deterministic serial fallback) or across a
   :class:`concurrent.futures.ProcessPoolExecutor`.

Because compilation is seeded, the analytic noise model is closed-form
and stochastic sampling derives every shot's generator from ``(seed,
global shot index)``, pooled and serial execution produce bit-identical
results; the pool only changes wall-clock time.  Batch-level counters
(cache hits/misses, jobs executed, per-job timings) accumulate on the
engine for the acceptance checks and the progress report;
``engine.stats.reset()`` zeroes them between measurement phases.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.compiler.qccd_compiler import QccdCompiler
from repro.exceptions import ReproError
from repro.exec.cache import ResultCache
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import get_scenario
from repro.sim.ideal_sim import IdealSimulator
from repro.sim.qccd_sim import QccdSimulator
from repro.sim.tilt_sim import TiltSimulator

#: Environment variable holding the default worker count for new engines.
WORKERS_ENV_VAR = "TILT_REPRO_WORKERS"

#: Type of the optional progress callback: (jobs finished, total, result).
ProgressCallback = Callable[[int, int, JobResult], None]


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count: explicit value, env var, or 1 (serial)."""
    if workers is not None:
        value = int(workers)
    else:
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError as exc:
            raise ReproError(
                f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
            ) from exc
    if value == 0:
        value = os.cpu_count() or 1
    if value < 0:
        raise ReproError(f"workers must be >= 0, got {value}")
    return value


# ----------------------------------------------------------------------
# The worker function (module level so the process pool can pickle it)
# ----------------------------------------------------------------------
def execute_spec(spec: JobSpec, key: str | None = None) -> JobResult:
    """Run one job to completion in the current process.

    Specs with ``shots > 0`` additionally run the stochastic shot sampler
    (:mod:`repro.sim.stochastic`) on top of the analytic simulation; the
    sampled result lands on :attr:`JobResult.shot`.
    """
    key = key or spec_key(spec)
    noise = spec.noise or NoiseParameters.paper_defaults()
    scenario = get_scenario(spec.scenario)
    start = time.perf_counter()
    stats = None
    simulation = None
    shot = None
    # For sampled jobs each simulator's run_stochastic evaluates the
    # per-gate noise model once and derives the analytic result from that
    # same pass (shot.analytic), so nothing is computed twice.
    if spec.backend == "tilt":
        config = spec.config or CompilerConfig()
        compiled = LinQCompiler(spec.device, config).compile(spec.circuit)
        stats = compiled.stats
        if spec.simulate:
            simulator = TiltSimulator(spec.device, noise)
            if spec.shots:
                shot = simulator.run_stochastic(
                    compiled, shots=spec.shots, seed=spec.seed,
                    shot_offset=spec.shot_offset, scenario=scenario,
                )
                simulation = shot.analytic
            else:
                simulation = simulator.run(compiled, scenario=scenario)
    elif spec.backend == "ideal":
        simulator = IdealSimulator(spec.device, noise)
        if spec.shots:
            shot = simulator.run_stochastic(
                spec.circuit, shots=spec.shots, seed=spec.seed,
                shot_offset=spec.shot_offset, scenario=scenario,
            )
            simulation = shot.analytic
        else:
            simulation = simulator.run(spec.circuit, scenario=scenario)
    elif spec.backend == "qccd":
        program = QccdCompiler(spec.device).compile(spec.circuit)
        if spec.simulate:
            simulator = QccdSimulator(spec.device, noise)
            if spec.shots:
                shot = simulator.run_stochastic(
                    program, shots=spec.shots, seed=spec.seed,
                    shot_offset=spec.shot_offset,
                    circuit_name=spec.circuit.name, scenario=scenario,
                )
                simulation = shot.analytic
            else:
                simulation = simulator.run(
                    program, circuit_name=spec.circuit.name,
                    scenario=scenario,
                )
    else:  # pragma: no cover - validated by JobSpec.__post_init__
        raise ReproError(f"unknown backend {spec.backend!r}")
    wall_time = time.perf_counter() - start
    return JobResult(
        key=key,
        backend=spec.backend,
        label=spec.label,
        stats=stats,
        simulation=simulation,
        shot=shot,
        wall_time_s=wall_time,
    )


@dataclass
class EngineStats:
    """Cumulative counters over every batch an engine has run."""

    jobs_submitted: int = 0
    jobs_executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    execution_time_s: float = 0.0
    batch_time_s: float = 0.0
    job_times_s: list[float] = field(default_factory=list)

    @property
    def cache_misses(self) -> int:
        """Specs that had to be executed (submitted minus hits and dupes)."""
        return self.jobs_submitted - self.cache_hits - self.deduplicated

    def reset(self) -> None:
        """Zero every counter (the cache itself is untouched).

        Lets callers measure phases separately — e.g. a benchmark
        resetting between its cold and warm passes so each phase reports
        its own cache-hit/dedup numbers instead of cumulative totals.
        """
        self.jobs_submitted = 0
        self.jobs_executed = 0
        self.cache_hits = 0
        self.deduplicated = 0
        self.execution_time_s = 0.0
        self.batch_time_s = 0.0
        self.job_times_s.clear()

    def to_dict(self) -> dict[str, float]:
        """Plain-JSON snapshot of every counter plus derived rates.

        This is what gets dumped next to search results / CI artifacts so
        cache-hit-rate regressions are visible across runs.  The raw
        counters come first so two snapshots can be subtracted; the
        derived ``cache_misses`` / ``cache_hit_rate`` entries are
        recomputed from whichever counters the consumer ends up with.
        """
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_executed": self.jobs_executed,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                self.cache_hits / self.jobs_submitted
                if self.jobs_submitted else 0.0
            ),
            "execution_time_s": self.execution_time_s,
            "batch_time_s": self.batch_time_s,
        }

    def summary(self) -> str:
        return (
            f"{self.jobs_submitted} jobs: {self.jobs_executed} executed, "
            f"{self.cache_hits} cache hits, {self.deduplicated} deduplicated "
            f"({self.execution_time_s:.2f} s work in "
            f"{self.batch_time_s:.2f} s wall)"
        )


class ExecutionEngine:
    """Run batches of jobs with caching, deduplication and a process pool.

    Parameters
    ----------
    workers:
        Process-pool size.  ``1`` (the default) executes inline — fully
        serial and deterministic; ``0`` means "one per CPU"; ``None``
        defers to the ``TILT_REPRO_WORKERS`` environment variable.
    cache:
        The :class:`ResultCache` to consult and populate.  Pass an
        explicit instance to share results across engines, or ``None``
        for a private in-memory cache.
    cache_path:
        Convenience: build an on-disk cache at this path (ignored when
        *cache* is given).
    progress:
        Optional callback invoked after every finished job with
        ``(jobs done, total, result)``.
    """

    def __init__(self, *, workers: int | None = 1,
                 cache: ResultCache | None = None,
                 cache_path: str | os.PathLike[str] | None = None,
                 progress: ProgressCallback | None = None) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache if cache is not None else ResultCache(cache_path)
        self.progress = progress
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_one(self, spec: JobSpec) -> JobResult:
        """Run a single spec (through the cache)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[JobSpec], *,
            workers: int | None = None) -> list[JobResult]:
        """Run *specs*, returning one result per spec in input order.

        ``workers`` overrides the engine's configured pool size for this
        batch only (engine state is not mutated).
        """
        batch_start = time.perf_counter()
        batch_workers = (self.workers if workers is None
                         else resolve_workers(workers))
        keys = [spec_key(spec) for spec in specs]
        results: list[JobResult | None] = [None] * len(specs)
        done = 0
        total = len(specs)

        # 1. Serve cache hits; 2. collapse duplicate keys to one execution.
        pending: dict[str, list[int]] = {}
        for index, (spec, key) in enumerate(zip(specs, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached.with_cache_hit(label=spec.label)
                self.stats.cache_hits += 1
                done += 1
                if self.progress is not None:
                    self.progress(done, total, results[index])
            else:
                pending.setdefault(key, []).append(index)
        unique = [(key, specs[indices[0]]) for key, indices in pending.items()]
        self.stats.jobs_submitted += len(specs)
        self.stats.deduplicated += sum(
            len(indices) - 1 for indices in pending.values()
        )

        # 3. Execute the unique misses, serially or across the pool.
        for key, result in self._execute_all(unique, batch_workers):
            self.cache.store(result)
            self.stats.jobs_executed += 1
            self.stats.execution_time_s += result.wall_time_s
            self.stats.job_times_s.append(result.wall_time_s)
            for position, index in enumerate(pending[key]):
                if position == 0:
                    results[index] = result
                else:  # duplicate spec in the same batch: shared result
                    results[index] = result.with_cache_hit(
                        label=specs[index].label
                    )
                done += 1
                if self.progress is not None:
                    self.progress(done, total, results[index])

        self.cache.flush()
        self.stats.batch_time_s += time.perf_counter() - batch_start
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _execute_all(
        self, unique: list[tuple[str, JobSpec]], workers: int
    ) -> list[tuple[str, JobResult]]:
        if not unique:
            return []
        if workers <= 1 or len(unique) == 1:
            return [(key, execute_spec(spec, key)) for key, spec in unique]
        try:
            return self._execute_pooled(unique, workers)
        except (OSError, concurrent.futures.BrokenExecutor):
            # Environments that forbid or kill subprocesses (sandboxes,
            # OOM reaping) fall back to the deterministic serial path;
            # execute_spec is pure, so re-running every unique job is safe.
            return [(key, execute_spec(spec, key)) for key, spec in unique]

    def _execute_pooled(
        self, unique: list[tuple[str, JobSpec]], workers: int
    ) -> list[tuple[str, JobResult]]:
        max_workers = min(workers, len(unique))
        out: list[tuple[str, JobResult]] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = {
                pool.submit(execute_spec, spec, key): key
                for key, spec in unique
            }
            for future in concurrent.futures.as_completed(futures):
                out.append((futures[future], future.result()))
        # Keep submission order so serial and pooled runs look identical.
        order = {key: position for position, (key, _) in enumerate(unique)}
        out.sort(key=lambda item: order[item[0]])
        return out


# ----------------------------------------------------------------------
# The process-wide default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: ExecutionEngine | None = None


def default_engine() -> ExecutionEngine:
    """The process-wide shared engine (created on first use).

    Its in-memory cache is what makes repeated sweep invocations inside
    one process free; its worker count comes from ``TILT_REPRO_WORKERS``
    (default: serial).
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExecutionEngine(workers=None)
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Drop the shared engine (mainly for tests)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None


def run_jobs(specs: Sequence[JobSpec], *,
             workers: int | None = None,
             engine: ExecutionEngine | None = None) -> list[JobResult]:
    """Run *specs* on *engine* (default: the shared engine).

    ``workers`` overrides the engine's pool size for this call only, so
    callers can opt into parallelism without reconfiguring the engine.
    """
    chosen = engine if engine is not None else default_engine()
    return chosen.run(specs, workers=workers)
