"""The batch execution engine.

:class:`ExecutionEngine` takes a batch of :class:`~repro.exec.jobs.JobSpec`
objects and returns one :class:`~repro.exec.jobs.JobResult` per spec, in
input order.  Work proceeds in three steps:

1. **cache lookup** — specs whose content hash is already in the
   :class:`~repro.exec.cache.ResultCache` (or the durable
   :class:`~repro.exec.store.RunStore`) are served immediately;
2. **deduplication** — remaining specs with equal hashes collapse to one
   execution;
3. **execution** — unique specs are handed to a pluggable
   :class:`~repro.exec.backends.Backend`: serial in-process, a chunked
   work-stealing process pool, or an asyncio-driven local executor (the
   extension point for future remote backends).

Because compilation is seeded, the analytic noise model is closed-form
and stochastic sampling derives every shot's generator from ``(seed,
global shot index)``, every backend produces bit-identical results; they
differ only in wall-clock time.  Batch-level counters (cache hits/misses,
jobs executed, per-job timings) accumulate on the engine for the
acceptance checks and the progress report; ``engine.stats.reset()``
zeroes them between measurement phases.

Opt-in structured tracing (``ExecutionEngine(trace=...)`` or
``TILT_REPRO_TRACE=<path>``) records each batch as a span tree —
``engine.batch`` → ``engine.cache_lookup`` / ``engine.dispatch`` (with a
``job.done`` event and a worker-side ``job.execute`` span per executed
job) → ``engine.flush`` — plus a metrics snapshot, appended to a
torn-line-tolerant JSONL file that ``python -m repro.obs.report``
analyses offline.  See :mod:`repro.obs`.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Callable, Iterable, Sequence

from repro.exceptions import ReproError
from repro.exec.backends import (
    BACKEND_ENV_VAR,
    Backend,
    WORKERS_ENV_VAR,
    execute_spec,
    resolve_backend,
    resolve_workers,
)
from repro.exec.cache import ResultCache
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.exec.store import RunStore, collect_provenance
from repro.obs.history import RunLedger, new_record, resolve_ledger
from repro.obs.live import auto_attach
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullRecorder, TraceRecorder, activate, resolve_trace

__all__ = [
    "BACKEND_ENV_VAR",
    "EngineStats",
    "ExecutionEngine",
    "WORKERS_ENV_VAR",
    "default_engine",
    "execute_spec",
    "reset_default_engine",
    "resolve_backend",
    "resolve_workers",
    "run_jobs",
]

#: Type of the optional progress callback: (jobs finished, total, result).
ProgressCallback = Callable[[int, int, JobResult], None]


def _counter_property(metric: str, cast=int):
    """A read/write attribute view over one named registry counter.

    Keeps the historical ``engine.stats.cache_hits += 1`` surface while
    the values live in the :class:`~repro.obs.metrics.MetricsRegistry`
    (so traces and telemetry sinks see the same numbers the stats do).
    """

    def get(self: "EngineStats"):
        return cast(self.metrics.counter(metric).value)

    def set(self: "EngineStats", value) -> None:
        self.metrics.counter(metric).value = float(value)

    return property(get, set)


class EngineStats:
    """Cumulative counters over every batch an engine has run.

    A thin view over a :class:`~repro.obs.metrics.MetricsRegistry`: the
    public counter attributes (``jobs_submitted``, ``cache_hits``, …)
    read and write named registry instruments, so the engine's trace
    snapshots and its stats report from one source of truth.  Per-job
    wall times feed a *bounded* histogram (exact count/sum/min/max plus
    a fixed-size recent tail) instead of the old ever-growing list, so a
    long-lived engine's telemetry stays O(1) per batch.
    """

    #: Recent per-job wall times kept for the ``job_times_s`` view.
    JOB_TIME_TAIL = 256

    jobs_submitted = _counter_property("engine.jobs_submitted")
    jobs_executed = _counter_property("engine.jobs_executed")
    cache_hits = _counter_property("engine.cache_hits")
    deduplicated = _counter_property("engine.deduplicated")
    shots_sampled = _counter_property("engine.shots_sampled")
    execution_time_s = _counter_property("engine.execution_time_s", float)
    batch_time_s = _counter_property("engine.batch_time_s", float)

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self._job_times = self.metrics.histogram(
            "engine.job_time_s", tail_size=self.JOB_TIME_TAIL
        )

    @property
    def cache_misses(self) -> int:
        """Specs that had to be executed (submitted minus hits and dupes)."""
        return self.jobs_submitted - self.cache_hits - self.deduplicated

    @property
    def job_times_s(self) -> list[float]:
        """The most recent executed-job wall times (bounded snapshot).

        At most :data:`JOB_TIME_TAIL` entries, oldest first; the exact
        count/sum over *every* job survive in ``execution_time_s`` /
        ``jobs_executed`` and the ``engine.job_time_s`` histogram.
        """
        return self._job_times.tail

    def job_time_summary(self) -> dict[str, float]:
        """The job-time histogram as plain JSON (count/sum/moments +
        p50/p90/p99 over the recent tail) — what history records carry
        as their ``latency`` section."""
        return self._job_times.to_json()

    def record_job(self, result: JobResult) -> None:
        """Fold one executed job into the counters and timing histogram."""
        self.jobs_executed += 1
        self.execution_time_s += result.wall_time_s
        self._job_times.observe(result.wall_time_s)
        if result.shot is not None:
            self.metrics.counter("engine.shots_sampled").inc(
                result.shot.shots
            )

    def reset(self) -> None:
        """Zero every counter (the cache itself is untouched).

        Lets callers measure phases separately — e.g. a benchmark
        resetting between its cold and warm passes so each phase reports
        its own cache-hit/dedup numbers instead of cumulative totals.
        """
        self.metrics.reset()

    def to_dict(self) -> dict[str, float]:
        """Plain-JSON snapshot of every counter plus derived rates.

        This is what gets dumped next to search results / CI artifacts so
        cache-hit-rate regressions are visible across runs.  The raw
        counters come first so two snapshots can be subtracted; the
        derived ``cache_misses`` / ``cache_hit_rate`` entries are
        recomputed from whichever counters the consumer ends up with.
        """
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_executed": self.jobs_executed,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                self.cache_hits / self.jobs_submitted
                if self.jobs_submitted else 0.0
            ),
            "execution_time_s": self.execution_time_s,
            "batch_time_s": self.batch_time_s,
        }

    def summary(self) -> str:
        return (
            f"{self.jobs_submitted} jobs: {self.jobs_executed} executed, "
            f"{self.cache_hits} cache hits, {self.deduplicated} deduplicated "
            f"({self.execution_time_s:.2f} s work in "
            f"{self.batch_time_s:.2f} s wall)"
        )


class ExecutionEngine:
    """Run batches of jobs with caching, deduplication and a backend.

    Parameters
    ----------
    workers:
        Parallelism for backends the engine constructs itself.  ``1``
        (the default) selects the serial backend — fully deterministic;
        ``0`` means "one per CPU"; ``None`` defers to the
        ``TILT_REPRO_WORKERS`` environment variable.
    cache:
        The :class:`ResultCache` to consult and populate.  Pass an
        explicit instance to share results across engines, or ``None``
        for a private in-memory cache.
    cache_path:
        Convenience: build an on-disk cache at this path (ignored when
        *cache* is given).
    store:
        A :class:`~repro.exec.store.RunStore` (or a directory path for
        one) used *instead of* a :class:`ResultCache`: results persist
        per job in append-only segments, so an interrupted run keeps
        everything it finished and a later engine on the same store
        resumes from it.  Mutually exclusive with *cache* /
        *cache_path*.
    backend:
        Execution backend: a name (``"serial"``, ``"process"``,
        ``"async"``), a :class:`~repro.exec.backends.Backend` instance,
        or ``None`` — which consults ``TILT_REPRO_BACKEND`` and falls
        back to serial-or-pool by worker count.
    progress:
        Optional callback invoked after every finished job with
        ``(jobs done, total, result)``.
    trace:
        Opt-in structured tracing: a
        :class:`~repro.obs.trace.TraceRecorder`, a path for one, or
        ``None`` — which consults the ``TILT_REPRO_TRACE`` environment
        variable and leaves tracing off when it is unset.  Tracing only
        *observes*: results are bit-identical with it on or off.
    history:
        Opt-in cross-run telemetry: a
        :class:`~repro.obs.history.RunLedger`, a path for one, or
        ``None`` — which consults the ``TILT_REPRO_HISTORY`` environment
        variable.  When on, every batch appends one summarized record
        (metrics snapshot, backend config, cache ratios, latency
        quantiles, provenance, trace path) to the ledger that
        ``python -m repro.obs.history`` analyses across runs.
    """

    def __init__(self, *, workers: int | None = 1,
                 cache: ResultCache | None = None,
                 cache_path: str | os.PathLike[str] | None = None,
                 store: RunStore | str | os.PathLike[str] | None = None,
                 backend: str | Backend | None = None,
                 progress: ProgressCallback | None = None,
                 trace: TraceRecorder | NullRecorder | str
                        | os.PathLike[str] | None = None,
                 history: RunLedger | str
                          | os.PathLike[str] | None = None) -> None:
        self.workers = resolve_workers(workers)
        self.trace = resolve_trace(trace)
        # env-driven live monitoring (heartbeat JSONL / stderr line)
        # piggybacks on the trace stream; off unless asked for
        self.monitor = auto_attach(self.trace)
        self.history = resolve_ledger(history)
        self._history_provenance: dict[str, object] | None = None
        if store is not None:
            if cache is not None or cache_path is not None:
                raise ReproError(
                    "pass either store= or cache=/cache_path=, not both"
                )
            self.cache: ResultCache | RunStore = (
                store if isinstance(store, RunStore) else RunStore(store)
            )
        else:
            self.cache = cache if cache is not None else ResultCache(cache_path)
        self.backend = backend
        self.progress = progress
        self.stats = EngineStats()

    @property
    def store(self) -> RunStore | None:
        """The durable run store backing this engine, if any."""
        return self.cache if isinstance(self.cache, RunStore) else None

    def describe_backend(self, workers: int | None = None) -> str:
        """Identity string of the backend a batch would run on."""
        count = self.workers if workers is None else resolve_workers(workers)
        return resolve_backend(self.backend, count).describe()

    def describe_backend_config(self, workers: int | None = None
                                ) -> dict[str, object]:
        """Structured dispatch configuration of the batch backend.

        The dict form of :meth:`describe_backend` — worker counts and
        chunking parameters as real values, recorded in traces and
        :class:`~repro.exec.store.RunManifest` so the actual dispatch
        configuration of a run is machine-readable.
        """
        count = self.workers if workers is None else resolve_workers(workers)
        resolved = resolve_backend(self.backend, count)
        describe_config = getattr(resolved, "describe_config", None)
        if describe_config is None:  # a minimal third-party Backend
            return {"backend": getattr(resolved, "name", "unknown")}
        return describe_config()

    def append_history(self, kind: str, *, label: str | None = None,
                       metrics: dict[str, object] | None = None,
                       cache: dict[str, object] | None = None,
                       extra: dict[str, object] | None = None,
                       workers: int | None = None) -> str | None:
        """Append one summarized record to the run ledger (if one is on).

        Fills in what only the engine knows — backend configuration,
        latency quantiles from the job-time histogram, cached git/seed
        provenance and the trace path — so callers (the engine's own
        batch loop, :func:`repro.search.runner.run_search`) only supply
        their ``kind`` and driver-specific sections.  Returns the record
        id, or ``None`` when history recording is off (the near-free
        path: one attribute check).
        """
        if self.history is None:
            return None
        if self._history_provenance is None:
            # collected once per engine: git subprocess calls are not
            # per-batch money
            self._history_provenance = collect_provenance(
                trace=self.trace.path if self.trace.enabled else None,
            )
        record = new_record(
            kind,
            label=label,
            metrics=(metrics if metrics is not None
                     else self.stats.metrics.snapshot()),
            backend=self.describe_backend_config(workers),
            cache=cache,
            latency=self.stats.job_time_summary(),
            provenance=self._history_provenance,
            trace=self.trace.path if self.trace.enabled else None,
            extra=extra,
        )
        return self.history.append(record)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_one(self, spec: JobSpec) -> JobResult:
        """Run a single spec (through the cache)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[JobSpec], *,
            workers: int | None = None,
            backend: str | Backend | None = None) -> list[JobResult]:
        """Run *specs*, returning one result per spec in input order.

        ``workers`` and ``backend`` override the engine's configuration
        for this batch only (engine state is not mutated).  ``workers``
        applies when the backend is resolved *by name* (engine default,
        env var, or a name passed here); a :class:`Backend` *instance*
        owns its parallelism and is used exactly as constructed —
        ``workers`` does not reconfigure it.
        """
        trace = self.trace
        batch_start = time.perf_counter()
        batch_workers = (self.workers if workers is None
                         else resolve_workers(workers))
        with activate(trace), trace.span(
            "engine.batch", jobs=len(specs), workers=batch_workers,
        ) as batch_span:
            keys = [spec_key(spec) for spec in specs]
            results: list[JobResult | None] = [None] * len(specs)
            done = 0
            total = len(specs)

            # 1. Serve cache hits; 2. collapse duplicates to one execution.
            pending: dict[str, list[int]] = {}
            with trace.span("engine.cache_lookup") as lookup_span:
                for index, (spec, key) in enumerate(zip(specs, keys)):
                    cached = self.cache.get(key)
                    if cached is not None:
                        results[index] = cached.with_cache_hit(
                            label=spec.label
                        )
                        self.stats.cache_hits += 1
                        done += 1
                        if self.progress is not None:
                            self.progress(done, total, results[index])
                    else:
                        pending.setdefault(key, []).append(index)
                unique = [(key, specs[indices[0]])
                          for key, indices in pending.items()]
                batch_hits = done
                batch_dupes = sum(
                    len(indices) - 1 for indices in pending.values()
                )
                self.stats.jobs_submitted += len(specs)
                self.stats.deduplicated += batch_dupes
                lookup_span.add(cache_hits=batch_hits,
                                deduplicated=batch_dupes,
                                unique=len(unique))

            # 3. Execute the unique misses on the selected backend.
            # Results stream: each one is stored (durably, for a
            # RunStore) as it arrives, so an interrupted serial run
            # keeps its finished jobs.
            batch_executed = 0
            batch_exec_time = 0.0
            with trace.span("engine.dispatch", jobs=len(unique)):
                for key, result in self._execute_all(
                    unique, batch_workers, backend,
                ):
                    self.cache.store(result)
                    self.stats.record_job(result)
                    batch_executed += 1
                    batch_exec_time += result.wall_time_s
                    if trace.enabled:
                        trace.event(
                            "job.done", spec_key=key,
                            wall_time_s=result.wall_time_s,
                            backend=result.backend, label=result.label,
                        )
                    for position, index in enumerate(pending[key]):
                        if position == 0:
                            results[index] = result
                        else:  # duplicate spec in batch: shared result
                            results[index] = result.with_cache_hit(
                                label=specs[index].label
                            )
                        done += 1
                        if self.progress is not None:
                            self.progress(done, total, results[index])

            with trace.span("engine.flush"):
                self.cache.flush()
            self.stats.batch_time_s += time.perf_counter() - batch_start
            if trace.enabled:
                batch_span.add(cache_hits=batch_hits,
                               deduplicated=batch_dupes,
                               executed=batch_executed,
                               execution_time_s=batch_exec_time)
                trace.metrics(self.stats.metrics.snapshot())
                trace.merge_segments()
        if self.history is not None:
            jobs = len(specs)
            self.append_history(
                "engine.batch",
                cache={
                    "jobs": jobs,
                    "cache_hits": batch_hits,
                    "deduplicated": batch_dupes,
                    "executed": batch_executed,
                    "hit_ratio": batch_hits / jobs if jobs else 0.0,
                },
                extra={"execution_time_s": batch_exec_time,
                       "workers": batch_workers},
                workers=batch_workers,
            )
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Backend dispatch
    # ------------------------------------------------------------------
    def _execute_all(
        self, unique: list[tuple[str, JobSpec]], workers: int,
        backend: str | Backend | None = None,
    ) -> Iterable[tuple[str, JobResult]]:
        """Yield each unique job's result as its backend finishes it.

        A generator end to end: serial and process backends stream, so
        the caller persists every result the moment it exists (the
        durable-store guarantee).  If a pooled backend dies mid-batch
        (sandboxes forbidding subprocesses, OOM-killed workers), the
        jobs *not yet yielded* re-run on the serial path — execute_spec
        is pure, so the retry is safe, and already-yielded results are
        not re-executed or double-counted.
        """
        if not unique:
            return
        chosen = backend if backend is not None else self.backend
        resolved = resolve_backend(chosen, workers)
        try:
            done: set[str] = set()
            try:
                for key, result in resolved.submit(unique):
                    done.add(key)
                    yield key, result
            except (OSError, concurrent.futures.BrokenExecutor):
                for key, spec in unique:
                    if key not in done:
                        yield key, execute_spec(spec, key)
        finally:
            if resolved is not chosen:  # engine-constructed: release it
                resolved.close()


# ----------------------------------------------------------------------
# The process-wide default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: ExecutionEngine | None = None


def default_engine() -> ExecutionEngine:
    """The process-wide shared engine (created on first use).

    Its in-memory cache is what makes repeated sweep invocations inside
    one process free; its worker count comes from ``TILT_REPRO_WORKERS``
    and its backend from ``TILT_REPRO_BACKEND`` (default: serial).
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExecutionEngine(workers=None)
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Drop the shared engine (mainly for tests)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None


def run_jobs(specs: Sequence[JobSpec], *,
             workers: int | None = None,
             backend: str | Backend | None = None,
             engine: ExecutionEngine | None = None) -> list[JobResult]:
    """Run *specs* on *engine* (default: the shared engine).

    ``workers`` and ``backend`` override the engine's pool size and
    execution backend for this call only, so callers can opt into
    parallelism (or a different dispatch strategy) without reconfiguring
    the engine.
    """
    chosen = engine if engine is not None else default_engine()
    return chosen.run(specs, workers=workers, backend=backend)
