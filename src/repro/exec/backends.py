"""Pluggable execution backends for the engine.

The :class:`~repro.exec.engine.ExecutionEngine` decides *what* to run
(cache lookup, dedup, result accounting); a :class:`Backend` decides
*how* the surviving unique jobs execute.  Three implementations ship:

* :class:`SerialBackend` — in-process, one job at a time, streaming each
  result back as soon as it finishes (the deterministic reference path,
  and what ``workers=1`` engines use);
* :class:`ProcessPoolBackend` — a ``concurrent.futures`` process pool
  with *chunked, work-stealing dispatch*: sampled (``shots > 0``) jobs
  are submitted longest-first as individual tasks while cheap analytic
  jobs are grouped into chunks, all feeding one shared task queue that
  idle workers drain — so a long Monte-Carlo job never straggles behind
  a tail of short analytic ones, and per-task IPC overhead is amortised
  over each chunk;
* :class:`AsyncLocalBackend` — an asyncio event loop driving a local
  thread-pool executor.  Functionally it adds nothing over the pool
  today; structurally it is the extension point for future *remote*
  backends (HTTP job services, cluster schedulers): such a backend only
  has to turn ``submit`` into awaitable requests, and everything above
  the :class:`Backend` protocol — engine, sweeps, searches — is unchanged.

Because :func:`execute_spec` is a pure function of the spec (seeded
compilation, closed-form analytic noise, per-shot ``(seed, index)``
generators), every backend produces bit-identical results; they differ
only in wall-clock time (``tests/test_backends.py`` pins this).

Selection: ``ExecutionEngine(backend=...)`` takes a name (``"serial"``,
``"process"``, ``"async"``) or a :class:`Backend` instance; the
``TILT_REPRO_BACKEND`` environment variable supplies the default name
when none is given, mirroring ``TILT_REPRO_WORKERS`` for the pool size.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import time
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.compiler.qccd_compiler import QccdCompiler
from repro.exceptions import ReproError
from repro.exec.jobs import JobResult, JobSpec, spec_key
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import get_scenario
from repro.obs.profile import start_job_profile
from repro.obs.trace import activate, current_trace, worker_recorder
from repro.sim.ideal_sim import IdealSimulator
from repro.sim.qccd_sim import QccdSimulator
from repro.sim.tilt_sim import TiltSimulator

#: Environment variable holding the default worker count for new engines.
WORKERS_ENV_VAR = "TILT_REPRO_WORKERS"

#: Environment variable naming the default execution backend.
BACKEND_ENV_VAR = "TILT_REPRO_BACKEND"

#: Backend names :func:`resolve_backend` accepts.
BACKEND_NAMES = ("serial", "process", "async")

#: What backends consume: ``(content key, spec)`` pairs.
Job = tuple[str, JobSpec]


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count: explicit value, env var, or 1 (serial)."""
    if workers is not None:
        value = int(workers)
    else:
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError as exc:
            raise ReproError(
                f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
            ) from exc
    if value == 0:
        value = os.cpu_count() or 1
    if value < 0:
        raise ReproError(f"workers must be >= 0, got {value}")
    return value


# ----------------------------------------------------------------------
# The worker function (module level so the process pool can pickle it)
# ----------------------------------------------------------------------
def execute_spec(spec: JobSpec, key: str | None = None) -> JobResult:
    """Run one job to completion in the current process.

    Specs with ``shots > 0`` additionally run the stochastic shot sampler
    (:mod:`repro.sim.stochastic`) on top of the analytic simulation; the
    sampled result lands on :attr:`JobResult.shot`.
    """
    key = key or spec_key(spec)
    noise = spec.noise or NoiseParameters.paper_defaults()
    scenario = get_scenario(spec.scenario)
    # The active trace (engine-activated in-process, worker-recorder in
    # pool workers) gets one "job.execute" span per job, carrying the
    # spec key so the offline report can re-parent cross-process spans
    # under the batch that dispatched them.  A NullRecorder makes all of
    # this a no-op; tracing never touches the result.
    recorder = current_trace()
    span = recorder.span(
        "job.execute", spec_key=key, backend=spec.backend,
        shots=spec.shots, label=spec.label,
    )
    # Opt-in resource profiling (TILT_REPRO_PROFILE): deltas captured
    # around the work land as span attrs, so worker-side profiles ride
    # the same sidecar segments the spans already use.  Only started
    # when tracing is on — without a span there is nowhere to put it.
    profiler = start_job_profile() if recorder.enabled else None
    start = time.perf_counter()
    stats = None
    simulation = None
    shot = None
    # For sampled jobs each simulator's run_stochastic evaluates the
    # per-gate noise model once and derives the analytic result from that
    # same pass (shot.analytic), so nothing is computed twice.
    with span:
        if spec.backend == "tilt":
            config = spec.config or CompilerConfig()
            compiled = LinQCompiler(spec.device, config).compile(spec.circuit)
            stats = compiled.stats
            if spec.simulate:
                simulator = TiltSimulator(spec.device, noise)
                if spec.shots:
                    shot = simulator.run_stochastic(
                        compiled, shots=spec.shots, seed=spec.seed,
                        shot_offset=spec.shot_offset, scenario=scenario,
                    )
                    simulation = shot.analytic
                else:
                    simulation = simulator.run(compiled, scenario=scenario)
        elif spec.backend == "ideal":
            simulator = IdealSimulator(spec.device, noise)
            if spec.shots:
                shot = simulator.run_stochastic(
                    spec.circuit, shots=spec.shots, seed=spec.seed,
                    shot_offset=spec.shot_offset, scenario=scenario,
                )
                simulation = shot.analytic
            else:
                simulation = simulator.run(spec.circuit, scenario=scenario)
        elif spec.backend == "qccd":
            program = QccdCompiler(spec.device).compile(spec.circuit)
            if spec.simulate:
                simulator = QccdSimulator(spec.device, noise)
                if spec.shots:
                    shot = simulator.run_stochastic(
                        program, shots=spec.shots, seed=spec.seed,
                        shot_offset=spec.shot_offset,
                        circuit_name=spec.circuit.name, scenario=scenario,
                    )
                    simulation = shot.analytic
                else:
                    simulation = simulator.run(
                        program, circuit_name=spec.circuit.name,
                        scenario=scenario,
                    )
        else:  # pragma: no cover - validated by JobSpec.__post_init__
            raise ReproError(f"unknown backend {spec.backend!r}")
        if profiler is not None:
            span.add(profile=profiler.finish())
    wall_time = time.perf_counter() - start
    return JobResult(
        key=key,
        backend=spec.backend,
        label=spec.label,
        stats=stats,
        simulation=simulation,
        shot=shot,
        wall_time_s=wall_time,
    )


def _execute_chunk(
    chunk: Sequence[Job], trace_path: str | None = None,
) -> list[tuple[str, JobResult]]:
    """Pool task: run a chunk of jobs back to back in one worker.

    When the parent batch is traced it passes its trace *path*; the
    worker then activates a per-process sidecar recorder so its
    ``job.execute`` spans land in a private segment file the parent
    merges after the batch (a forked worker must never append to the
    parent's file directly).  Called in-process (``trace_path=None``)
    the ambient trace — whatever the engine activated — stays in effect.
    """
    if trace_path is None:
        return [(key, execute_spec(spec, key)) for key, spec in chunk]
    with activate(worker_recorder(trace_path)):
        return [(key, execute_spec(spec, key)) for key, spec in chunk]


# ----------------------------------------------------------------------
# The Backend protocol and its three local implementations
# ----------------------------------------------------------------------
@runtime_checkable
class Backend(Protocol):
    """How a batch of unique, cache-missed jobs gets executed.

    ``submit`` receives ``(content key, spec)`` pairs and returns (or
    yields) ``(key, result)`` pairs — one per job, every key exactly
    once, in any order (the engine places results by key).  ``close``
    releases whatever the backend holds open (pools, sessions); it must
    be idempotent.  ``describe`` is a short human-readable identity
    string recorded in run manifests; ``describe_config`` is its
    structured counterpart — a plain-JSON dict (backend name, worker
    count, chunking policy) that traces and
    :class:`~repro.exec.store.RunManifest` record for offline analysis.
    """

    name: str

    def submit(self, jobs: Sequence[Job]) -> Iterable[tuple[str, JobResult]]:
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        ...  # pragma: no cover - protocol

    def describe_config(self) -> dict:
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Run jobs one at a time in this process, streaming results.

    ``submit`` is a generator: each result is handed back (and therefore
    persisted by the engine) before the next job starts, so an
    interrupted serial run keeps everything it finished — the property
    the durable :class:`~repro.exec.store.RunStore` resume path builds
    on.  Accepts (and ignores) a ``workers`` argument so every backend
    can be constructed uniformly.
    """

    name = "serial"

    def __init__(self, workers: int | None = None) -> None:
        pass

    def submit(self, jobs: Sequence[Job]) -> Iterable[tuple[str, JobResult]]:
        with current_trace().span(
            "backend.submit", backend=self.name, jobs=len(jobs),
        ):
            for key, spec in jobs:
                yield key, execute_spec(spec, key)

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return "serial"

    def describe_config(self) -> dict:
        return {"backend": self.name, "workers": 1}


class ProcessPoolBackend:
    """Fan jobs out over a process pool with work-stealing chunks.

    Dispatch order is *longest-expected-first*: sampled jobs (``shots >
    0``) are each their own task, sorted by shot count descending, so
    the pool starts its most expensive work immediately; the remaining
    analytic jobs are grouped into ``chunk_size`` chunks (default:
    enough for ~4 chunks per worker) to amortise pickling/IPC overhead.
    Every task lands in the executor's shared queue, and free workers
    pull the next one — the work-stealing that keeps a straggler-free
    tail.  Results are yielded as chunks complete (see :meth:`submit`);
    the engine places them by key, so pooled and serial batches are
    indistinguishable downstream.

    A pool is created per ``submit`` call (job batches are coarse, so
    process start-up is amortised) and torn down with it; ``close`` is
    therefore a no-op kept for protocol symmetry.
    """

    name = "process"

    #: Light (analytic) jobs per worker-queue chunk-group, by default.
    CHUNK_GROUPS_PER_WORKER = 4

    def __init__(self, workers: int | None = None,
                 chunk_size: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ReproError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def plan_chunks(self, jobs: Sequence[Job]) -> list[list[Job]]:
        """The dispatch plan: heavy singletons first, then light chunks."""
        heavy = [job for job in jobs if job[1].shots]
        light = [job for job in jobs if not job[1].shots]
        heavy.sort(key=lambda job: job[1].shots, reverse=True)
        chunks: list[list[Job]] = [[job] for job in heavy]
        if light:
            size = self.chunk_size
            if size is None:
                groups = max(1, self.workers * self.CHUNK_GROUPS_PER_WORKER)
                size = max(1, -(-len(light) // groups))
            chunks.extend(
                list(light[start:start + size])
                for start in range(0, len(light), size)
            )
        return chunks

    def submit(self, jobs: Sequence[Job]) -> Iterable[tuple[str, JobResult]]:
        """Yield ``(key, result)`` pairs as chunks complete.

        Streaming (a generator, like :class:`SerialBackend`) rather than
        gathering: each finished chunk's results reach the engine — and
        therefore a durable :class:`~repro.exec.store.RunStore` — while
        the rest of the batch is still running, so a pooled run killed
        mid-batch keeps every chunk that completed.  Completion order is
        nondeterministic, but the engine places results by key, so batch
        *outputs* are bit-identical to serial regardless.
        """
        jobs = list(jobs)
        trace = current_trace()
        if self.workers <= 1 or len(jobs) <= 1:
            with trace.span(
                "backend.submit", backend=self.name, jobs=len(jobs),
                pooled=False,
            ):
                yield from _execute_chunk(jobs)
            return
        chunks = self.plan_chunks(jobs)
        # Workers are separate processes: hand them the trace *path* (or
        # None when tracing is off) so each activates its own sidecar
        # recorder instead of a fork-inherited handle to the parent file.
        trace_path = trace.path if trace.enabled else None
        with trace.span(
            "backend.submit", backend=self.name, jobs=len(jobs),
            chunks=len(chunks), workers=min(self.workers, len(chunks)),
        ):
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks))
            ) as pool:
                futures = [
                    pool.submit(_execute_chunk, chunk, trace_path)
                    for chunk in chunks
                ]
                for future in concurrent.futures.as_completed(futures):
                    yield from future.result()

    def close(self) -> None:
        pass

    def describe(self) -> str:
        chunk = self.chunk_size if self.chunk_size is not None else "auto"
        return f"process(workers={self.workers}, chunk_size={chunk})"

    def describe_config(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "chunk_groups_per_worker": self.CHUNK_GROUPS_PER_WORKER,
        }


class AsyncLocalBackend:
    """An asyncio event loop driving a local thread-pool executor.

    Each job becomes one ``run_in_executor`` task awaited with
    ``asyncio.gather``, so the loop structure is exactly what a remote
    backend needs — replace the executor call with an HTTP request (or
    any awaitable) and the rest of the stack is untouched.  Threads
    (not processes) back the executor: :func:`execute_spec` only touches
    per-call state, results need no pickling, and thread workers exist
    in every sandbox that forbids subprocesses.

    ``submit`` must not be called from inside a running event loop (it
    owns one via :func:`asyncio.run`); the engine only calls it from
    synchronous batch code.  Unlike the serial and process backends,
    results are gathered and returned together — durability with a
    :class:`~repro.exec.store.RunStore` is per *batch*, not per job.
    """

    name = "async"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    def submit(self, jobs: Sequence[Job]) -> Iterable[tuple[str, JobResult]]:
        jobs = list(jobs)
        if not jobs:
            return []
        # Executor threads share this process, so execute_spec sees the
        # ambient trace directly; its spans start parentless (each thread
        # has its own span stack) and the offline report re-parents them
        # by spec key.
        with current_trace().span(
            "backend.submit", backend=self.name, jobs=len(jobs),
            workers=min(self.workers, len(jobs)),
        ):
            return asyncio.run(self._drive(jobs))

    async def _drive(self, jobs: list[Job]) -> list[tuple[str, JobResult]]:
        loop = asyncio.get_running_loop()
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.workers, len(jobs))
        ) as pool:
            results = await asyncio.gather(*(
                loop.run_in_executor(pool, execute_spec, spec, key)
                for key, spec in jobs
            ))
        return [(key, result) for (key, _), result in zip(jobs, results)]

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return f"async-local(threads={self.workers})"

    def describe_config(self) -> dict:
        return {"backend": self.name, "executor": "thread",
                "workers": self.workers}


def resolve_backend(backend: "str | Backend | None",
                    workers: int | None = None) -> Backend:
    """Turn a backend selector into a :class:`Backend` instance.

    ``backend`` may be an instance (returned as-is — it keeps the
    parallelism it was constructed with, and ``workers`` is ignored), a
    name from :data:`BACKEND_NAMES` (constructed with *workers*), or
    ``None`` — in which case the ``TILT_REPRO_BACKEND`` environment
    variable is consulted and, when that is unset too, the worker count
    decides: ``workers <= 1`` runs serial, anything larger runs the
    process pool (the engine's historical behaviour, so existing
    callers see no change).
    """
    if backend is not None and not isinstance(backend, str):
        return backend
    name = backend
    if name is None:
        raw = os.environ.get(BACKEND_ENV_VAR, "").strip()
        name = raw or None
    count = resolve_workers(workers)
    if name is None:
        return SerialBackend() if count <= 1 else ProcessPoolBackend(count)
    normalised = name.strip().lower()
    if normalised == "serial":
        return SerialBackend()
    if normalised == "process":
        return ProcessPoolBackend(count)
    if normalised == "async":
        return AsyncLocalBackend(count)
    raise ReproError(
        f"unknown execution backend {name!r}; expected one of "
        f"{BACKEND_NAMES} (or a Backend instance)"
    )
