"""Result caching for the execution engine.

:class:`ResultCache` is a content-addressed store of :class:`~repro.exec.jobs.JobResult`
records keyed by :func:`~repro.exec.jobs.spec_key`.  It always keeps an
in-memory map; when constructed with a path it additionally persists every
stored result to a JSON file, so repeated invocations of an experiment
script skip all compilation and simulation work.

The engine's outputs are deterministic functions of the spec (compilation
is seeded and the noise model is analytic), so serving a cached result is
behaviour-preserving; only the recorded wall-clock compile timings reflect
the run that first produced the entry.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Iterator

from repro.exec.jobs import JobResult, result_from_json, result_to_json

#: Format marker so future layout changes can migrate or invalidate files.
#: Version 2: the cooling-boundary semantics fix (quanta_after_moves /
#: pause charging) changed results for cooling-enabled specs without
#: changing their keys, so caches written under version 1 are discarded
#: rather than served stale.
_CACHE_VERSION = 2


class ResultCache:
    """In-memory (and optionally on-disk) store of job results."""

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self._memory: dict[str, JobResult] = {}
        self._lock = threading.Lock()
        self._path = os.fspath(path) if path is not None else None
        self._dirty = False
        if self._path is not None and os.path.exists(self._path):
            self._load()

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory

    def __iter__(self) -> Iterator[str]:
        return iter(dict(self._memory))

    def get(self, key: str) -> JobResult | None:
        """The cached result for *key*, or ``None``."""
        return self._memory.get(key)

    def store(self, result: JobResult) -> None:
        """Insert *result* under its own key (cache-hit flag cleared)."""
        with self._lock:
            self._memory[result.key] = result
            self._dirty = True

    def store_many(self, results: Iterator[JobResult] | list[JobResult]) -> None:
        for result in results:
            self.store(result)

    def clear(self) -> None:
        """Drop every entry (memory only; call :meth:`flush` to persist)."""
        with self._lock:
            self._memory.clear()
            self._dirty = True

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> str | None:
        """The backing JSON file, or ``None`` for a memory-only cache."""
        return self._path

    def _load(self) -> None:
        assert self._path is not None
        try:
            with open(self._path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # a corrupt or unreadable cache is simply ignored
        if payload.get("version") != _CACHE_VERSION:
            return
        for entry in payload.get("results", []):
            try:
                result = result_from_json(entry)
            except (KeyError, TypeError):
                continue
            self._memory[result.key] = result
        self._dirty = False

    def flush(self) -> None:
        """Write the current contents to disk (no-op for memory caches)."""
        if self._path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            payload = {
                "version": _CACHE_VERSION,
                "results": [
                    result_to_json(result) for result in self._memory.values()
                ],
            }
            directory = os.path.dirname(os.path.abspath(self._path))
            os.makedirs(directory, exist_ok=True)
            # Atomic replace so a crashed writer never corrupts the cache.
            # The temp file (and its descriptor) must be reclaimed on
            # *any* failure — json.dump can also raise e.g. TypeError on
            # an unserialisable payload, which the old OSError-only
            # cleanup leaked.
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            replaced = False
            try:
                try:
                    handle = os.fdopen(fd, "w", encoding="utf-8")
                except Exception:
                    os.close(fd)
                    raise
                with handle:
                    json.dump(payload, handle)
                os.replace(temp_path, self._path)
                replaced = True
            finally:
                if not replaced:
                    try:
                        os.unlink(temp_path)
                    except OSError:
                        pass
            self._dirty = False
