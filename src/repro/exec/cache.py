"""Result caching for the execution engine.

:class:`ResultCache` is a content-addressed store of :class:`~repro.exec.jobs.JobResult`
records keyed by :func:`~repro.exec.jobs.spec_key`.  It always keeps an
in-memory map; when constructed with a path it additionally persists every
stored result to a JSON file, so repeated invocations of an experiment
script skip all compilation and simulation work.

The engine's outputs are deterministic functions of the spec (compilation
is seeded and the noise model is analytic), so serving a cached result is
behaviour-preserving; only the recorded wall-clock compile timings reflect
the run that first produced the entry.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from typing import Iterator

from repro.exec.jobs import JobResult, result_from_json, result_to_json

try:  # POSIX only; Windows falls back to merge-without-lock
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None  # type: ignore[assignment]


@contextlib.contextmanager
def _interprocess_lock(lock_path: str):
    """Advisory exclusive lock held for the duration of a flush.

    Best effort: where ``flock`` is unavailable (non-POSIX) or the lock
    file cannot be created, the flush proceeds unlocked — the merge
    still protects against interleaved (non-simultaneous) writers.
    """
    if fcntl is None:
        yield
        return
    try:
        handle = open(lock_path, "a")
    except OSError:
        yield
        return
    try:
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
        except OSError:
            pass
        yield
    finally:
        handle.close()  # releases the lock

#: Format marker so future layout changes can migrate or invalidate files.
#: Version 2: the cooling-boundary semantics fix (quanta_after_moves /
#: pause charging) changed results for cooling-enabled specs without
#: changing their keys, so caches written under version 1 are discarded
#: rather than served stale.
#: Version 3: the vectorized sampler's skip-sampling draw discipline
#: changed baseline (independent-site) shot results without changing
#: their keys, so version-2 sampled results are likewise discarded.
_CACHE_VERSION = 3


class ResultCache:
    """In-memory (and optionally on-disk) store of job results."""

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self._memory: dict[str, JobResult] = {}
        self._lock = threading.Lock()
        self._path = os.fspath(path) if path is not None else None
        self._dirty = False
        # Stat signature of the disk file as this cache last saw it;
        # lets flush skip the merge re-read while no other writer has
        # touched the file (the common single-writer case).
        self._disk_sig: tuple[int, int, int] | None = None
        if self._path is not None and os.path.exists(self._path):
            self._load()

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory

    def __iter__(self) -> Iterator[str]:
        return iter(dict(self._memory))

    def get(self, key: str) -> JobResult | None:
        """The cached result for *key*, or ``None``."""
        return self._memory.get(key)

    def store(self, result: JobResult) -> None:
        """Insert *result* under its own key (cache-hit flag cleared)."""
        with self._lock:
            self._memory[result.key] = result
            self._dirty = True

    def store_many(self, results: Iterator[JobResult] | list[JobResult]) -> None:
        for result in results:
            self.store(result)

    def clear(self) -> None:
        """Drop every entry, in memory *and* on disk.

        Flush merges with the disk file, so merely emptying memory could
        never empty a disk cache — the old entries would be merged right
        back.  A clear is an invalidation, so the backing file is
        removed here (under the same inter-process lock flush takes).
        """
        with self._lock:
            self._memory.clear()
            self._dirty = True
            if self._path is not None:
                with _interprocess_lock(self._path + ".lock"):
                    try:
                        os.unlink(self._path)
                    except OSError:
                        pass
                self._disk_sig = None

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> str | None:
        """The backing JSON file, or ``None`` for a memory-only cache."""
        return self._path

    def _stat_sig(self) -> tuple[int, int, int] | None:
        """(mtime_ns, size, inode) of the disk file, or ``None``."""
        assert self._path is not None
        try:
            stat = os.stat(self._path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _read_disk(self) -> dict[str, dict]:
        """Raw on-disk entries by key (empty for missing/corrupt files)."""
        assert self._path is not None
        try:
            with open(self._path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}  # a corrupt or unreadable cache is simply ignored
        if payload.get("version") != _CACHE_VERSION:
            return {}
        entries: dict[str, dict] = {}
        for entry in payload.get("results", []):
            key = entry.get("key") if isinstance(entry, dict) else None
            if key is not None:
                entries[key] = entry
        return entries

    def _load(self) -> None:
        self._disk_sig = self._stat_sig()
        for entry in self._read_disk().values():
            try:
                result = result_from_json(entry)
            except (KeyError, TypeError):
                continue
            self._memory[result.key] = result
        self._dirty = False

    def flush(self) -> None:
        """Merge the current contents into the disk file (memory-only: no-op).

        The write *merges* rather than overwrites: entries already on
        disk that this cache never loaded — e.g. landed there by another
        process flushing the same path since we last read it — are
        preserved, with this cache's in-memory results winning on key
        conflicts (equal keys imply equal results, so nothing is lost
        either way).  Two engines sharing one ``cache_path`` used to
        race last-writer-wins and silently drop each other's entries;
        the merge makes interleaved flushes additive, and an advisory
        inter-process file lock (``<path>.lock``, where the platform
        supports ``flock``) serialises *simultaneous* flushers so the
        read-merge-replace itself cannot race (:meth:`clear` deletes the
        backing file, so an explicit invalidation still wins over the
        merge).  Heavily concurrent writers should prefer
        :class:`~repro.exec.store.RunStore`, whose per-process segments
        need no locking at all.
        """
        if self._path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            directory = os.path.dirname(os.path.abspath(self._path))
            os.makedirs(directory, exist_ok=True)
            with _interprocess_lock(self._path + ".lock"):
                # Single-writer fast path: if the file is byte-for-byte
                # what this cache last read or wrote (stat signature
                # unchanged), its entries are a subset of memory and the
                # merge re-read — O(cache size) JSON parsing per batch —
                # is skipped.  Any foreign write changes the signature
                # and forces the full merge.
                sig = self._stat_sig()
                if sig is not None and sig != self._disk_sig:
                    merged = self._read_disk()
                else:
                    merged = {}
                for key, result in self._memory.items():
                    merged[key] = result_to_json(result)
                payload = {
                    "version": _CACHE_VERSION,
                    "results": list(merged.values()),
                }
                # Atomic replace so a crashed writer never corrupts the
                # cache.  The temp file (and its descriptor) must be
                # reclaimed on *any* failure — json.dump can also raise
                # e.g. TypeError on an unserialisable payload, which the
                # old OSError-only cleanup leaked.
                fd, temp_path = tempfile.mkstemp(dir=directory,
                                                 suffix=".tmp")
                replaced = False
                try:
                    try:
                        handle = os.fdopen(fd, "w", encoding="utf-8")
                    except Exception:
                        os.close(fd)
                        raise
                    with handle:
                        json.dump(payload, handle)
                    os.replace(temp_path, self._path)
                    replaced = True
                    self._disk_sig = self._stat_sig()
                finally:
                    if not replaced:
                        try:
                            os.unlink(temp_path)
                        except OSError:
                            pass
            self._dirty = False
