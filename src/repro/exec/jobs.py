"""Declarative job specifications and their results.

A :class:`JobSpec` captures everything that determines an experiment
outcome — circuit, device, compiler configuration, noise calibration and
which backend toolchain to run — so that two specs with equal content can
share one execution.  :func:`spec_key` derives the content hash used for
deduplication and caching; the ``label`` field is carried through to the
result but deliberately excluded from the hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.arch.device import DeviceSpec
from repro.circuits.circuit import Circuit
from repro.compiler.metrics import CompileStats
from repro.compiler.pipeline import CompilerConfig
from repro.exceptions import ReproError
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import get_scenario
from repro.sim.result import SimulationResult
from repro.sim.stochastic import (
    ShotResult,
    shot_result_from_json,
    shot_result_to_json,
)

#: Backends the engine knows how to drive.
BACKENDS = ("tilt", "ideal", "qccd")

#: The scenario name every spec runs under unless told otherwise.
BASELINE_SCENARIO = "baseline"


@dataclass(frozen=True)
class JobSpec:
    """One unit of experiment work: compile (where applicable) and simulate.

    Attributes
    ----------
    circuit:
        The logical workload.
    device:
        Target device model; its concrete type must match *backend*
        (:class:`~repro.arch.tilt.TiltDevice` for ``"tilt"``, etc.).
    backend:
        Toolchain selector: ``"tilt"`` (LinQ compile + TILT simulator),
        ``"ideal"`` (fully connected reference, no routing) or ``"qccd"``
        (QCCD compiler + simulator).
    config:
        LinQ compiler configuration (``"tilt"`` backend only).
    noise:
        Noise calibration; ``None`` means the paper defaults.
    simulate:
        When False, only compile (no simulation result).  Ignored by the
        ``"ideal"`` backend, which has no separate compile stage.
    shots:
        When positive, additionally run the stochastic (Monte-Carlo)
        noise simulation for this many shots; the sampled
        :class:`~repro.sim.stochastic.ShotResult` lands on
        :attr:`JobResult.shot`.  ``0`` (the default) keeps the job purely
        analytic.
    seed:
        Root seed of the stochastic run.  Every shot derives its own
        generator from ``(seed, global shot index)``, so results are
        bit-identical regardless of worker count or sharding.
    shot_offset:
        First global shot index of this job — sampling covers
        ``[shot_offset, shot_offset + shots)``.  Used by
        :func:`~repro.exec.sampling.shard_sampling_spec` to fan one
        logical run out across engine workers.
    scenario:
        Name of a registered correlated-noise scenario
        (:mod:`repro.noise.scenarios`).  ``"baseline"`` (the default) is
        the paper's independent-error model and is *not* hashed into the
        content key, so every pre-existing analytic and sampled cache key
        is unchanged; non-baseline names are hashed.
    label:
        Free-form tag carried through to :class:`JobResult` (not hashed).
    """

    circuit: Circuit
    device: DeviceSpec
    backend: str = "tilt"
    config: CompilerConfig | None = None
    noise: NoiseParameters | None = None
    simulate: bool = True
    shots: int = 0
    seed: int = 0
    shot_offset: int = 0
    scenario: str = BASELINE_SCENARIO
    label: str = ""

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        get_scenario(self.scenario)  # unknown names fail at spec creation
        if self.shots < 0:
            raise ReproError(f"shots must be >= 0, got {self.shots}")
        if self.seed < 0:
            raise ReproError(f"seed must be >= 0, got {self.seed}")
        if self.shot_offset < 0:
            raise ReproError(
                f"shot_offset must be >= 0, got {self.shot_offset}"
            )
        if self.shot_offset and not self.shots:
            raise ReproError("shot_offset is meaningless without shots")
        if self.shots and not self.simulate:
            raise ReproError(
                "shots > 0 needs simulate=True (sampling is simulation)"
            )
        if self.scenario != BASELINE_SCENARIO and not self.simulate:
            raise ReproError(
                "a non-baseline scenario needs simulate=True (scenarios "
                "only affect simulation, and hashing one into a "
                "compile-only key would just split the cache)"
            )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one executed (or cache-served) job.

    ``stats`` is ``None`` for the ``"ideal"`` backend (nothing is compiled)
    and ``simulation`` is ``None`` for compile-only jobs.  ``shot`` holds
    the sampled :class:`~repro.sim.stochastic.ShotResult` when the spec
    requested ``shots > 0``.  ``wall_time_s`` is the execution time
    measured inside the worker; cache hits keep the wall time of the run
    that originally produced the result.
    """

    key: str
    backend: str
    label: str
    stats: CompileStats | None
    simulation: SimulationResult | None
    wall_time_s: float
    shot: ShotResult | None = None
    cache_hit: bool = False

    def with_cache_hit(self, label: str | None = None) -> "JobResult":
        """A copy marked as served from cache (optionally relabelled)."""
        return dataclasses.replace(
            self, cache_hit=True,
            label=self.label if label is None else label,
        )


def _circuit_payload(circuit: Circuit) -> dict[str, Any]:
    return {
        "num_qubits": circuit.num_qubits,
        "name": circuit.name,
        "gates": [
            [gate.name, list(gate.qubits), list(gate.params)]
            for gate in circuit
        ],
    }


def _dataclass_payload(value: object | None) -> dict[str, Any] | None:
    if value is None:
        return None
    payload = dataclasses.asdict(value)
    payload["__type__"] = type(value).__name__
    return payload


def spec_key(spec: JobSpec) -> str:
    """Content hash of a spec: equal keys imply equal execution outcomes."""
    payload = {
        "backend": spec.backend,
        "circuit": _circuit_payload(spec.circuit),
        "device": _dataclass_payload(spec.device),
        "config": _dataclass_payload(spec.config),
        "noise": _dataclass_payload(spec.noise),
        "simulate": bool(spec.simulate),
    }
    if spec.shots:
        # Only sampled jobs hash these knobs, so every purely analytic
        # key (and any on-disk cache of one) is unchanged.
        payload["sampling"] = {
            "shots": spec.shots,
            "seed": spec.seed,
            "shot_offset": spec.shot_offset,
        }
    if spec.scenario != BASELINE_SCENARIO:
        # Same reasoning: baseline specs keep their pre-scenario keys
        # byte for byte, so no existing cache entry is invalidated.  The
        # *resolved* scenario is hashed (not just its name), so
        # re-registering a name with different knobs cannot serve stale
        # results from a persistent cache.
        payload["scenario"] = _dataclass_payload(get_scenario(spec.scenario))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# JSON (de)serialisation of results, for the on-disk cache
# ----------------------------------------------------------------------
def result_to_json(result: JobResult) -> dict[str, Any]:
    """Serialise a result to the plain-JSON form stored in the disk cache."""
    return {
        "key": result.key,
        "backend": result.backend,
        "stats": dataclasses.asdict(result.stats) if result.stats else None,
        "simulation": (
            dataclasses.asdict(result.simulation) if result.simulation else None
        ),
        "shot": shot_result_to_json(result.shot) if result.shot else None,
        "wall_time_s": result.wall_time_s,
    }


def result_from_json(payload: dict[str, Any]) -> JobResult:
    """Rebuild a :class:`JobResult` from its disk-cache JSON form."""
    stats = payload.get("stats")
    simulation = payload.get("simulation")
    shot = payload.get("shot")
    return JobResult(
        key=payload["key"],
        backend=payload["backend"],
        label="",
        stats=CompileStats(**stats) if stats else None,
        simulation=SimulationResult(**simulation) if simulation else None,
        shot=shot_result_from_json(shot) if shot else None,
        wall_time_s=float(payload.get("wall_time_s", 0.0)),
    )
