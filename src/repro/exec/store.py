"""Durable, resumable run persistence: JSONL segments + a run manifest.

:class:`RunStore` replaces the flush-the-whole-JSON persistence of
:class:`~repro.exec.cache.ResultCache` for long runs.  A store is a
directory::

    <root>/
        manifest.json            # RunManifest (optional, written by drivers)
        segments/
            <host>-<pid>-<nonce>.jsonl   # one append-only file per writer

Every writer process appends finished :class:`~repro.exec.jobs.JobResult`
records — one JSON object per line, flushed per record — to *its own*
segment file, so concurrent writers never contend on a shared file and
there is nothing to lock.  Loading merges every segment (keys are content
hashes, so two writers landing the same key have, by construction, equal
results and the merge is order-independent); a torn trailing line from a
killed writer is skipped, which is what makes an interrupted run safe to
resume: everything that finished is on disk, everything else simply is
not.

:class:`RunStore` exposes the same ``get`` / ``store`` / ``flush``
surface the engine uses on :class:`ResultCache`, so
``ExecutionEngine(store=...)`` is a drop-in persistence swap — with the
difference that ``store`` is durable *per job* (append + flush) rather
than per batch.

:class:`RunManifest` records what a run *intended* (every spec key, in
submission order) next to what the store *has* (completed keys), plus
the backend description, engine-stats snapshot and git/seed provenance —
enough for ``run_search(..., resume=manifest)`` to skip exactly the
completed jobs and for an auditor to know which code produced them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import socket
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproError
from repro.exec.jobs import JobResult, result_from_json, result_to_json
from repro.obs.trace import current_trace

#: Layout marker for segment records and manifests.
_STORE_VERSION = 1

#: File names inside a store root.
MANIFEST_NAME = "manifest.json"
SEGMENT_DIR = "segments"


class RunStore:
    """Append-only, merge-on-load result store rooted at a directory."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = os.path.abspath(os.fspath(root))
        self._segment_dir = os.path.join(self._root, SEGMENT_DIR)
        os.makedirs(self._segment_dir, exist_ok=True)
        self._memory: dict[str, JobResult] = {}
        self._lock = threading.Lock()
        writer_id = (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        self._segment_path = os.path.join(
            self._segment_dir, f"{writer_id}.jsonl"
        )
        self.reload()

    # ------------------------------------------------------------------
    # Mapping-style access (the engine's cache surface)
    # ------------------------------------------------------------------
    @property
    def root(self) -> str:
        """The store directory."""
        return self._root

    @property
    def segment_path(self) -> str:
        """This writer's own segment file (created on first ``store``)."""
        return self._segment_path

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory

    def __iter__(self) -> Iterator[str]:
        return iter(dict(self._memory))

    def keys(self) -> list[str]:
        """Every completed key currently visible to this store."""
        return list(self._memory)

    def get(self, key: str) -> JobResult | None:
        """The stored result for *key*, or ``None``."""
        return self._memory.get(key)

    def store(self, result: JobResult) -> None:
        """Record *result* durably (appended, flushed and closed per job).

        A key already present is not re-appended: keys are content
        hashes, so the existing record is equal by construction and the
        segment stays lean when a resumed run re-stores merged results.
        The segment file is opened and closed per record — job results
        are coarse (a full compile+simulate each), so the open/close
        cost is noise, and holding no handle means nothing leaks and
        temp-directory stores clean up on every platform.
        """
        with self._lock:
            if result.key in self._memory:
                return
            self._memory[result.key] = result
            with open(self._segment_path, "a", encoding="utf-8") as handle:
                json.dump(
                    {"version": _STORE_VERSION,
                     "record": result_to_json(result)},
                    handle, separators=(",", ":"),
                )
                handle.write("\n")

    def store_many(self, results) -> None:
        for result in results:
            self.store(result)

    def flush(self) -> None:
        """No-op: every record is flushed and closed when stored."""

    def close(self) -> None:
        """No-op (kept for interface symmetry): no handle is held open."""

    # ------------------------------------------------------------------
    # Lock-free merge on load
    # ------------------------------------------------------------------
    def reload(self) -> int:
        """Merge every segment on disk into memory; returns entry count.

        Lock-free with respect to other writers: segments are private to
        their writer, appends are line-delimited, and a torn trailing
        line (a writer killed mid-append) fails to parse and is skipped.
        Keys this store already holds are kept (the on-disk record for
        an equal key is an equal result).
        """
        start = time.perf_counter()
        segments = 0
        with self._lock:
            for name in sorted(os.listdir(self._segment_dir)):
                if not name.endswith(".jsonl"):
                    continue
                path = os.path.join(self._segment_dir, name)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        lines = handle.readlines()
                except OSError:
                    continue
                segments += 1
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        if entry.get("version") != _STORE_VERSION:
                            continue
                        result = result_from_json(entry["record"])
                    except (json.JSONDecodeError, KeyError, TypeError,
                            ValueError):
                        continue  # torn or foreign line: skip, don't fail
                    self._memory.setdefault(result.key, result)
            count = len(self._memory)
        trace = current_trace()
        if trace.enabled:
            trace.event(
                "store.reload", root=self._root, segments=segments,
                entries=count, dur_s=time.perf_counter() - start,
            )
        return count

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest_path(self) -> str:
        return os.path.join(self._root, MANIFEST_NAME)

    def write_manifest(self, manifest: "RunManifest") -> str:
        """Atomically write *manifest* into the store root.

        The temp file is reclaimed on any failure (an unserialisable
        manifest payload must not litter the store root).
        """
        path = self.manifest_path()
        temp = path + ".tmp"
        replaced = False
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(manifest.to_json(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            os.replace(temp, path)
            replaced = True
        finally:
            if not replaced:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
        return path

    def read_manifest(self) -> "RunManifest":
        return read_manifest(self._root)


@dataclass
class RunManifest:
    """What a run planned, what completed, and where it came from.

    Attributes
    ----------
    store_root:
        Directory of the :class:`RunStore` holding the results.
    spec_keys:
        Content key of every job the run planned, in submission order.
    completed_keys:
        Keys the store held when the manifest was written.
    backend:
        ``Backend.describe()`` of whatever executed the run.
    backend_config:
        ``Backend.describe_config()`` — the structured counterpart of
        ``backend`` (worker count, chunking policy), empty for legacy
        manifests.
    engine_stats:
        :meth:`EngineStats.to_dict` snapshot (or a delta) of the run.
    provenance:
        Git commit / dirty flag, python + platform versions and the
        run's root seed / shot budget — see :func:`collect_provenance`.
    status:
        ``"planned"`` → ``"running"`` → ``"complete"``; an interrupted
        run leaves ``"running"``, which is exactly the state resume
        targets.
    extra:
        Driver-specific context (e.g. the search strategy and knobs).
    """

    store_root: str
    spec_keys: list[str] = field(default_factory=list)
    completed_keys: list[str] = field(default_factory=list)
    backend: str = "serial"
    backend_config: dict[str, Any] = field(default_factory=dict)
    engine_stats: dict[str, float] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)
    status: str = "planned"
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def pending_keys(self) -> list[str]:
        """Planned keys with no stored result yet, in submission order."""
        done = set(self.completed_keys)
        return [key for key in self.spec_keys if key not in done]

    def summary(self) -> str:
        done = len(set(self.spec_keys) & set(self.completed_keys))
        commit = self.provenance.get("git_commit") or "unknown"
        return (
            f"run at {self.store_root}: {done}/{len(self.spec_keys)} jobs "
            f"complete ({self.status}), backend {self.backend}, "
            f"commit {str(commit)[:12]}"
        )

    def to_json(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["version"] = _STORE_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "RunManifest":
        return cls(
            store_root=str(payload["store_root"]),
            spec_keys=[str(key) for key in payload.get("spec_keys", [])],
            completed_keys=[
                str(key) for key in payload.get("completed_keys", [])
            ],
            backend=str(payload.get("backend", "serial")),
            backend_config=dict(payload.get("backend_config", {})),
            engine_stats=dict(payload.get("engine_stats", {})),
            provenance=dict(payload.get("provenance", {})),
            status=str(payload.get("status", "planned")),
            extra=dict(payload.get("extra", {})),
        )


def read_manifest(location: str | os.PathLike[str]) -> RunManifest:
    """Load a manifest from a store root or a direct manifest path."""
    path = os.fspath(location)
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"no run manifest at {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt run manifest at {path}: {exc}") from exc
    return RunManifest.from_json(payload)


def _git(*args: str) -> str | None:
    # Anchor at this package's directory, not the caller's cwd: the
    # provenance describes the *code* that produced the results, and a
    # driver script may run from anywhere.
    try:
        completed = subprocess.run(
            ("git", *args), capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip()


def collect_provenance(*, seed: int | None = None,
                       shots: int | None = None,
                       trace: str | None = None) -> dict[str, Any]:
    """Reproducibility context for a manifest.

    Git fields are ``None`` outside a repository (or without a ``git``
    binary) rather than an error, so stores work anywhere.  *trace* is
    the path of the run's trace file when tracing was on (``None``
    otherwise), so a manifest points at its own telemetry.
    """
    commit = _git("rev-parse", "HEAD")
    dirty = None
    if commit is not None:
        # tracked modifications only: an untracked RunStore directory
        # (or any other scratch file) must not flag a pristine checkout
        # as dirty in every CI manifest
        status = _git("status", "--porcelain", "--untracked-files=no")
        dirty = bool(status) if status is not None else None
    return {
        "git_commit": commit,
        "git_dirty": dirty,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "seed": seed,
        "shots": shots,
        "trace": trace,
    }
