"""Design-space exploration and autotuning (`repro.search`).

The paper's central results are design-space sweeps — MaxSwapLen tuning
(Fig. 7), tape/head geometry, TILT-vs-QCCD (Fig. 8) — explored one knob
at a time.  This package turns that into a first-class subsystem:

* :class:`SearchSpace` — a declarative cartesian space over device
  knobs (tape length, head width, trap capacity), compiler knobs
  (``max_swap_len``, mapper, scheduler options), noise knobs (cooling
  interval) and the correlated-noise scenario axis;
* :class:`GridStrategy`, :class:`RandomStrategy` and
  :class:`SuccessiveHalvingStrategy` — pluggable exploration policies,
  the last scoring candidates cheaply (analytic, or low shot counts)
  and promoting survivors to full-fidelity evaluation;
* :func:`run_search` — every evaluation routes through
  :class:`~repro.exec.ExecutionEngine`, so content-hash caching, dedup
  and process-pool fan-out apply, and results are bit-identical for any
  ``workers=`` split;
* :class:`SearchResult` — Pareto-front extraction over log10 success /
  execution time / transport work, per-knob sensitivity attribution and
  a JSON round trip for CI artifacts.

Quickstart::

    from repro import TiltDevice, search, workloads

    space = search.SearchSpace(
        circuit=workloads.qft_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        knobs=[search.config_knob("max_swap_len", [7, 6, 5, 4])],
    )
    result = search.run_search(space, search.GridStrategy())
    print(result.summary())
"""

from repro.search.result import (
    OBJECTIVES,
    KnobSensitivity,
    RungRecord,
    SearchPoint,
    SearchResult,
    pareto_front,
    search_result_from_json,
)
from repro.search.runner import run_search
from repro.search.space import (
    Candidate,
    Knob,
    SearchSpace,
    architecture_knob,
    config_knob,
    device_knob,
    noise_knob,
    scenario_knob,
)
from repro.search.strategies import (
    GridStrategy,
    RandomStrategy,
    SearchStrategy,
    SuccessiveHalvingStrategy,
)

__all__ = [
    "Candidate",
    "GridStrategy",
    "Knob",
    "KnobSensitivity",
    "OBJECTIVES",
    "RandomStrategy",
    "RungRecord",
    "SearchPoint",
    "SearchResult",
    "SearchSpace",
    "SearchStrategy",
    "SuccessiveHalvingStrategy",
    "architecture_knob",
    "config_knob",
    "device_knob",
    "noise_knob",
    "pareto_front",
    "run_search",
    "scenario_knob",
    "search_result_from_json",
]
