"""The search runner: strategies in, engine batches out.

:func:`run_search` is the only place a search touches the execution
engine.  Each strategy-requested evaluation round becomes *one* engine
batch (every candidate's jobs, shards included, submitted together), so

* identical points across rungs / strategies are content-hash cache hits,
* duplicate specs inside a round collapse to one execution, and
* ``workers > 1`` fans the whole round out over the process pool

with no strategy-side code.  Results are assembled in candidate order
from a batch the engine returns in submission order, and no wall-clock
timing lands on the points, so a search is bit-identical for any
``workers=`` split (pinned by ``tests/test_search.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ReproError
from repro.exec import ExecutionEngine, JobResult, run_jobs
from repro.exec.engine import default_engine
from repro.search.result import SearchPoint, SearchResult
from repro.search.space import Candidate, SearchSpace
from repro.search.strategies import SearchStrategy
from repro.sim.stochastic import merge_shot_results

#: EngineStats counters that accumulate (and therefore diff cleanly).
_COUNTER_KEYS = ("jobs_submitted", "jobs_executed", "cache_hits",
                 "deduplicated", "execution_time_s", "batch_time_s")


def _stats_delta(before: dict[str, float],
                 after: dict[str, float]) -> dict[str, float]:
    """What one search added to a (possibly shared) engine's counters."""
    delta = {key: after[key] - before[key] for key in _COUNTER_KEYS}
    submitted = delta["jobs_submitted"]
    delta["cache_misses"] = (
        submitted - delta["cache_hits"] - delta["deduplicated"]
    )
    delta["cache_hit_rate"] = (
        delta["cache_hits"] / submitted if submitted else 0.0
    )
    return delta


def _point_from_results(space: SearchSpace, candidate: Candidate,
                        shots: int, results: Sequence[JobResult],
                        ) -> SearchPoint:
    """Fold one candidate's finished jobs (1 or ``shards``) into a point."""
    first = results[0]
    simulation = first.simulation
    if simulation is None:
        raise ReproError(
            f"search evaluation {first.label or first.key} returned no "
            "simulation outcome"
        )
    if shots:
        merged = merge_shot_results(
            [result.shot for result in results if result.shot is not None]
        )
        scored = merged.to_simulation_result()
        success_rate = scored.success_rate
        log10_success = scored.log10_success_rate
    else:
        success_rate = simulation.success_rate
        log10_success = simulation.log10_success_rate
    return SearchPoint(
        candidate=tuple(candidate),
        assignments=space.labels(candidate),
        shots=shots,
        success_rate=success_rate,
        log10_success=log10_success,
        # time and transport are architectural estimates, identical for
        # the analytic and sampled evaluations of one candidate
        execution_time_s=simulation.execution_time_s,
        num_swaps=first.stats.num_swaps if first.stats else 0,
        num_moves=simulation.num_moves,
        num_jobs=len(results),
    )


def run_search(space: SearchSpace, strategy: SearchStrategy, *,
               engine: ExecutionEngine | None = None,
               workers: int | None = None) -> SearchResult:
    """Explore *space* with *strategy* through the execution engine.

    Parameters
    ----------
    space:
        The declarative design space (knobs, base configuration, shot
        budget).
    strategy:
        A :class:`~repro.search.strategies.SearchStrategy` — grid,
        random, successive halving, or anything implementing the
        protocol.
    engine, workers:
        Standard engine controls (see :func:`repro.exec.run_jobs`): an
        explicit engine shares its cache with other callers; ``workers``
        overrides the pool size for this search's batches only.

    Returns
    -------
    SearchResult
        Full-fidelity points in lattice order, rung history, the number
        of engine jobs this search submitted, and the engine-stats delta
        it caused (cache-hit accounting for CI artifacts).
    """
    chosen = engine if engine is not None else default_engine()
    before = chosen.stats.to_dict()
    submitted = 0

    def evaluate(candidates: Sequence[Candidate],
                 shots: int) -> list[SearchPoint]:
        nonlocal submitted
        specs = []
        chunks: list[tuple[Candidate, int]] = []
        for candidate in candidates:
            candidate_specs = space.evaluation_specs(candidate, shots)
            chunks.append((candidate, len(candidate_specs)))
            specs.extend(candidate_specs)
        submitted += len(specs)
        results = run_jobs(specs, workers=workers, engine=chosen)
        points: list[SearchPoint] = []
        offset = 0
        for candidate, count in chunks:
            points.append(_point_from_results(
                space, candidate, shots, results[offset:offset + count],
            ))
            offset += count
        return points

    points, rungs = strategy.run(space, evaluate)
    points = sorted(points, key=lambda point: point.candidate)
    return SearchResult(
        strategy=strategy.name,
        knobs=space.knob_labels(),
        points=points,
        rungs=rungs,
        num_jobs=submitted,
        engine_stats=_stats_delta(before, chosen.stats.to_dict()),
    )
