"""The search runner: strategies in, engine batches out.

:func:`run_search` is the only place a search touches the execution
engine.  Each strategy-requested evaluation round becomes *one* engine
batch (every candidate's jobs, shards included, submitted together), so

* identical points across rungs / strategies are content-hash cache hits,
* duplicate specs inside a round collapse to one execution, and
* ``workers > 1`` fans the whole round out over the process pool

with no strategy-side code.  Results are assembled in candidate order
from a batch the engine returns in submission order, and no wall-clock
timing lands on the points, so a search is bit-identical for any
``workers=`` split or ``exec_backend=`` choice (pinned by
``tests/test_search.py`` and ``tests/test_backends.py``).

Long searches run durably: ``run_search(..., store=<dir>)`` backs the
engine with a :class:`~repro.exec.store.RunStore` and keeps a
:class:`~repro.exec.store.RunManifest` up to date after every evaluation
round (spec keys, completed keys, backend description, engine stats,
git/seed provenance).  If the process dies mid-search, rerunning with
``resume=<manifest or store dir>`` rebuilds the engine on the same store
and every already-completed job is a durable cache hit — the engine
stats of the resumed run prove exactly how much was skipped.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.exceptions import ReproError
from repro.exec import ExecutionEngine, JobResult, run_jobs
from repro.exec.backends import Backend
from repro.exec.engine import default_engine
from repro.exec.jobs import spec_key
from repro.exec.store import (
    RunManifest,
    RunStore,
    collect_provenance,
    read_manifest,
)
from repro.search.result import SearchPoint, SearchResult
from repro.search.space import Candidate, SearchSpace
from repro.search.strategies import SearchStrategy
from repro.sim.stochastic import merge_shot_results

#: EngineStats counters that accumulate (and therefore diff cleanly).
_COUNTER_KEYS = ("jobs_submitted", "jobs_executed", "cache_hits",
                 "deduplicated", "execution_time_s", "batch_time_s")


def _stats_delta(before: dict[str, float],
                 after: dict[str, float]) -> dict[str, float]:
    """What one search added to a (possibly shared) engine's counters."""
    delta = {key: after[key] - before[key] for key in _COUNTER_KEYS}
    submitted = delta["jobs_submitted"]
    delta["cache_misses"] = (
        submitted - delta["cache_hits"] - delta["deduplicated"]
    )
    delta["cache_hit_rate"] = (
        delta["cache_hits"] / submitted if submitted else 0.0
    )
    return delta


def _point_from_results(space: SearchSpace, candidate: Candidate,
                        shots: int, results: Sequence[JobResult],
                        ) -> SearchPoint:
    """Fold one candidate's finished jobs (1 or ``shards``) into a point."""
    first = results[0]
    simulation = first.simulation
    if simulation is None:
        raise ReproError(
            f"search evaluation {first.label or first.key} returned no "
            "simulation outcome"
        )
    if shots:
        merged = merge_shot_results(
            [result.shot for result in results if result.shot is not None]
        )
        scored = merged.to_simulation_result()
        success_rate = scored.success_rate
        log10_success = scored.log10_success_rate
    else:
        success_rate = simulation.success_rate
        log10_success = simulation.log10_success_rate
    return SearchPoint(
        candidate=tuple(candidate),
        assignments=space.labels(candidate),
        shots=shots,
        success_rate=success_rate,
        log10_success=log10_success,
        # time and transport are architectural estimates, identical for
        # the analytic and sampled evaluations of one candidate
        execution_time_s=simulation.execution_time_s,
        num_swaps=first.stats.num_swaps if first.stats else 0,
        num_moves=simulation.num_moves,
        num_jobs=len(results),
    )


def run_search(space: SearchSpace, strategy: SearchStrategy, *,
               engine: ExecutionEngine | None = None,
               workers: int | None = None,
               exec_backend: str | Backend | None = None,
               store: RunStore | str | None = None,
               resume: RunManifest | str | None = None) -> SearchResult:
    """Explore *space* with *strategy* through the execution engine.

    Parameters
    ----------
    space:
        The declarative design space (knobs, base configuration, shot
        budget).
    strategy:
        A :class:`~repro.search.strategies.SearchStrategy` — grid,
        random, successive halving, or anything implementing the
        protocol.
    engine, workers, exec_backend:
        Standard engine controls (see :func:`repro.exec.run_jobs`): an
        explicit engine shares its cache with other callers; ``workers``
        and ``exec_backend`` override the pool size / execution backend
        for this search's batches only.
    store:
        A :class:`~repro.exec.store.RunStore` (or directory path) making
        the search durable: every finished job is appended immediately
        and a :class:`~repro.exec.store.RunManifest` is kept current in
        the store root after every evaluation round.  Mutually exclusive
        with ``engine``.
    resume:
        A :class:`~repro.exec.store.RunManifest` (or a store root /
        manifest path) of an earlier — possibly interrupted — run of
        this search.  The engine is rebuilt on that run's store, so
        completed jobs are served without re-execution; the resumed
        run's engine stats record exactly how many were skipped.

    Returns
    -------
    SearchResult
        Full-fidelity points in lattice order, rung history, the number
        of engine jobs this search submitted, the engine-stats delta it
        caused (cache-hit accounting for CI artifacts) and, for durable
        runs, the final :class:`RunManifest` on ``.manifest``.
    """
    if resume is not None:
        if isinstance(resume, RunManifest):
            # a bare manifest only knows its recorded absolute root; if
            # the store moved since, refuse rather than silently mkdir
            # an empty store at the stale path and re-run everything
            resume_root = resume.store_root
            if store is None and not os.path.isdir(resume_root):
                raise ReproError(
                    f"the manifest's recorded store root {resume_root!r} "
                    "does not exist — if the store was moved or "
                    "downloaded, resume with its current path "
                    "(resume=<store dir>) or pass store= explicitly"
                )
        else:
            # Resume the store the caller actually pointed at, not the
            # absolute root recorded inside the manifest: a store that
            # was moved or downloaded must not silently recreate an
            # empty directory at its old path and re-run everything.
            read_manifest(resume)  # validates a manifest is really there
            path = os.fspath(resume)
            resume_root = (path if os.path.isdir(path)
                           else os.path.dirname(os.path.abspath(path)))
        if store is None:
            store = resume_root
    run_store: RunStore | None = None
    if store is not None:
        if engine is not None:
            raise ReproError(
                "pass either engine= or store=/resume=, not both: a "
                "durable search owns its engine (built on the run store)"
            )
        run_store = store if isinstance(store, RunStore) else RunStore(store)
        # workers=None defers to TILT_REPRO_WORKERS (default serial), so
        # a durable search honours the env var exactly like the shared
        # default engine does; the per-batch workers= override still wins.
        chosen = ExecutionEngine(workers=None, store=run_store,
                                 backend=exec_backend)
    else:
        chosen = engine if engine is not None else default_engine()
    before = chosen.stats.to_dict()
    submitted = 0
    rounds = 0
    submitted_keys: list[str] = []
    trace = chosen.trace
    provenance = (
        collect_provenance(
            seed=space.seed, shots=space.shots,
            trace=trace.path if trace.enabled else None,
        )
        if run_store is not None else None
    )

    def write_manifest(status: str) -> RunManifest | None:
        if run_store is None:
            return None
        manifest = RunManifest(
            store_root=run_store.root,
            spec_keys=list(submitted_keys),
            completed_keys=run_store.keys(),
            backend=chosen.describe_backend(workers),
            backend_config=chosen.describe_backend_config(workers),
            engine_stats=_stats_delta(before, chosen.stats.to_dict()),
            provenance=provenance or {},
            status=status,
            extra={"strategy": strategy.name,
                   "knobs": {name: list(labels) for name, labels
                             in space.knob_labels().items()}},
        )
        run_store.write_manifest(manifest)
        return manifest

    def evaluate(candidates: Sequence[Candidate],
                 shots: int) -> list[SearchPoint]:
        nonlocal submitted, rounds
        specs = []
        chunks: list[tuple[Candidate, int]] = []
        for candidate in candidates:
            candidate_specs = space.evaluation_specs(candidate, shots)
            chunks.append((candidate, len(candidate_specs)))
            specs.extend(candidate_specs)
        submitted += len(specs)
        # Each strategy-requested round is one span (and one engine
        # batch): rung structure becomes directly visible in the trace.
        with trace.span(
            "search.round", round=rounds, strategy=strategy.name,
            candidates=len(candidates), jobs=len(specs), shots=shots,
        ):
            rounds += 1
            if run_store is not None:
                # Record the round's plan *before* executing it, so a run
                # killed mid-round leaves a manifest whose pending_keys
                # name exactly the unfinished work.
                submitted_keys.extend(spec_key(spec) for spec in specs)
                write_manifest("running")
            results = run_jobs(specs, workers=workers, backend=exec_backend,
                               engine=chosen)
            points: list[SearchPoint] = []
            offset = 0
            for candidate, count in chunks:
                points.append(_point_from_results(
                    space, candidate, shots, results[offset:offset + count],
                ))
                offset += count
            if run_store is not None:
                write_manifest("running")
        return points

    with trace.span(
        "search.run", strategy=strategy.name, shots=space.shots,
        knobs=len(space.knob_labels()), durable=run_store is not None,
    ) as search_span:
        points, rungs = strategy.run(space, evaluate)
        search_span.add(rounds=rounds)
    points = sorted(points, key=lambda point: point.candidate)
    result = SearchResult(
        strategy=strategy.name,
        knobs=space.knob_labels(),
        points=points,
        rungs=rungs,
        num_jobs=submitted,
        engine_stats=_stats_delta(before, chosen.stats.to_dict()),
        manifest=write_manifest("complete"),
    )
    # One cross-run history record per search (TILT_REPRO_HISTORY /
    # ExecutionEngine(history=)): the engine fills in backend config,
    # latency quantiles and provenance; we supply the search's shape.
    chosen.append_history(
        "search.run",
        label=strategy.name,
        metrics=result.engine_stats,
        extra={"strategy": strategy.name, "rounds": rounds,
               "jobs_submitted": submitted, "points": len(points),
               "shots": space.shots, "durable": run_store is not None},
        workers=workers,
    )
    return result
