"""Declarative design spaces over device, compiler and noise knobs.

A :class:`SearchSpace` is the cartesian lattice the paper's design-space
studies walk by hand: each :class:`Knob` names one tunable axis — a
compiler option (``max_swap_len``, ``mapper``), a device-geometry field
(tape length, head width, QCCD trap capacity), a noise-calibration field
(cooling interval) or a spec-level axis (noise scenario, whole
backend+device architectures) — and a candidate is one index per knob.
:meth:`SearchSpace.build_spec` lowers a candidate to the exact
:class:`~repro.exec.jobs.JobSpec` the ad-hoc sweeps in
:mod:`repro.core.sweep` would build (both go through
:func:`repro.core.sweep.point_spec`), so search points share cache keys
with every existing sweep point.

Candidates whose knob combination yields an impossible configuration
(e.g. a head wider than the tape) are *invalid* rather than an error:
strategies skip them, so a grid over tape length x head width simply
covers the feasible corner of the lattice.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.arch.device import DeviceSpec
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompilerConfig
from repro.core.sweep import point_spec
from repro.exceptions import ReproError
from repro.exec import JobSpec
from repro.exec.jobs import BASELINE_SCENARIO
from repro.exec.sampling import shard_sampling_spec
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import get_scenario

#: Where a knob's values are applied when a candidate is lowered to a spec.
KNOB_TARGETS = ("config", "device", "noise", "spec")

#: Spec-level fields a ``target="spec"`` knob may set.
SPEC_FIELDS = ("backend", "device", "scenario")

#: A candidate is one value index per knob, in the space's knob order.
Candidate = tuple[int, ...]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, DeviceSpec):
        return value.describe()
    return str(value)


@dataclass(frozen=True)
class Knob:
    """One axis of a search space.

    Attributes
    ----------
    name:
        Unique axis name, used in labels, results and sensitivity tables.
    target:
        Where the values apply: ``"config"`` (compiler knob, via
        :meth:`CompilerConfig.with_overrides`), ``"device"`` (device
        field, via :func:`dataclasses.replace`), ``"noise"`` (noise
        calibration field) or ``"spec"`` (spec-level field: ``backend``,
        ``device`` or ``scenario``).
    field:
        The field the values set.  ``None`` means each value is itself a
        mapping of several fields applied together (how
        :func:`architecture_knob` switches backend and device as one
        axis).
    values:
        The candidate settings, in sweep order.
    labels:
        Human-readable form of each value; auto-derived when omitted.
    """

    name: str
    target: str
    field: str | None
    values: tuple[object, ...]
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.target not in KNOB_TARGETS:
            raise ReproError(
                f"unknown knob target {self.target!r}; "
                f"expected one of {KNOB_TARGETS}"
            )
        if not self.values:
            raise ReproError(f"knob {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))
        if self.field is None:
            for value in self.values:
                if not isinstance(value, Mapping):
                    raise ReproError(
                        f"knob {self.name!r} has field=None, so every value "
                        f"must be a mapping of fields; got {value!r}"
                    )
        if not self.labels:
            object.__setattr__(
                self, "labels",
                tuple(_format_value(value) for value in self.values),
            )
        else:
            object.__setattr__(self, "labels", tuple(self.labels))
        if len(self.labels) != len(self.values):
            raise ReproError(
                f"knob {self.name!r}: {len(self.labels)} labels for "
                f"{len(self.values)} values"
            )

    def overrides(self, index: int) -> dict[str, object]:
        """The field->value mapping selected by one value index."""
        value = self.values[index]
        if self.field is None:
            return dict(value)  # type: ignore[arg-type]
        return {self.field: value}


# ----------------------------------------------------------------------
# Knob constructors (the declarative surface most callers use)
# ----------------------------------------------------------------------
def config_knob(field: str, values: Sequence[object],
                name: str | None = None) -> Knob:
    """A compiler knob: ``max_swap_len``, ``mapper``, ``alpha``, ..."""
    return Knob(name or field, "config", field, tuple(values))


def device_knob(field: str, values: Sequence[object],
                name: str | None = None) -> Knob:
    """A device-geometry knob: ``num_qubits``, ``head_size``,
    ``trap_capacity``, ..."""
    return Knob(name or field, "device", field, tuple(values))


def noise_knob(field: str, values: Sequence[object],
               name: str | None = None) -> Knob:
    """A noise-calibration knob: ``tilt_cooling_interval_moves``, ..."""
    return Knob(name or field, "noise", field, tuple(values))


def scenario_knob(names: Sequence[str], name: str = "scenario") -> Knob:
    """The correlated-noise scenario axis (PR-3 registry names)."""
    for scenario in names:
        get_scenario(scenario)  # unknown names fail at space construction
    return Knob(name, "spec", "scenario", tuple(names))


def architecture_knob(architectures: Mapping[str, tuple[str, DeviceSpec]],
                      name: str = "architecture") -> Knob:
    """A whole-architecture axis: label -> (backend, device) pairs.

    Switching backend and device together is what the TILT-vs-QCCD
    comparison (Fig. 8) needs — a plain ``device`` knob cannot change the
    toolchain that drives it.
    """
    values = tuple(
        {"backend": backend, "device": device}
        for backend, device in architectures.values()
    )
    return Knob(name, "spec", None, values, tuple(architectures))


@dataclass(frozen=True)
class SearchSpace:
    """A cartesian design space around one workload.

    Attributes
    ----------
    circuit:
        The logical workload every candidate runs.
    device:
        Base device; ``device``-target knobs replace fields on it and an
        :func:`architecture_knob` may substitute it wholesale.
    knobs:
        The axes of the space (order defines candidate index order).
    backend:
        Base toolchain (overridable by an architecture knob).
    config / noise:
        Base compiler configuration and noise calibration (``None`` means
        the usual defaults).
    scenario:
        Base correlated-noise scenario name.
    shots:
        Full-fidelity evaluation budget: ``0`` scores candidates with the
        exact analytic model only; ``> 0`` adds a stochastic sampling run
        of this many shots at full fidelity.
    seed:
        Root seed of sampled evaluations (every shot derives its own
        generator from ``(seed, global shot index)``, so results are
        bit-identical for any worker/shard split).
    shards:
        Engine jobs a full-fidelity *sampled* evaluation fans out into
        (via :func:`~repro.exec.sampling.shard_sampling_spec`); analytic
        evaluations are always a single job.
    """

    circuit: Circuit
    device: DeviceSpec
    knobs: tuple[Knob, ...]
    backend: str = "tilt"
    config: CompilerConfig | None = None
    noise: NoiseParameters | None = None
    scenario: str = BASELINE_SCENARIO
    shots: int = 0
    seed: int = 0
    shards: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "knobs", tuple(self.knobs))
        if not self.knobs:
            raise ReproError("a search space needs at least one knob")
        names = [knob.name for knob in self.knobs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate knob names in {names}")
        if self.shots < 0:
            raise ReproError(f"shots must be >= 0, got {self.shots}")
        if self.shards < 1:
            raise ReproError(f"shards must be >= 1, got {self.shards}")
        get_scenario(self.scenario)

    # ------------------------------------------------------------------
    # Lattice geometry
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of lattice points (valid or not)."""
        size = 1
        for knob in self.knobs:
            size *= len(knob.values)
        return size

    def candidates(self) -> Iterator[Candidate]:
        """Every lattice point, last knob varying fastest."""
        return itertools.product(
            *(range(len(knob.values)) for knob in self.knobs)
        )

    def knob_labels(self) -> dict[str, list[str]]:
        """Axis name -> value labels, in knob order (for results/JSON)."""
        return {knob.name: list(knob.labels) for knob in self.knobs}

    def assignments(self, candidate: Candidate) -> dict[str, object]:
        """Raw knob values selected by *candidate* (name -> value)."""
        self._check(candidate)
        return {
            knob.name: knob.values[index]
            for knob, index in zip(self.knobs, candidate)
        }

    def labels(self, candidate: Candidate) -> dict[str, str]:
        """Value labels selected by *candidate* (name -> label)."""
        self._check(candidate)
        return {
            knob.name: knob.labels[index]
            for knob, index in zip(self.knobs, candidate)
        }

    def describe(self, candidate: Candidate) -> str:
        """Human-readable ``name=label`` form of one candidate."""
        return ", ".join(
            f"{name}={label}" for name, label in self.labels(candidate).items()
        )

    def _check(self, candidate: Candidate) -> None:
        if len(candidate) != len(self.knobs):
            raise ReproError(
                f"candidate {candidate} has {len(candidate)} indices for "
                f"{len(self.knobs)} knobs"
            )
        for knob, index in zip(self.knobs, candidate):
            if not 0 <= index < len(knob.values):
                raise ReproError(
                    f"candidate index {index} out of range for knob "
                    f"{knob.name!r} ({len(knob.values)} values)"
                )

    # ------------------------------------------------------------------
    # Lowering candidates to engine jobs
    # ------------------------------------------------------------------
    def build_spec(self, candidate: Candidate, *,
                   shots: int | None = None) -> JobSpec:
        """Lower one candidate to the :class:`JobSpec` that evaluates it.

        ``shots`` overrides the space's full-fidelity budget (``0`` gives
        the cheap analytic job successive halving uses for early rungs).
        Raises the underlying :class:`~repro.exceptions.ReproError`
        subclass for infeasible knob combinations — use
        :meth:`is_valid` to probe.
        """
        self._check(candidate)
        overrides: dict[str, dict[str, object]] = {
            target: {} for target in KNOB_TARGETS
        }
        for knob, index in zip(self.knobs, candidate):
            overrides[knob.target].update(knob.overrides(index))
        spec_fields = overrides["spec"]
        for field in spec_fields:
            if field not in SPEC_FIELDS:
                raise ReproError(
                    f"spec-level knobs may only set {SPEC_FIELDS}; "
                    f"got {field!r}"
                )
        device = spec_fields.get("device", self.device)
        if overrides["device"]:
            replacements = dict(overrides["device"])
            if (isinstance(device, QccdDevice)
                    and "num_traps" not in replacements
                    and ("trap_capacity" in replacements
                         or "num_qubits" in replacements)):
                # re-derive the trap count like a fresh QccdDevice would;
                # carrying the base device's already-derived count over
                # would pin the sweep to the old geometry (or be invalid)
                replacements["num_traps"] = 0
            try:
                device = dataclasses.replace(device, **replacements)
            except TypeError as exc:
                # an architecture knob can put a device class under a
                # device knob whose field it does not have (head_size on
                # QccdDevice): that corner of the lattice is infeasible,
                # not a crash — map it onto the invalid-and-skipped path
                raise ReproError(
                    f"device knob does not apply to "
                    f"{type(device).__name__}: {exc}"
                ) from exc
        if self.circuit.num_qubits > device.num_qubits:
            raise ReproError(
                f"circuit {self.circuit.name!r} needs "
                f"{self.circuit.num_qubits} qubits but the candidate "
                f"device has {device.num_qubits}"
            )
        config = self.config or CompilerConfig()
        if overrides["config"]:
            config = config.with_overrides(**overrides["config"])
        noise = self.noise or NoiseParameters.paper_defaults()
        if overrides["noise"]:
            noise = noise.with_overrides(**overrides["noise"])
        backend = spec_fields.get("backend", self.backend)
        if (backend == "tilt" and config.max_swap_len is not None
                and isinstance(device, TiltDevice)
                and not 1 <= config.max_swap_len <= device.max_gate_span):
            # the canonical cross-knob interaction (MaxSwapLen x head
            # geometry): the router would reject this at compile time,
            # deep inside an engine worker — fail here instead so the
            # combination counts as invalid-and-skipped like any other
            raise ReproError(
                f"max_swap_len={config.max_swap_len} outside "
                f"[1, {device.max_gate_span}] for {device.describe()}"
            )
        budget = self.shots if shots is None else shots
        return point_spec(
            self.circuit, device, config, noise,
            backend=backend,
            scenario=spec_fields.get("scenario", self.scenario),
            shots=budget, seed=self.seed if budget else 0,
            label=self.describe(candidate),
        )

    def is_valid(self, candidate: Candidate) -> bool:
        """Whether the knob combination yields a feasible configuration."""
        try:
            self.build_spec(candidate)
        except ReproError:
            return False
        return True

    def valid_candidates(self) -> list[Candidate]:
        """The feasible lattice points, in lattice order."""
        return [c for c in self.candidates() if self.is_valid(c)]

    def evaluation_specs(self, candidate: Candidate,
                         shots: int | None = None) -> list[JobSpec]:
        """The engine jobs one evaluation of *candidate* submits.

        Analytic evaluations (``shots == 0``) are a single job; sampled
        evaluations fan out into :attr:`shards` contiguous shot-range
        jobs the engine can run concurrently.  Merging the shard results
        is bit-identical to a single-job run, so the shard count only
        changes the work breakdown, never the outcome.
        """
        spec = self.build_spec(candidate, shots=shots)
        if spec.shots and self.shards > 1:
            return shard_sampling_spec(spec, self.shards)
        return [spec]
