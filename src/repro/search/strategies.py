"""Pluggable search strategies: grid, seeded random, successive halving.

A strategy decides *which* candidates to evaluate and *at what budget*;
the runner (:func:`repro.search.runner.run_search`) owns *how* — every
evaluation compiles to engine jobs, so caching, dedup and process-pool
fan-out apply to any strategy for free.  Strategies talk to the runner
through a single callback::

    evaluate(candidates, shots) -> list[SearchPoint]

which scores the given candidates at the given shot budget (``0`` =
exact analytic model) and returns one point per candidate, in order.
Candidate selection never depends on evaluation timing, so a fixed-seed
strategy issues the same jobs — and produces bit-identical results — for
any ``workers=`` split.

To add a strategy, subclass :class:`SearchStrategy`, implement
:meth:`~SearchStrategy.run` returning ``(final_points, rung_records)``
where the final points are full-fidelity evaluations, and give it a
``name`` (it tags results and reports).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Protocol, Sequence

from repro.exceptions import ReproError
from repro.search.result import RungRecord, SearchPoint
from repro.search.space import Candidate, SearchSpace

#: The runner-provided scoring callback.
EvaluateFn = Callable[[Sequence[Candidate], int], "list[SearchPoint]"]


class SearchStrategy(Protocol):
    """The strategy interface (structural: any object with these works)."""

    name: str

    def run(self, space: SearchSpace, evaluate: EvaluateFn,
            ) -> tuple[list[SearchPoint], list[RungRecord]]:
        """Explore *space*, returning full-fidelity points + rung history."""
        ...  # pragma: no cover - protocol definition


def _valid_lattice(space: SearchSpace) -> list[Candidate]:
    candidates = space.valid_candidates()
    if not candidates:
        raise ReproError("search space has no valid candidates")
    return candidates


class GridStrategy:
    """Exhaustive search: every valid candidate at full fidelity."""

    name = "grid"

    def run(self, space: SearchSpace, evaluate: EvaluateFn,
            ) -> tuple[list[SearchPoint], list[RungRecord]]:
        candidates = _valid_lattice(space)
        points = evaluate(candidates, space.shots)
        record = RungRecord(shots=space.shots,
                            num_candidates=len(candidates),
                            promoted=len(candidates))
        return points, [record]


class RandomStrategy:
    """Seeded uniform sampling of the lattice (without replacement).

    ``num_samples`` caps the evaluations; when the space is smaller the
    strategy degenerates to a grid.  Selection uses its own
    ``random.Random(seed)`` stream and finishes before any evaluation
    starts, so a fixed seed fixes the candidate set regardless of worker
    count or shard split.
    """

    name = "random"

    def __init__(self, num_samples: int, seed: int = 0) -> None:
        if num_samples < 1:
            raise ReproError(f"num_samples must be >= 1, got {num_samples}")
        self.num_samples = num_samples
        self.seed = seed

    def run(self, space: SearchSpace, evaluate: EvaluateFn,
            ) -> tuple[list[SearchPoint], list[RungRecord]]:
        valid = _valid_lattice(space)
        if self.num_samples >= len(valid):
            chosen = valid
        else:
            rng = random.Random(self.seed)
            chosen = sorted(rng.sample(valid, self.num_samples))
        points = evaluate(chosen, space.shots)
        record = RungRecord(shots=space.shots, num_candidates=len(chosen),
                            promoted=len(chosen))
        return points, [record]


class SuccessiveHalvingStrategy:
    """Early stopping: score everyone cheaply, promote survivors.

    Rung ``r`` evaluates the surviving candidates at ``rungs[r]`` shots
    (``0`` = the exact analytic model — one cheap engine job per
    candidate) and keeps the top ``ceil(n / eta)`` by log10 success for
    the next rung; the last rung always runs at the space's full
    fidelity.  With a sampled space (``shots > 0``, ``shards > 1``) a
    full-fidelity evaluation costs ``shards`` engine jobs, so pruning
    before the last rung issues measurably fewer jobs than an exhaustive
    grid while still scoring every survivor with exactly the grid's
    specs (same content hashes, bit-identical values).

    ``rungs`` defaults to ``(0, shots)`` — analytic triage, then full
    sampling.  For an analytic-only space (``shots == 0``) there is
    nothing cheaper than full fidelity, so the default single rung
    degenerates to a grid.
    """

    name = "successive_halving"

    def __init__(self, eta: int = 2, rungs: Sequence[int] | None = None,
                 min_survivors: int = 2) -> None:
        if eta < 2:
            raise ReproError(f"eta must be >= 2, got {eta}")
        if min_survivors < 1:
            raise ReproError(
                f"min_survivors must be >= 1, got {min_survivors}"
            )
        self.eta = eta
        self.rungs = tuple(rungs) if rungs is not None else None
        self.min_survivors = min_survivors

    def _budgets(self, space: SearchSpace) -> tuple[int, ...]:
        if self.rungs is None:
            return (0, space.shots) if space.shots else (0,)
        budgets = self.rungs
        if any(b < 0 for b in budgets):
            raise ReproError(f"rung budgets must be >= 0: {budgets}")
        if list(budgets) != sorted(set(budgets)):
            raise ReproError(
                f"rung budgets must be strictly increasing: {budgets}"
            )
        if budgets[-1] != space.shots:
            raise ReproError(
                f"the last rung must run at full fidelity "
                f"(shots={space.shots}), got {budgets[-1]}"
            )
        return budgets

    def run(self, space: SearchSpace, evaluate: EvaluateFn,
            ) -> tuple[list[SearchPoint], list[RungRecord]]:
        budgets = self._budgets(space)
        candidates = _valid_lattice(space)
        records: list[RungRecord] = []
        for rung, budget in enumerate(budgets):
            points = evaluate(candidates, budget)
            if rung + 1 == len(budgets):
                records.append(RungRecord(
                    shots=budget, num_candidates=len(candidates),
                    promoted=len(candidates),
                ))
                return points, records
            keep = max(self.min_survivors,
                       math.ceil(len(candidates) / self.eta))
            keep = min(keep, len(candidates))
            # sort is stable, so score ties keep lattice order; survivors
            # are re-sorted into lattice order for deterministic batches
            ranked = sorted(points, key=lambda p: p.score, reverse=True)
            survivors = sorted(point.candidate for point in ranked[:keep])
            records.append(RungRecord(
                shots=budget, num_candidates=len(candidates), promoted=keep,
            ))
            candidates = survivors
        raise ReproError("successive halving needs at least one rung")
