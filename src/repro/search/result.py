"""Search outcomes: evaluated points, Pareto fronts, sensitivity, JSON.

Every evaluated candidate becomes a :class:`SearchPoint` carrying the
three objectives the paper's design studies trade off — log10 success
rate (maximize), estimated execution time (minimize) and transport work,
i.e. SWAPs plus tape moves / ion shuttles (minimize).  A
:class:`SearchResult` holds the full-fidelity points of one strategy run
plus the per-rung history and engine-job accounting, and derives the
multi-objective views: :meth:`SearchResult.pareto_front` (non-dominated
points), :meth:`SearchResult.best` (highest-success front member) and
:meth:`SearchResult.sensitivity` (per-knob marginal attribution).

Everything round-trips through plain JSON (:meth:`SearchResult.to_json`
/ :func:`search_result_from_json`) so CI can archive a search next to
its benchmark artifacts; no wall-clock timings live on the points, which
is what makes serial and pooled searches byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.exec.store import RunManifest

#: The objectives of every search, in reporting order.  ``log10_success``
#: is maximized; the other two are minimized.
OBJECTIVES = ("log10_success", "execution_time_s", "transport_ops")


@dataclass(frozen=True)
class SearchPoint:
    """One evaluated candidate.

    ``shots`` records the fidelity of the evaluation that produced the
    scores (``0`` = exact analytic model); ``num_jobs`` is how many
    engine specs the evaluation submitted (shards included).
    """

    candidate: tuple[int, ...]
    assignments: dict[str, str]
    shots: int
    success_rate: float
    log10_success: float
    execution_time_s: float
    num_swaps: int
    num_moves: int
    num_jobs: int = 1

    @property
    def transport_ops(self) -> int:
        """SWAP gates plus tape moves / ion shuttles — the routing cost."""
        return self.num_swaps + self.num_moves

    @property
    def score(self) -> float:
        """The scalar promotion score (the paper's headline metric)."""
        return self.log10_success

    def dominates(self, other: "SearchPoint") -> bool:
        """Pareto dominance: no worse on every objective, better on one."""
        no_worse = (
            self.log10_success >= other.log10_success
            and self.execution_time_s <= other.execution_time_s
            and self.transport_ops <= other.transport_ops
        )
        better = (
            self.log10_success > other.log10_success
            or self.execution_time_s < other.execution_time_s
            or self.transport_ops < other.transport_ops
        )
        return no_worse and better

    def summary(self) -> str:
        labels = ", ".join(f"{k}={v}" for k, v in self.assignments.items())
        return (
            f"{labels}: log10={self.log10_success:.4f} "
            f"t_exec={self.execution_time_s:.4f}s "
            f"transport={self.transport_ops}"
        )


@dataclass(frozen=True)
class RungRecord:
    """One rung of a strategy run: budget, population, survivors."""

    shots: int
    num_candidates: int
    promoted: int


@dataclass(frozen=True)
class KnobSensitivity:
    """Marginal attribution of one knob.

    ``per_value`` maps each value label to the mean log10 success of the
    full-fidelity points using it; ``range_decades`` is the spread of
    those marginal means — how many decades of success the knob moves on
    its own, averaged over the rest of the space.
    """

    knob: str
    range_decades: float
    per_value: dict[str, float]


def pareto_front(points: list[SearchPoint]) -> list[SearchPoint]:
    """The non-dominated subset of *points*, in input order."""
    return [
        point for point in points
        if not any(other.dominates(point) for other in points)
    ]


@dataclass
class SearchResult:
    """Outcome of one strategy run over one search space.

    ``manifest`` is only set for durable runs
    (``run_search(..., store=)``); it mirrors the ``manifest.json``
    written into the store root and is excluded from equality (two runs
    of the same search are equal even when stored in different places).
    """

    strategy: str
    knobs: dict[str, list[str]]
    points: list[SearchPoint]
    rungs: list[RungRecord] = field(default_factory=list)
    num_jobs: int = 0
    engine_stats: dict[str, float] | None = None
    manifest: RunManifest | None = field(
        default=None, compare=False, repr=False,
    )

    # ------------------------------------------------------------------
    # Multi-objective views
    # ------------------------------------------------------------------
    def pareto_front(self) -> list[SearchPoint]:
        """Non-dominated full-fidelity points (success vs time vs work)."""
        return pareto_front(self.points)

    def best(self) -> SearchPoint:
        """The highest-success Pareto point (ties: first in point order)."""
        front = self.pareto_front()
        if not front:
            raise ReproError("search produced no evaluated points")
        return max(front, key=lambda point: point.score)

    def sensitivity(self) -> list[KnobSensitivity]:
        """Per-knob marginal means of log10 success over the final points.

        Knobs with a single value (or a single surviving value among the
        evaluated points) report a zero range.  Points with a non-finite
        score are excluded from the means; a value whose every point is
        non-finite is reported as ``-inf``.
        """
        rows: list[KnobSensitivity] = []
        for position, (name, labels) in enumerate(self.knobs.items()):
            per_value: dict[str, float] = {}
            for index, label in enumerate(labels):
                scores = [
                    point.score for point in self.points
                    if point.candidate[position] == index
                    and math.isfinite(point.score)
                ]
                evaluated = any(
                    point.candidate[position] == index for point in self.points
                )
                if scores:
                    per_value[label] = sum(scores) / len(scores)
                elif evaluated:
                    per_value[label] = float("-inf")
            finite = [v for v in per_value.values() if math.isfinite(v)]
            spread = (max(finite) - min(finite)) if len(finite) > 1 else 0.0
            rows.append(KnobSensitivity(
                knob=name, range_decades=spread, per_value=per_value,
            ))
        return rows

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """Plain-JSON form (the CI artifact next to ``bench-small.json``)."""
        front_keys = {point.candidate for point in self.pareto_front()}
        return {
            "strategy": self.strategy,
            "knobs": {name: list(labels) for name, labels in self.knobs.items()},
            "objectives": list(OBJECTIVES),
            "num_jobs": self.num_jobs,
            "points": [
                {
                    "candidate": list(point.candidate),
                    "assignments": dict(point.assignments),
                    "shots": point.shots,
                    "success_rate": point.success_rate,
                    "log10_success": point.log10_success,
                    "execution_time_s": point.execution_time_s,
                    "num_swaps": point.num_swaps,
                    "num_moves": point.num_moves,
                    "num_jobs": point.num_jobs,
                    "pareto": point.candidate in front_keys,
                }
                for point in self.points
            ],
            "rungs": [
                {
                    "shots": rung.shots,
                    "num_candidates": rung.num_candidates,
                    "promoted": rung.promoted,
                }
                for rung in self.rungs
            ],
            "sensitivity": {
                row.knob: {
                    "range_decades": row.range_decades,
                    "per_value": dict(row.per_value),
                }
                for row in self.sensitivity()
            },
            "engine_stats": self.engine_stats,
        }

    def summary(self) -> str:
        front = self.pareto_front()
        best = self.best()
        return (
            f"{self.strategy}: {len(self.points)} candidates evaluated "
            f"({self.num_jobs} engine jobs), {len(front)} on the Pareto "
            f"front; best {best.summary()}"
        )


def search_result_from_json(payload: Mapping[str, Any]) -> SearchResult:
    """Rebuild a :class:`SearchResult` from :meth:`SearchResult.to_json`."""
    points = [
        SearchPoint(
            candidate=tuple(entry["candidate"]),
            assignments=dict(entry["assignments"]),
            shots=int(entry["shots"]),
            success_rate=float(entry["success_rate"]),
            log10_success=float(entry["log10_success"]),
            execution_time_s=float(entry["execution_time_s"]),
            num_swaps=int(entry["num_swaps"]),
            num_moves=int(entry["num_moves"]),
            num_jobs=int(entry.get("num_jobs", 1)),
        )
        for entry in payload["points"]
    ]
    rungs = [
        RungRecord(
            shots=int(entry["shots"]),
            num_candidates=int(entry["num_candidates"]),
            promoted=int(entry["promoted"]),
        )
        for entry in payload.get("rungs", [])
    ]
    stats = payload.get("engine_stats")
    return SearchResult(
        strategy=str(payload["strategy"]),
        knobs={name: list(labels)
               for name, labels in payload["knobs"].items()},
        points=points,
        rungs=rungs,
        num_jobs=int(payload.get("num_jobs", 0)),
        engine_stats=dict(stats) if stats is not None else None,
    )
