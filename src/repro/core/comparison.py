"""Architecture comparison (Figure 8 and the headline speed-ups).

Runs the same workload through four configurations — TILT with head sizes 16
and 32, the fully connected Ideal-TI reference, and the QCCD baseline — and
collects their success rates so the "TILT outperforms QCCD by up to 4.35x
and 1.95x on average" style numbers can be recomputed.

The per-architecture jobs are declarative :class:`~repro.exec.JobSpec`
objects executed by the :mod:`repro.exec` engine, so one comparison's TILT
compiles, the ideal reference and every QCCD trap-capacity candidate run
concurrently when ``workers`` > 1, and repeated comparisons are served from
the result cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobResult, JobSpec, run_jobs
from repro.exec.backends import Backend
from repro.exec.jobs import BASELINE_SCENARIO
from repro.noise.parameters import NoiseParameters
from repro.sim.result import SimulationResult


@dataclass
class ArchitectureComparison:
    """Per-architecture results for one workload."""

    circuit_name: str
    results: dict[str, SimulationResult] = field(default_factory=dict)

    def success_rate(self, architecture: str) -> float:
        return self.results[architecture].success_rate

    def log10_success_rate(self, architecture: str) -> float:
        return self.results[architecture].log10_success_rate

    def ratio(self, architecture_a: str, architecture_b: str) -> float:
        """Success-rate ratio a / b, computed in log space."""
        return self.results[architecture_a].success_ratio_over(
            self.results[architecture_b]
        )

    def architectures(self) -> list[str]:
        return list(self.results)

    def summary(self) -> str:
        lines = [f"workload {self.circuit_name}:"]
        lines.extend(f"  {result.summary()}" for result in self.results.values())
        return "\n".join(lines)


def comparison_specs(
    circuit: Circuit,
    *,
    num_qubits: int | None = None,
    head_sizes: tuple[int, ...] = (16, 32),
    qccd_trap_capacities: tuple[int, ...] = (17, 25, 33),
    compiler_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
) -> list[JobSpec]:
    """The engine jobs behind one :func:`compare_architectures` call.

    TILT jobs are labelled ``"TILT head <n>"``, the ideal reference
    ``"Ideal TI"`` and each QCCD candidate ``"QCCD cap <c>"``;
    :func:`comparison_from_results` relies on those labels.  ``scenario``
    runs every architecture under a registered correlated-noise scenario
    (:mod:`repro.noise.scenarios`).
    """
    width = num_qubits or circuit.num_qubits
    params = noise_params or NoiseParameters.paper_defaults()
    specs: list[JobSpec] = []

    for head_size in head_sizes:
        device = TiltDevice(num_qubits=width, head_size=min(head_size, width))
        specs.append(JobSpec(
            circuit=circuit, device=device, backend="tilt",
            config=compiler_config, noise=params, scenario=scenario,
            label=f"TILT head {device.head_size}",
        ))

    specs.append(JobSpec(
        circuit=circuit, device=IdealTrappedIonDevice(num_qubits=width),
        backend="ideal", noise=params, scenario=scenario, label="Ideal TI",
    ))

    capacities = [c for c in qccd_trap_capacities if c < width]
    if not capacities:
        # The workload is narrower than every trap: a single trap suffices
        # and QCCD degenerates to the fully connected case.
        device = QccdDevice(num_qubits=width, trap_capacity=width, num_traps=1)
        specs.append(JobSpec(
            circuit=circuit, device=device, backend="qccd", noise=params,
            scenario=scenario, label=f"QCCD cap {width}",
        ))
    else:
        for capacity in capacities:
            device = QccdDevice(num_qubits=width, trap_capacity=capacity)
            specs.append(JobSpec(
                circuit=circuit, device=device, backend="qccd", noise=params,
                scenario=scenario, label=f"QCCD cap {capacity}",
            ))
    return specs


def comparison_from_results(
    circuit_name: str, results: list[JobResult],
) -> ArchitectureComparison:
    """Assemble a comparison from the finished :func:`comparison_specs` jobs.

    The paper compares against the *best* reported QCCD configuration in
    the 15-35 ions/trap range, so the highest-fidelity QCCD candidate is
    kept under the single ``"QCCD"`` key.
    """
    comparison = ArchitectureComparison(circuit_name)
    best_qccd: SimulationResult | None = None
    for result in results:
        simulation = result.simulation
        if simulation is None:
            continue
        if result.label.startswith("QCCD"):
            if (best_qccd is None
                    or simulation.log10_success_rate
                    > best_qccd.log10_success_rate):
                best_qccd = simulation
        else:
            comparison.results[result.label] = simulation
    if best_qccd is not None:
        comparison.results["QCCD"] = best_qccd
    return comparison


def compare_architectures(
    circuit: Circuit,
    *,
    num_qubits: int | None = None,
    head_sizes: tuple[int, ...] = (16, 32),
    qccd_trap_capacities: tuple[int, ...] = (17, 25, 33),
    compiler_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
    workers: int | None = None,
    exec_backend: str | Backend | None = None,
    engine: ExecutionEngine | None = None,
) -> ArchitectureComparison:
    """Run *circuit* on TILT (each head size), Ideal TI and QCCD.

    Parameters
    ----------
    circuit:
        The logical workload.
    num_qubits:
        Chain length / total ion count for every device (defaults to the
        circuit width).
    head_sizes:
        TILT head sizes to evaluate (the paper uses 16 and 32).
    qccd_trap_capacities:
        Candidate ions-per-trap values for the QCCD baseline.  The paper
        compares against the *best* reported QCCD configuration in the
        15-35 ions/trap range, so the highest-fidelity capacity is kept.
    scenario:
        Registered correlated-noise scenario every architecture runs
        under (default: the paper's independent-error baseline).
    workers, exec_backend, engine:
        Execution-engine controls (see :mod:`repro.exec`).
        ``exec_backend`` picks the execution backend for the batch
        (``exec_`` prefix: the spec-level ``backend`` field already
        names the toolchain under comparison).
    """
    specs = comparison_specs(
        circuit,
        num_qubits=num_qubits,
        head_sizes=head_sizes,
        qccd_trap_capacities=qccd_trap_capacities,
        compiler_config=compiler_config,
        noise_params=noise_params,
        scenario=scenario,
    )
    results = run_jobs(specs, workers=workers, backend=exec_backend,
                       engine=engine)
    return comparison_from_results(circuit.name, results)


def _smallest_head_tilt_label(comparison: ArchitectureComparison) -> str:
    """The TILT entry with the smallest head size in one comparison."""
    tilt_labels = [
        name for name in comparison.architectures() if name.startswith("TILT")
    ]
    if not tilt_labels:
        raise KeyError("comparison contains no TILT result")
    return min(tilt_labels, key=lambda name: int(name.rsplit(" ", 1)[-1]))


def tilt_vs_qccd_ratios(
    comparisons: list[ArchitectureComparison],
    *,
    tilt_label: str | None = None,
) -> dict[str, float]:
    """Headline statistics: per-workload and aggregate TILT/QCCD ratios.

    ``tilt_label`` defaults to the smallest-head TILT configuration present
    in each comparison (head 16 at paper scale).  Returns a dict with one
    entry per workload plus ``"max"`` and ``"geometric_mean"`` aggregate
    keys — the reproduction of the paper's "up to 4.35x and 1.95x on
    average" claim.
    """
    ratios: dict[str, float] = {}
    logs = []
    for comparison in comparisons:
        label = tilt_label or _smallest_head_tilt_label(comparison)
        ratio = comparison.ratio(label, "QCCD")
        ratios[comparison.circuit_name] = ratio
        logs.append(math.log(ratio) if ratio > 0 else float("-inf"))
    if ratios:
        ratios["max"] = max(v for k, v in ratios.items())
        ratios["geometric_mean"] = math.exp(sum(logs) / len(logs))
    return ratios
