"""Parameter sweeps (Figure 7 and the ablation studies).

The central sweep is over ``MaxSwapLen``: restricting the span of inserted
SWAPs below the maximum executable span costs a few extra SWAPs but gives
the tape-movement scheduler more freedom, and somewhere in between lies the
success-rate sweet spot (Figure 7).  :func:`find_best_max_swap_len` automates
the paper's "iterate the LinQ procedure to find the best choice" loop.

Every sweep routes through the :mod:`repro.exec` engine: the per-point
compile+simulate jobs are declarative :class:`~repro.exec.JobSpec` objects,
so points are deduplicated, cached across invocations, and optionally fanned
out over a process pool (``workers`` > 1).  ``workers=1`` — the default —
is a fully serial, deterministic path producing bit-identical results.
``exec_backend=`` selects the execution backend for a sweep's batches
(``"serial"`` / ``"process"`` / ``"async"`` or a
:class:`~repro.exec.backends.Backend` instance; the ``exec_`` prefix
keeps it distinct from the *toolchain* ``backend`` field on a spec) —
every backend yields bit-identical points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.device import DeviceSpec
from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobResult, JobSpec, run_jobs
from repro.exec.backends import Backend
from repro.exec.jobs import BASELINE_SCENARIO
from repro.exceptions import ReproError
from repro.noise.parameters import NoiseParameters


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured outcomes.

    ``value`` is the numeric parameter setting; ``label`` is the
    human-readable form (for categorical sweeps such as the mapper
    ablation, ``label`` carries the actual category name and ``value`` is
    just the ordinal position).
    """

    parameter: str
    value: float
    num_swaps: int
    num_opposing_swaps: int
    num_moves: int
    move_distance_um: float
    success_rate: float
    log10_success_rate: float
    execution_time_s: float
    label: str = ""


def point_spec(circuit: Circuit, device: DeviceSpec,
               config: CompilerConfig | None, params: NoiseParameters,
               *, backend: str = "tilt", scenario: str = BASELINE_SCENARIO,
               shots: int = 0, seed: int = 0, simulate: bool = True,
               label: str = "") -> JobSpec:
    """The engine job for one evaluated point of a sweep or search.

    This is the single place that turns "one configuration" into a
    :class:`JobSpec`: every sweep in this module and every
    :mod:`repro.search` candidate goes through it, so they produce
    byte-identical specs (hence shared cache keys) for equal
    configurations.  The compiler configuration only applies to the
    ``"tilt"`` backend; it is dropped for the others so a QCCD/ideal
    point never splits the cache on an unused knob.
    """
    return JobSpec(circuit=circuit, device=device, backend=backend,
                   config=config if backend == "tilt" else None,
                   noise=params, simulate=simulate, shots=shots, seed=seed,
                   scenario=scenario, label=label)


def sweep_job(circuit: Circuit, device: TiltDevice, config: CompilerConfig,
              params: NoiseParameters, label: str = "",
              scenario: str = BASELINE_SCENARIO) -> JobSpec:
    """The engine job for one sweep point (compile + simulate on TILT)."""
    return point_spec(circuit, device, config, params, scenario=scenario,
                      label=label)


def override_sweep_specs(circuit: Circuit, device: TiltDevice,
                         base_config: CompilerConfig,
                         params: NoiseParameters, field: str,
                         values: Sequence[object],
                         labels: Sequence[str] | None = None,
                         scenario: str = BASELINE_SCENARIO) -> list[JobSpec]:
    """One spec per *field* override — the shared sweep-point builder.

    Every sweep in this module is "the same job at each value of one
    compiler knob"; this helper builds that spec list in one place
    (labels default to ``field=value``).
    """
    if labels is None:
        labels = [f"{field}={value:g}" if isinstance(value, (int, float))
                  else f"{field}={value}" for value in values]
    return [
        sweep_job(circuit, device,
                  base_config.with_overrides(**{field: value}), params,
                  label=label, scenario=scenario)
        for value, label in zip(values, labels)
    ]


def point_from_result(result: JobResult, parameter: str, value: float,
                      label: str = "") -> SweepPoint:
    """Convert one finished engine job into a :class:`SweepPoint`."""
    stats = result.stats
    simulation = result.simulation
    if stats is None or simulation is None:
        raise ReproError(
            f"sweep job {result.label or result.key} returned no "
            "compile/simulation outcome"
        )
    return SweepPoint(
        parameter=parameter,
        value=value,
        num_swaps=stats.num_swaps,
        num_opposing_swaps=stats.num_opposing_swaps,
        num_moves=stats.num_moves,
        move_distance_um=stats.move_distance_um,
        success_rate=simulation.success_rate,
        log10_success_rate=simulation.log10_success_rate,
        execution_time_s=simulation.execution_time_s,
        label=label or f"{parameter}={value:g}",
    )


def _run_sweep(specs: list[JobSpec], parameter: str, values: list[float],
               labels: list[str] | None = None, *,
               workers: int | None, engine: ExecutionEngine | None,
               exec_backend: str | Backend | None = None,
               ) -> list[SweepPoint]:
    results = run_jobs(specs, workers=workers, backend=exec_backend,
                       engine=engine)
    labels = labels or ["" for _ in values]
    return [
        point_from_result(result, parameter, value, label)
        for result, value, label in zip(results, values, labels)
    ]


def default_max_swap_lengths(device: TiltDevice) -> list[int]:
    """The MaxSwapLen values Figure 7 sweeps for one device.

    ``head_size - 1`` (the maximum executable span) down to
    ``head_size / 2`` — the single definition every sweep, search space,
    benchmark and example uses for the Figure 7 range.
    """
    return list(range(device.max_gate_span, device.head_size // 2 - 1, -1))


def max_swap_len_sweep(
    circuit: Circuit,
    device: TiltDevice,
    lengths: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
    workers: int | None = None,
    exec_backend: str | Backend | None = None,
    engine: ExecutionEngine | None = None,
) -> list[SweepPoint]:
    """Compile and simulate *circuit* once per MaxSwapLen value (Fig. 7).

    ``lengths`` defaults to ``head_size - 1`` down to ``head_size / 2``, the
    range plotted in Figure 7.  ``scenario`` runs every point under a
    registered correlated-noise scenario; ``workers`` fans the points out
    over a process pool; ``engine`` overrides the shared execution engine.
    """
    if lengths is None:
        lengths = default_max_swap_lengths(device)
    specs = override_sweep_specs(
        circuit, device, base_config or CompilerConfig(),
        noise_params or NoiseParameters.paper_defaults(),
        "max_swap_len", lengths, scenario=scenario,
    )
    return _run_sweep(specs, "max_swap_len", [float(v) for v in lengths],
                      workers=workers, engine=engine,
                      exec_backend=exec_backend)


def find_best_max_swap_len(
    circuit: Circuit,
    device: TiltDevice,
    lengths: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
    workers: int | None = None,
    exec_backend: str | Backend | None = None,
    engine: ExecutionEngine | None = None,
) -> SweepPoint:
    """The sweep point with the highest success rate (paper Section IV-C)."""
    points = max_swap_len_sweep(
        circuit, device, lengths,
        base_config=base_config, noise_params=noise_params,
        scenario=scenario, workers=workers, exec_backend=exec_backend,
        engine=engine,
    )
    return max(points, key=lambda point: point.log10_success_rate)


def alpha_sweep(
    circuit: Circuit,
    device: TiltDevice,
    alphas: list[float] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
    workers: int | None = None,
    exec_backend: str | Backend | None = None,
    engine: ExecutionEngine | None = None,
) -> list[SweepPoint]:
    """Ablation: sensitivity of the Eq. 1 score to the discount factor."""
    alphas = alphas or [0.3, 0.5, 0.7, 0.8, 0.9, 0.95]
    specs = override_sweep_specs(
        circuit, device, base_config or CompilerConfig(),
        noise_params or NoiseParameters.paper_defaults(),
        "alpha", alphas, scenario=scenario,
    )
    return _run_sweep(specs, "alpha", list(alphas),
                      workers=workers, engine=engine,
                      exec_backend=exec_backend)


def lookahead_sweep(
    circuit: Circuit,
    device: TiltDevice,
    windows: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
    workers: int | None = None,
    exec_backend: str | Backend | None = None,
    engine: ExecutionEngine | None = None,
) -> list[SweepPoint]:
    """Ablation: sensitivity to the Eq. 1 lookahead window size."""
    windows = windows or [1, 5, 10, 20, 40]
    specs = override_sweep_specs(
        circuit, device, base_config or CompilerConfig(),
        noise_params or NoiseParameters.paper_defaults(),
        "lookahead_window", windows, scenario=scenario,
    )
    return _run_sweep(specs, "lookahead_window", [float(v) for v in windows],
                      workers=workers, engine=engine,
                      exec_backend=exec_backend)


def mapper_sweep(
    circuit: Circuit,
    device: TiltDevice,
    mappers: list[str] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    scenario: str = BASELINE_SCENARIO,
    workers: int | None = None,
    exec_backend: str | Backend | None = None,
    engine: ExecutionEngine | None = None,
) -> dict[str, SweepPoint]:
    """Ablation: effect of the initial-mapping heuristic.

    The returned points carry the mapper name in ``label`` (``value`` is
    only the ordinal position of the mapper in the sweep).
    """
    mappers = mappers or ["trivial", "spectral", "greedy"]
    specs = override_sweep_specs(
        circuit, device, base_config or CompilerConfig(),
        noise_params or NoiseParameters.paper_defaults(),
        "mapper", mappers, labels=list(mappers), scenario=scenario,
    )
    points = _run_sweep(specs, "mapper", [float(i) for i in range(len(mappers))],
                        list(mappers), workers=workers, engine=engine,
                        exec_backend=exec_backend)
    return {mapper: point for mapper, point in zip(mappers, points)}
