"""Parameter sweeps (Figure 7 and the ablation studies).

The central sweep is over ``MaxSwapLen``: restricting the span of inserted
SWAPs below the maximum executable span costs a few extra SWAPs but gives
the tape-movement scheduler more freedom, and somewhere in between lies the
success-rate sweet spot (Figure 7).  :func:`find_best_max_swap_len` automates
the paper's "iterate the LinQ procedure to find the best choice" loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.noise.parameters import NoiseParameters
from repro.sim.tilt_sim import TiltSimulator


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured outcomes."""

    parameter: str
    value: float
    num_swaps: int
    num_opposing_swaps: int
    num_moves: int
    move_distance_um: float
    success_rate: float
    log10_success_rate: float
    execution_time_s: float


def _evaluate(circuit: Circuit, device: TiltDevice, config: CompilerConfig,
              params: NoiseParameters, parameter: str,
              value: float) -> SweepPoint:
    compiled = LinQCompiler(device, config).compile(circuit)
    result = TiltSimulator(device, params).run(compiled)
    stats = compiled.stats
    return SweepPoint(
        parameter=parameter,
        value=value,
        num_swaps=stats.num_swaps,
        num_opposing_swaps=stats.num_opposing_swaps,
        num_moves=stats.num_moves,
        move_distance_um=stats.move_distance_um,
        success_rate=result.success_rate,
        log10_success_rate=result.log10_success_rate,
        execution_time_s=result.execution_time_s,
    )


def max_swap_len_sweep(
    circuit: Circuit,
    device: TiltDevice,
    lengths: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
) -> list[SweepPoint]:
    """Compile and simulate *circuit* once per MaxSwapLen value (Fig. 7).

    ``lengths`` defaults to ``head_size - 1`` down to ``head_size / 2``, the
    range plotted in Figure 7.
    """
    if lengths is None:
        lengths = list(range(device.max_gate_span, device.head_size // 2 - 1, -1))
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    points = []
    for length in lengths:
        point = _evaluate(
            circuit,
            device,
            config.with_overrides(max_swap_len=length),
            params,
            "max_swap_len",
            length,
        )
        points.append(point)
    return points


def find_best_max_swap_len(
    circuit: Circuit,
    device: TiltDevice,
    lengths: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
) -> SweepPoint:
    """The sweep point with the highest success rate (paper Section IV-C)."""
    points = max_swap_len_sweep(
        circuit, device, lengths,
        base_config=base_config, noise_params=noise_params,
    )
    return max(points, key=lambda point: point.log10_success_rate)


def alpha_sweep(
    circuit: Circuit,
    device: TiltDevice,
    alphas: list[float] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
) -> list[SweepPoint]:
    """Ablation: sensitivity of the Eq. 1 score to the discount factor."""
    alphas = alphas or [0.3, 0.5, 0.7, 0.8, 0.9, 0.95]
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    return [
        _evaluate(circuit, device, config.with_overrides(alpha=alpha),
                  params, "alpha", alpha)
        for alpha in alphas
    ]


def lookahead_sweep(
    circuit: Circuit,
    device: TiltDevice,
    windows: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
) -> list[SweepPoint]:
    """Ablation: sensitivity to the Eq. 1 lookahead window size."""
    windows = windows or [1, 5, 10, 20, 40]
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    return [
        _evaluate(circuit, device,
                  config.with_overrides(lookahead_window=window),
                  params, "lookahead_window", window)
        for window in windows
    ]


def mapper_sweep(
    circuit: Circuit,
    device: TiltDevice,
    mappers: list[str] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
) -> dict[str, SweepPoint]:
    """Ablation: effect of the initial-mapping heuristic."""
    mappers = mappers or ["trivial", "spectral", "greedy"]
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    return {
        mapper: _evaluate(circuit, device,
                          config.with_overrides(mapper=mapper),
                          params, "mapper", index)
        for index, mapper in enumerate(mappers)
    }
