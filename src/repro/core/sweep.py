"""Parameter sweeps (Figure 7 and the ablation studies).

The central sweep is over ``MaxSwapLen``: restricting the span of inserted
SWAPs below the maximum executable span costs a few extra SWAPs but gives
the tape-movement scheduler more freedom, and somewhere in between lies the
success-rate sweet spot (Figure 7).  :func:`find_best_max_swap_len` automates
the paper's "iterate the LinQ procedure to find the best choice" loop.

Every sweep routes through the :mod:`repro.exec` engine: the per-point
compile+simulate jobs are declarative :class:`~repro.exec.JobSpec` objects,
so points are deduplicated, cached across invocations, and optionally fanned
out over a process pool (``workers`` > 1).  ``workers=1`` — the default —
is a fully serial, deterministic path producing bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobResult, JobSpec, run_jobs
from repro.exceptions import ReproError
from repro.noise.parameters import NoiseParameters


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured outcomes.

    ``value`` is the numeric parameter setting; ``label`` is the
    human-readable form (for categorical sweeps such as the mapper
    ablation, ``label`` carries the actual category name and ``value`` is
    just the ordinal position).
    """

    parameter: str
    value: float
    num_swaps: int
    num_opposing_swaps: int
    num_moves: int
    move_distance_um: float
    success_rate: float
    log10_success_rate: float
    execution_time_s: float
    label: str = ""


def sweep_job(circuit: Circuit, device: TiltDevice, config: CompilerConfig,
              params: NoiseParameters, label: str = "") -> JobSpec:
    """The engine job for one sweep point (compile + simulate on TILT)."""
    return JobSpec(circuit=circuit, device=device, config=config,
                   noise=params, simulate=True, label=label)


def point_from_result(result: JobResult, parameter: str, value: float,
                      label: str = "") -> SweepPoint:
    """Convert one finished engine job into a :class:`SweepPoint`."""
    stats = result.stats
    simulation = result.simulation
    if stats is None or simulation is None:
        raise ReproError(
            f"sweep job {result.label or result.key} returned no "
            "compile/simulation outcome"
        )
    return SweepPoint(
        parameter=parameter,
        value=value,
        num_swaps=stats.num_swaps,
        num_opposing_swaps=stats.num_opposing_swaps,
        num_moves=stats.num_moves,
        move_distance_um=stats.move_distance_um,
        success_rate=simulation.success_rate,
        log10_success_rate=simulation.log10_success_rate,
        execution_time_s=simulation.execution_time_s,
        label=label or f"{parameter}={value:g}",
    )


def _run_sweep(specs: list[JobSpec], parameter: str, values: list[float],
               labels: list[str] | None = None, *,
               workers: int | None, engine: ExecutionEngine | None,
               ) -> list[SweepPoint]:
    results = run_jobs(specs, workers=workers, engine=engine)
    labels = labels or ["" for _ in values]
    return [
        point_from_result(result, parameter, value, label)
        for result, value, label in zip(results, values, labels)
    ]


def max_swap_len_sweep(
    circuit: Circuit,
    device: TiltDevice,
    lengths: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> list[SweepPoint]:
    """Compile and simulate *circuit* once per MaxSwapLen value (Fig. 7).

    ``lengths`` defaults to ``head_size - 1`` down to ``head_size / 2``, the
    range plotted in Figure 7.  ``workers`` fans the points out over a
    process pool; ``engine`` overrides the shared execution engine.
    """
    if lengths is None:
        lengths = list(range(device.max_gate_span, device.head_size // 2 - 1, -1))
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    specs = [
        sweep_job(circuit, device,
                  config.with_overrides(max_swap_len=length), params,
                  label=f"max_swap_len={length}")
        for length in lengths
    ]
    return _run_sweep(specs, "max_swap_len", [float(v) for v in lengths],
                      workers=workers, engine=engine)


def find_best_max_swap_len(
    circuit: Circuit,
    device: TiltDevice,
    lengths: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> SweepPoint:
    """The sweep point with the highest success rate (paper Section IV-C)."""
    points = max_swap_len_sweep(
        circuit, device, lengths,
        base_config=base_config, noise_params=noise_params,
        workers=workers, engine=engine,
    )
    return max(points, key=lambda point: point.log10_success_rate)


def alpha_sweep(
    circuit: Circuit,
    device: TiltDevice,
    alphas: list[float] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> list[SweepPoint]:
    """Ablation: sensitivity of the Eq. 1 score to the discount factor."""
    alphas = alphas or [0.3, 0.5, 0.7, 0.8, 0.9, 0.95]
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    specs = [
        sweep_job(circuit, device, config.with_overrides(alpha=alpha),
                  params, label=f"alpha={alpha:g}")
        for alpha in alphas
    ]
    return _run_sweep(specs, "alpha", list(alphas),
                      workers=workers, engine=engine)


def lookahead_sweep(
    circuit: Circuit,
    device: TiltDevice,
    windows: list[int] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> list[SweepPoint]:
    """Ablation: sensitivity to the Eq. 1 lookahead window size."""
    windows = windows or [1, 5, 10, 20, 40]
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    specs = [
        sweep_job(circuit, device,
                  config.with_overrides(lookahead_window=window), params,
                  label=f"lookahead_window={window}")
        for window in windows
    ]
    return _run_sweep(specs, "lookahead_window", [float(v) for v in windows],
                      workers=workers, engine=engine)


def mapper_sweep(
    circuit: Circuit,
    device: TiltDevice,
    mappers: list[str] | None = None,
    *,
    base_config: CompilerConfig | None = None,
    noise_params: NoiseParameters | None = None,
    workers: int | None = None,
    engine: ExecutionEngine | None = None,
) -> dict[str, SweepPoint]:
    """Ablation: effect of the initial-mapping heuristic.

    The returned points carry the mapper name in ``label`` (``value`` is
    only the ordinal position of the mapper in the sweep).
    """
    mappers = mappers or ["trivial", "spectral", "greedy"]
    config = base_config or CompilerConfig()
    params = noise_params or NoiseParameters.paper_defaults()
    specs = [
        sweep_job(circuit, device, config.with_overrides(mapper=mapper),
                  params, label=mapper)
        for mapper in mappers
    ]
    points = _run_sweep(specs, "mapper", [float(i) for i in range(len(mappers))],
                        list(mappers), workers=workers, engine=engine)
    return {mapper: point for mapper, point in zip(mappers, points)}
