"""High-level toolflow API: the LinQ facade, comparisons and sweeps."""

from repro.core.comparison import (
    ArchitectureComparison,
    compare_architectures,
    tilt_vs_qccd_ratios,
)
from repro.core.linq import LinQ, LinQRunReport
from repro.core.sweep import (
    SweepPoint,
    alpha_sweep,
    find_best_max_swap_len,
    lookahead_sweep,
    mapper_sweep,
    max_swap_len_sweep,
)

__all__ = [
    "ArchitectureComparison",
    "LinQ",
    "LinQRunReport",
    "SweepPoint",
    "alpha_sweep",
    "compare_architectures",
    "find_best_max_swap_len",
    "lookahead_sweep",
    "mapper_sweep",
    "max_swap_len_sweep",
    "tilt_vs_qccd_ratios",
]
