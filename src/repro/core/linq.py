"""Top-level LinQ toolflow facade.

This is the primary public API of the reproduction: it bundles the compiler
(Figure 4's three passes) and the noisy simulator behind a single object, so
a typical user interaction is::

    from repro import LinQ, TiltDevice, workloads

    device = TiltDevice(num_qubits=64, head_size=16)
    toolflow = LinQ(device)
    report = toolflow.run(workloads.qft_workload(64))
    print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompileResult, CompilerConfig, LinQCompiler
from repro.noise.parameters import NoiseParameters
from repro.sim.result import SimulationResult
from repro.sim.tilt_sim import TiltSimulator


@dataclass
class LinQRunReport:
    """Compilation plus simulation outcome for one circuit."""

    compile_result: CompileResult
    simulation: SimulationResult

    @property
    def success_rate(self) -> float:
        """Estimated program success rate."""
        return self.simulation.success_rate

    @property
    def log10_success_rate(self) -> float:
        return self.simulation.log10_success_rate

    @property
    def execution_time_s(self) -> float:
        """Estimated on-device execution time in seconds."""
        return self.simulation.execution_time_s

    @property
    def num_swaps(self) -> int:
        return self.compile_result.stats.num_swaps

    @property
    def num_moves(self) -> int:
        return self.compile_result.stats.num_moves

    def summary(self) -> str:
        """Human-readable multi-line report."""
        return "\n".join(
            [
                self.compile_result.summary(),
                f"  success rate : {self.simulation.success_rate:.4e} "
                f"(log10 {self.simulation.log10_success_rate:.2f})",
                f"  exec time    : {self.simulation.execution_time_s:.3f} s",
            ]
        )


class LinQ:
    """The LinQ toolflow: compile + simulate for one TILT device."""

    def __init__(
        self,
        device: TiltDevice,
        compiler_config: CompilerConfig | None = None,
        noise_params: NoiseParameters | None = None,
    ) -> None:
        self.device = device
        self.compiler = LinQCompiler(device, compiler_config)
        self.simulator = TiltSimulator(
            device, noise_params or NoiseParameters.paper_defaults()
        )

    @property
    def config(self) -> CompilerConfig:
        """The compiler configuration in use."""
        return self.compiler.config

    @property
    def noise(self) -> NoiseParameters:
        """The noise calibration in use."""
        return self.simulator.params

    # ------------------------------------------------------------------
    # Toolflow steps
    # ------------------------------------------------------------------
    def compile(self, circuit: Circuit) -> CompileResult:
        """Run the full compiler pipeline on *circuit*."""
        return self.compiler.compile(circuit)

    def simulate(self, compiled: CompileResult) -> SimulationResult:
        """Estimate success rate and run time of a compiled program."""
        return self.simulator.run(compiled)

    def run(self, circuit: Circuit) -> LinQRunReport:
        """Compile and simulate *circuit* in one call."""
        compiled = self.compile(circuit)
        simulation = self.simulate(compiled)
        return LinQRunReport(compiled, simulation)

    def with_config(self, **overrides: object) -> "LinQ":
        """Return a new toolflow with compiler-config fields replaced."""
        return LinQ(
            self.device,
            self.compiler.config.with_overrides(**overrides),
            self.simulator.params,
        )
