"""Exception hierarchy for the TILT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate construction."""


class QasmError(ReproError):
    """Raised when OpenQASM text cannot be parsed or emitted."""


class DeviceError(ReproError):
    """Raised for invalid device specifications."""


class CompilationError(ReproError):
    """Raised when a compiler pass cannot produce a valid result."""


class RoutingError(CompilationError):
    """Raised when swap insertion cannot make a gate executable."""


class SchedulingError(CompilationError):
    """Raised when the tape movement scheduler cannot make progress."""


class SimulationError(ReproError):
    """Raised for invalid simulator inputs or unsupported operations."""
