"""Cuccaro ripple-carry adder (Table II: ADDER).

Implements the CDKM ripple-carry adder of Cuccaro et al.
(arXiv:quant-ph/0410184) on ``2 * n_bits + 2`` qubits: one incoming-carry
qubit, the two ``n_bits``-wide operand registers interleaved as
``(a_i, b_i)`` pairs, and one outgoing-carry qubit.  The interleaved layout
keeps the MAJ/UMA blocks acting on physically adjacent qubits, which is why
the paper classifies ADDER as a short-distance-communication workload.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def _maj(circuit: Circuit, carry: int, b: int, a: int) -> None:
    """Majority block of the Cuccaro adder."""
    circuit.cx(a, b)
    circuit.cx(a, carry)
    circuit.ccx(carry, b, a)


def _uma(circuit: Circuit, carry: int, b: int, a: int) -> None:
    """Un-majority-and-add block (3-CNOT version)."""
    circuit.ccx(carry, b, a)
    circuit.cx(a, carry)
    circuit.cx(carry, b)


def cuccaro_adder(n_bits: int, *, with_input_prep: bool = True,
                  a_value: int = 0, b_value: int = 0) -> Circuit:
    """Build an ``n_bits``-bit Cuccaro ripple-carry adder.

    Parameters
    ----------
    n_bits:
        Width of each operand register.
    with_input_prep:
        When True, X gates encode ``a_value`` and ``b_value`` into the
        operand registers so the circuit computes a concrete sum.
    a_value, b_value:
        Classical operand values (only used when ``with_input_prep``).

    Returns
    -------
    Circuit
        Circuit on ``2 * n_bits + 2`` qubits.  Qubit 0 is the incoming
        carry, qubit ``2 * n_bits + 1`` the outgoing carry, and bit *i* of
        operands a/b live at qubits ``2 i + 2`` and ``2 i + 1``.
    """
    if n_bits < 1:
        raise CircuitError("adder needs at least 1 bit per operand")
    if a_value >= 2**n_bits or b_value >= 2**n_bits or min(a_value, b_value) < 0:
        raise CircuitError("operand value does not fit in n_bits")

    num_qubits = 2 * n_bits + 2
    circuit = Circuit(num_qubits, name=f"adder_{num_qubits}q")

    def a_qubit(i: int) -> int:
        return 2 * i + 2

    def b_qubit(i: int) -> int:
        return 2 * i + 1

    carry_in = 0
    carry_out = num_qubits - 1

    if with_input_prep:
        for i in range(n_bits):
            if (a_value >> i) & 1:
                circuit.x(a_qubit(i))
            if (b_value >> i) & 1:
                circuit.x(b_qubit(i))

    # Forward MAJ ladder.
    _maj(circuit, carry_in, b_qubit(0), a_qubit(0))
    for i in range(1, n_bits):
        _maj(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))
    # Copy the high carry out.
    circuit.cx(a_qubit(n_bits - 1), carry_out)
    # Backward UMA ladder.
    for i in range(n_bits - 1, 0, -1):
        _uma(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))
    _uma(circuit, carry_in, b_qubit(0), a_qubit(0))

    return circuit


def adder_workload(num_qubits: int = 64, **kwargs: int) -> Circuit:
    """Table II ADDER entry: the widest Cuccaro adder fitting *num_qubits*."""
    if num_qubits < 4:
        raise CircuitError("adder workload needs at least 4 qubits")
    n_bits = (num_qubits - 2) // 2
    circuit = cuccaro_adder(n_bits, **kwargs)
    if circuit.num_qubits < num_qubits:
        # Pad to the requested register width with idle qubits so device
        # comparisons use identical chain lengths.
        padded = Circuit(num_qubits, name=f"adder_{num_qubits}q")
        padded.extend(circuit.gates)
        return padded
    return circuit
