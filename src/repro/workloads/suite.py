"""The Table II benchmark suite.

Provides a registry of the six NISQ applications evaluated in the paper
(ADDER, BV, QAOA, RCS, QFT, SQRT) at the paper's sizes, plus a scaled-down
variant of every workload so the full experiment pipeline can run quickly in
tests and CI.  Two-qubit gate counts are reported at the CX level (after
:func:`repro.compiler.decompose.decompose_to_cx`), which is the convention
that reproduces Table II's numbers (e.g. QFT-64 -> 4032 CX).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.circuits.circuit import Circuit
from repro.compiler.decompose import decompose_to_cx
from repro.exceptions import ReproError
from repro.workloads.adder import adder_workload
from repro.workloads.bv import bv_workload
from repro.workloads.grover import sqrt_workload
from repro.workloads.qaoa import qaoa_workload
from repro.workloads.qft import qft_workload
from repro.workloads.rcs import rcs_workload

#: Communication classes used in Table II.
SHORT_DISTANCE = "Short-distance gates"
LONG_DISTANCE = "Long-distance gates"
NEAREST_NEIGHBOR = "Nearest-neighbor gates"


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the benchmark suite.

    Attributes
    ----------
    name:
        Table II application name.
    builder:
        Callable producing the circuit for a given register width.
    paper_qubits:
        Register width used in the paper.
    paper_two_qubit_gates:
        Two-qubit gate count reported in Table II (for reference only; the
        measured count of this reproduction is computed from the circuit).
    communication:
        Table II communication-pattern class.
    needs_routing:
        True for the long-distance workloads used in the Fig. 6/7 swap
        studies (BV, QFT, SQRT).
    """

    name: str
    builder: Callable[[int], Circuit]
    paper_qubits: int
    paper_two_qubit_gates: int
    communication: str
    needs_routing: bool

    def build(self, num_qubits: int | None = None) -> Circuit:
        """Build the workload at *num_qubits* (default: the paper's size)."""
        width = num_qubits if num_qubits is not None else self.paper_qubits
        circuit = self.builder(width)
        circuit.name = self.name.lower()
        return circuit

    def two_qubit_gate_count(self, num_qubits: int | None = None) -> int:
        """Number of two-qubit gates at the CX level."""
        return decompose_to_cx(self.build(num_qubits)).num_two_qubit_gates()


def _build_rcs(num_qubits: int) -> Circuit:
    return rcs_workload(num_qubits)


_SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("ADDER", adder_workload, 64, 545, SHORT_DISTANCE, False),
    BenchmarkSpec("BV", bv_workload, 64, 64, LONG_DISTANCE, True),
    BenchmarkSpec("QAOA", qaoa_workload, 64, 1260, NEAREST_NEIGHBOR, False),
    BenchmarkSpec("RCS", _build_rcs, 64, 560, NEAREST_NEIGHBOR, False),
    BenchmarkSpec("QFT", qft_workload, 64, 4032, LONG_DISTANCE, True),
    BenchmarkSpec("SQRT", sqrt_workload, 78, 1028, LONG_DISTANCE, True),
)

#: Register widths for the reduced-scale suite used by default in the
#: benchmark harness (same circuit families, ~1/4 the width, head size 8).
SMALL_SCALE_QUBITS: Mapping[str, int] = {
    "ADDER": 16,
    "BV": 16,
    "QAOA": 16,
    "RCS": 16,
    "QFT": 16,
    "SQRT": 20,
}


def standard_suite() -> tuple[BenchmarkSpec, ...]:
    """The six Table II benchmarks at the paper's sizes."""
    return _SUITE


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by (case-insensitive) Table II name."""
    for spec in _SUITE:
        if spec.name.lower() == name.lower():
            return spec
    raise ReproError(f"unknown benchmark {name!r}")


def routing_suite() -> tuple[BenchmarkSpec, ...]:
    """The long-distance workloads used in the Fig. 6 / Fig. 7 swap studies."""
    return tuple(spec for spec in _SUITE if spec.needs_routing)


def suite_qubits(name: str, scale: str) -> int:
    """Register width of *name* at the given scale ('paper' or 'small')."""
    spec = benchmark(name)
    if scale == "paper":
        return spec.paper_qubits
    if scale == "small":
        return SMALL_SCALE_QUBITS[spec.name]
    raise ReproError(f"unknown scale {scale!r} (expected 'paper' or 'small')")


def build_workload(name: str, scale: str = "paper") -> Circuit:
    """Build a Table II workload at the requested scale."""
    return benchmark(name).build(suite_qubits(name, scale))


def table2_rows(scale: str = "paper") -> list[dict[str, object]]:
    """Reproduce Table II: one dict per benchmark with measured gate counts."""
    rows = []
    for spec in standard_suite():
        width = suite_qubits(spec.name, scale)
        circuit = spec.build(width)
        cx_level = decompose_to_cx(circuit)
        rows.append(
            {
                "application": spec.name,
                "qubits": width,
                "two_qubit_gates": cx_level.num_two_qubit_gates(),
                "paper_two_qubit_gates": spec.paper_two_qubit_gates,
                "communication": spec.communication,
            }
        )
    return rows
