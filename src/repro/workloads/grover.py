"""Grover square-root search (Table II: SQRT).

The paper's SQRT benchmark (from the ScaffCC suite) uses Grover's algorithm
to find a square root; it runs on 78 qubits with roughly a thousand
two-qubit gates and mixes short- and long-distance interactions.  The exact
ScaffCC oracle is not public at the gate level, so this module builds the
closest structural equivalent: Grover iterations over an ``m``-qubit search
register whose oracle and diffusion operators are multi-controlled phase
flips realised with a CCX ladder over ``m - 2`` ancilla qubits.  The ladder
reaches across the register, producing the same "some local, some
long-distance" communication profile and a comparable two-qubit gate count
(m = 40, one iteration: 78 qubits, ~1000 CX).
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def _multi_controlled_z(circuit: Circuit, controls: list[int],
                        ancillas: list[int]) -> None:
    """Phase-flip the all-ones state of *controls* using a CCX ladder."""
    if len(controls) == 1:
        circuit.z(controls[0])
        return
    if len(controls) == 2:
        circuit.cz(controls[0], controls[1])
        return
    if len(ancillas) < len(controls) - 2:
        raise CircuitError("not enough ancillas for the CCX ladder")
    # Compute the AND chain into the ancillas.
    circuit.ccx(controls[0], controls[1], ancillas[0])
    for i in range(2, len(controls) - 1):
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1])
    # Controlled-Z between the last control and the final ancilla.
    circuit.cz(controls[-1], ancillas[len(controls) - 3])
    # Uncompute the AND chain.
    for i in range(len(controls) - 2, 1, -1):
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1])
    circuit.ccx(controls[0], controls[1], ancillas[0])


def grover_sqrt(search_bits: int = 40, iterations: int = 1,
                *, marked_state: int = 0, measure: bool = False) -> Circuit:
    """Build the SQRT (Grover search) workload.

    Parameters
    ----------
    search_bits:
        Width m of the search register; the circuit uses ``2 m - 2`` qubits
        (m search + m - 2 ancillas).  m = 40 gives the paper's 78 qubits.
    iterations:
        Number of Grover iterations.
    marked_state:
        The basis state the oracle marks (the "square root" being searched).
    """
    if search_bits < 3:
        raise CircuitError("Grover SQRT needs at least 3 search bits")
    if iterations < 1:
        raise CircuitError("need at least one Grover iteration")
    if not 0 <= marked_state < 2**search_bits:
        raise CircuitError("marked_state outside the search space")

    num_ancillas = search_bits - 2
    num_qubits = search_bits + num_ancillas
    search = list(range(search_bits))
    ancillas = list(range(search_bits, num_qubits))

    circuit = Circuit(num_qubits, name=f"sqrt_{num_qubits}q")
    for q in search:
        circuit.h(q)

    for _ in range(iterations):
        # Oracle: phase-flip the marked state.
        zero_bits = [q for q in search if not ((marked_state >> q) & 1)]
        for q in zero_bits:
            circuit.x(q)
        _multi_controlled_z(circuit, search, ancillas)
        for q in zero_bits:
            circuit.x(q)
        # Diffusion operator: reflect about the uniform superposition.
        for q in search:
            circuit.h(q)
            circuit.x(q)
        _multi_controlled_z(circuit, search, ancillas)
        for q in search:
            circuit.x(q)
            circuit.h(q)

    if measure:
        for q in search:
            circuit.measure(q)
    return circuit


def sqrt_workload(num_qubits: int = 78, iterations: int = 1,
                  **kwargs: object) -> Circuit:
    """Table II SQRT entry: Grover square-root search on *num_qubits* qubits."""
    if num_qubits < 4:
        raise CircuitError("SQRT workload needs at least 4 qubits")
    search_bits = (num_qubits + 2) // 2
    return grover_sqrt(search_bits, iterations, **kwargs)
