"""Quantum Fourier Transform (Table II: QFT).

The textbook QFT: a Hadamard on each qubit followed by controlled-phase
rotations against every later qubit.  With ``n`` qubits this gives
``n (n - 1) / 2`` controlled-phase gates, i.e. ``n (n - 1)`` CX gates after
decomposition — 4032 for n = 64, matching Table II.  QFT is the paper's
canonical mixed/long-distance workload.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def qft(num_qubits: int, *, with_final_swaps: bool = False,
        approximation_degree: int = 0, measure: bool = False) -> Circuit:
    """Build a QFT circuit.

    Parameters
    ----------
    num_qubits:
        Register width.
    with_final_swaps:
        Append the qubit-reversal SWAP network (off by default, matching the
        common benchmark convention and Table II's gate count).
    approximation_degree:
        Drop controlled-phase rotations whose angle denominator exceeds
        ``2 ** (num_qubits - approximation_degree)`` (0 = exact QFT).
    """
    if num_qubits < 1:
        raise CircuitError("QFT needs at least 1 qubit")
    if approximation_degree < 0:
        raise CircuitError("approximation_degree cannot be negative")
    max_separation = num_qubits - approximation_degree

    circuit = Circuit(num_qubits, name=f"qft_{num_qubits}q")
    for i in range(num_qubits):
        circuit.h(i)
        for j in range(i + 1, num_qubits):
            separation = j - i
            if separation >= max_separation:
                continue
            angle = math.pi / (2**separation)
            circuit.cp(angle, j, i)
    if with_final_swaps:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    if measure:
        circuit.measure_all()
    return circuit


def qft_workload(num_qubits: int = 64, **kwargs: object) -> Circuit:
    """Table II QFT entry (exact, no final swaps)."""
    return qft(num_qubits, **kwargs)
