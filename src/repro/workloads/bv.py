"""Bernstein-Vazirani (Table II: BV).

The standard NISQ benchmark: ``n - 1`` data qubits, one ancilla prepared in
``|->``, one CX per set bit of the hidden string.  Every CX targets the
ancilla, so with the ancilla placed at the end of the register the circuit
consists of long-distance two-qubit gates — the paper uses BV as the
canonical long-distance workload.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def bernstein_vazirani(num_qubits: int, secret: str | int | None = None,
                       *, measure: bool = False) -> Circuit:
    """Build a Bernstein-Vazirani circuit on *num_qubits* qubits.

    Parameters
    ----------
    num_qubits:
        Total register width; the last qubit is the oracle ancilla and the
        first ``num_qubits - 1`` qubits hold the hidden string.
    secret:
        Hidden bit string, as a string of '0'/'1' or an integer; defaults to
        all ones (the densest, hardest-to-route instance).
    measure:
        Append measurements on the data qubits.
    """
    if num_qubits < 2:
        raise CircuitError("Bernstein-Vazirani needs at least 2 qubits")
    num_data = num_qubits - 1
    if secret is None:
        bits = [1] * num_data
    elif isinstance(secret, int):
        if secret < 0 or secret >= 2**num_data:
            raise CircuitError("secret does not fit in the data register")
        bits = [(secret >> i) & 1 for i in range(num_data)]
    else:
        if len(secret) != num_data or set(secret) - {"0", "1"}:
            raise CircuitError(
                f"secret string must be {num_data} characters of 0/1"
            )
        bits = [int(c) for c in secret]

    ancilla = num_qubits - 1
    circuit = Circuit(num_qubits, name=f"bv_{num_qubits}q")
    for q in range(num_data):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q, bit in enumerate(bits):
        if bit:
            circuit.cx(q, ancilla)
    for q in range(num_data):
        circuit.h(q)
    if measure:
        for q in range(num_data):
            circuit.measure(q)
    return circuit


def bv_workload(num_qubits: int = 64, **kwargs: object) -> Circuit:
    """Table II BV entry (all-ones secret)."""
    return bernstein_vazirani(num_qubits, **kwargs)
