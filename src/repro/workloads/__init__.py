"""Table II benchmark workloads (ADDER, BV, QAOA, RCS, QFT, SQRT)."""

from repro.workloads.adder import adder_workload, cuccaro_adder
from repro.workloads.bv import bernstein_vazirani, bv_workload
from repro.workloads.grover import grover_sqrt, sqrt_workload
from repro.workloads.qaoa import (
    line_graph_edges,
    qaoa_maxcut,
    qaoa_workload,
    random_regular_edges,
    ring_graph_edges,
)
from repro.workloads.qft import qft, qft_workload
from repro.workloads.rcs import random_circuit_sampling, rcs_workload
from repro.workloads.suite import (
    BenchmarkSpec,
    benchmark,
    build_workload,
    routing_suite,
    standard_suite,
    suite_qubits,
    table2_rows,
)

__all__ = [
    "BenchmarkSpec",
    "adder_workload",
    "benchmark",
    "bernstein_vazirani",
    "build_workload",
    "bv_workload",
    "cuccaro_adder",
    "grover_sqrt",
    "line_graph_edges",
    "qaoa_maxcut",
    "qaoa_workload",
    "qft",
    "qft_workload",
    "random_circuit_sampling",
    "random_regular_edges",
    "rcs_workload",
    "ring_graph_edges",
    "routing_suite",
    "sqrt_workload",
    "standard_suite",
    "suite_qubits",
    "table2_rows",
]
