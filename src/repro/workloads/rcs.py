"""Random Circuit Sampling (Table II: RCS).

Google-supremacy-style random circuits on a 2D grid of qubits: every cycle
applies a random single-qubit gate from {sqrt(X), sqrt(Y), T} to each qubit
followed by CZ gates along one of four alternating edge patterns of the
grid.  The grid is embedded row-major onto the linear tape, so all
interactions span either 1 (horizontal edge) or ``columns`` (vertical edge)
ion spacings — the "nearest-neighbour" communication class of Table II.
"""

from __future__ import annotations

import math
import random

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError

_SINGLE_QUBIT_CHOICES = ("sx", "sy", "t")

#: Seed of the canonical Table II RCS instance.
DEFAULT_RCS_SEED = 2021


def _grid_shape(num_qubits: int) -> tuple[int, int]:
    """Pick the most square grid (rows x columns) for *num_qubits* qubits."""
    best = (1, num_qubits)
    for rows in range(1, int(math.isqrt(num_qubits)) + 1):
        if num_qubits % rows == 0:
            best = (rows, num_qubits // rows)
    return best


def grid_edge_patterns(rows: int, columns: int) -> list[list[tuple[int, int]]]:
    """The four alternating CZ patterns (two horizontal, two vertical)."""

    def index(r: int, c: int) -> int:
        return r * columns + c

    horizontal_even, horizontal_odd, vertical_even, vertical_odd = [], [], [], []
    for r in range(rows):
        for c in range(columns - 1):
            edge = (index(r, c), index(r, c + 1))
            (horizontal_even if c % 2 == 0 else horizontal_odd).append(edge)
    for r in range(rows - 1):
        for c in range(columns):
            edge = (index(r, c), index(r + 1, c))
            (vertical_even if r % 2 == 0 else vertical_odd).append(edge)
    return [p for p in (horizontal_even, vertical_even, horizontal_odd, vertical_odd) if p]


def random_circuit_sampling(
    num_qubits: int,
    cycles: int = 20,
    *,
    rows: int | None = None,
    columns: int | None = None,
    seed: int | None = None,
    rng: random.Random | None = None,
    measure: bool = False,
) -> Circuit:
    """Build an RCS circuit.

    Parameters
    ----------
    num_qubits:
        Total number of qubits; by default arranged on the most square grid.
    cycles:
        Number of (single-qubit layer, CZ pattern) cycles.  The paper's
        64-qubit instance has 560 two-qubit gates = 20 cycles x 28 edges.
    rows, columns:
        Explicit grid shape (must satisfy ``rows * columns == num_qubits``).
    seed:
        Seed for the random single-qubit gate choices (deterministic
        workload generation; defaults to 2021, the Table II instance).
    rng:
        Draw from an existing generator instead of ``Random(seed)`` —
        for callers sequencing several reproducible instances from one
        stream.  Passing both *seed* and *rng* is an error — the seed
        would silently be ignored.
    """
    if num_qubits < 2:
        raise CircuitError("RCS needs at least 2 qubits")
    if rows is None or columns is None:
        rows, columns = _grid_shape(num_qubits)
    if rows * columns != num_qubits:
        raise CircuitError(
            f"grid {rows}x{columns} does not match {num_qubits} qubits"
        )
    patterns = grid_edge_patterns(rows, columns)
    if rng is not None and seed is not None:
        raise CircuitError("pass either seed= or rng=, not both")
    if rng is None:
        rng = random.Random(DEFAULT_RCS_SEED if seed is None else seed)

    circuit = Circuit(num_qubits, name=f"rcs_{num_qubits}q_c{cycles}")
    for q in range(num_qubits):
        circuit.h(q)
    previous_choice = [""] * num_qubits
    for cycle in range(cycles):
        for q in range(num_qubits):
            choices = [c for c in _SINGLE_QUBIT_CHOICES if c != previous_choice[q]]
            choice = rng.choice(choices)
            previous_choice[q] = choice
            if choice == "sx":
                circuit.sx(q)
            elif choice == "sy":
                circuit.ry(math.pi / 2, q)
            else:
                circuit.t(q)
        for a, b in patterns[cycle % len(patterns)]:
            circuit.cz(a, b)
    if measure:
        circuit.measure_all()
    return circuit


def rcs_workload(num_qubits: int = 64, cycles: int = 20,
                 **kwargs: object) -> Circuit:
    """Table II RCS entry (8x8 grid, 20 cycles)."""
    return random_circuit_sampling(num_qubits, cycles, **kwargs)
