"""Base device abstractions.

A *device specification* describes the static hardware resources the
compiler and simulators target: how many ions there are, which pairs of
physical qubits can interact directly, and basic geometric constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DeviceError

#: Typical inter-ion spacing in a linear Paul trap, in micrometres
#: (Section II-B of the paper: "ions ... are spaced approximately 5 microns
#: apart").
DEFAULT_ION_SPACING_UM = 5.0


@dataclass(frozen=True)
class DeviceSpec:
    """Common fields shared by every architecture model.

    Parameters
    ----------
    num_qubits:
        Number of ions available as data qubits.
    ion_spacing_um:
        Physical spacing between adjacent ions in micrometres, used for
        shuttling-distance and execution-time estimates.
    """

    num_qubits: int
    ion_spacing_um: float = DEFAULT_ION_SPACING_UM

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise DeviceError("a device needs at least one qubit")
        if self.ion_spacing_um <= 0:
            raise DeviceError("ion spacing must be positive")

    # Architecture models override these -----------------------------------
    def is_executable(self, qubit_a: int, qubit_b: int) -> bool:
        """Can a two-qubit gate on physical qubits (a, b) run without routing?"""
        raise NotImplementedError

    def validate_qubit(self, qubit: int) -> None:
        """Raise :class:`DeviceError` if *qubit* is outside the register."""
        if not 0 <= qubit < self.num_qubits:
            raise DeviceError(
                f"qubit {qubit} outside device register of size {self.num_qubits}"
            )
