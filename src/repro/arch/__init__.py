"""Architecture (device) specifications: TILT, Ideal TI and QCCD."""

from repro.arch.device import DEFAULT_ION_SPACING_UM, DeviceSpec
from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice, qccd_like_paper
from repro.arch.tilt import TiltDevice, tilt_16, tilt_32

__all__ = [
    "DEFAULT_ION_SPACING_UM",
    "DeviceSpec",
    "IdealTrappedIonDevice",
    "QccdDevice",
    "TiltDevice",
    "qccd_like_paper",
    "tilt_16",
    "tilt_32",
]
