"""QCCD (Quantum Charge-Coupled Device) device specification.

The comparison baseline of the paper (Section VI-B) is the QCCD simulator of
Murali et al. [64]: several small linear traps connected in a line, with
full qubit connectivity inside a trap and ion shuttling (swap-to-edge,
split, per-segment shuttle, merge) between traps.

This module only captures the *static* device description; the dynamic cost
model (which primitives a cross-trap gate needs and how much heating each
adds) lives in :mod:`repro.compiler.qccd_compiler` and
:mod:`repro.sim.qccd_sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.device import DeviceSpec
from repro.exceptions import DeviceError


@dataclass(frozen=True)
class QccdDevice(DeviceSpec):
    """A linear-topology QCCD machine.

    Parameters
    ----------
    num_qubits:
        Total number of data ions.
    trap_capacity:
        Maximum number of ions a single trap can hold.  The paper's QCCD
        configurations use 15-35 ions per trap; the default of 17 gives four
        traps for 64 qubits with a little slack for in-flight ions.
    num_traps:
        Number of traps in the linear chain of traps.  By default the
        smallest count that fits ``num_qubits`` with one spare slot per trap.
    """

    trap_capacity: int = 17
    num_traps: int = 0  # 0 means "derive from num_qubits and capacity"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.trap_capacity < 2:
            raise DeviceError("trap capacity must be at least 2")
        if self.num_traps == 0:
            # Leave one slot of slack per trap so shuttled ions always fit.
            usable = max(1, self.trap_capacity - 1)
            derived = -(-self.num_qubits // usable)  # ceil division
            object.__setattr__(self, "num_traps", derived)
        if self.num_traps * self.trap_capacity < self.num_qubits:
            raise DeviceError(
                f"{self.num_traps} traps of capacity {self.trap_capacity} "
                f"cannot hold {self.num_qubits} qubits"
            )

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def initial_trap_of(self, qubit: int) -> int:
        """Trap index holding *qubit* under the default round-robin-fill layout."""
        self.validate_qubit(qubit)
        per_trap = -(-self.num_qubits // self.num_traps)  # ceil division
        return min(qubit // per_trap, self.num_traps - 1)

    def initial_layout(self) -> list[list[int]]:
        """Default placement: fill traps left to right with contiguous qubits."""
        traps: list[list[int]] = [[] for _ in range(self.num_traps)]
        for qubit in range(self.num_qubits):
            traps[self.initial_trap_of(qubit)].append(qubit)
        return traps

    def trap_distance(self, trap_a: int, trap_b: int) -> int:
        """Number of inter-trap segments between two traps (linear topology)."""
        if not 0 <= trap_a < self.num_traps or not 0 <= trap_b < self.num_traps:
            raise DeviceError("trap index out of range")
        return abs(trap_a - trap_b)

    def is_executable(self, qubit_a: int, qubit_b: int) -> bool:
        """Executable without shuttling iff both qubits start in the same trap.

        This only reflects the *initial* layout; the QCCD compiler tracks the
        dynamic ion placement as it inserts shuttling operations.
        """
        self.validate_qubit(qubit_a)
        self.validate_qubit(qubit_b)
        return self.initial_trap_of(qubit_a) == self.initial_trap_of(qubit_b)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"QCCD device: {self.num_qubits} ions in {self.num_traps} traps "
            f"(capacity {self.trap_capacity}, linear topology)"
        )


def qccd_like_paper(num_qubits: int = 64, trap_capacity: int = 17) -> QccdDevice:
    """The QCCD configuration used for the Figure 8 comparison."""
    return QccdDevice(num_qubits=num_qubits, trap_capacity=trap_capacity)
