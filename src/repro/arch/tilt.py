"""TILT (Trapped-Ion Linear-Tape) device specification.

The device is a single linear chain of ``num_qubits`` ions.  A fixed laser
"head" of ``head_size`` control beams defines the execution zone; the whole
chain shuttles so that different windows of ions sit under the head
(Figure 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import DEFAULT_ION_SPACING_UM, DeviceSpec
from repro.exceptions import DeviceError


@dataclass(frozen=True)
class TiltDevice(DeviceSpec):
    """A linear-tape trapped-ion device.

    Parameters
    ----------
    num_qubits:
        Length of the ion chain (the "tape").
    head_size:
        Number of ions simultaneously covered by the laser head (the
        execution zone).  The paper evaluates 16 and 32; commodity AOMs
        limit this to 32.
    ion_spacing_um:
        Inter-ion spacing used for shuttling-distance estimates.
    """

    head_size: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.head_size < 2:
            raise DeviceError("the laser head must cover at least 2 ions")
        if self.head_size > self.num_qubits:
            raise DeviceError(
                f"head size {self.head_size} exceeds chain length "
                f"{self.num_qubits}"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def max_gate_span(self) -> int:
        """Largest physical distance a two-qubit gate may span (head_size - 1)."""
        return self.head_size - 1

    @property
    def num_head_positions(self) -> int:
        """Number of distinct head positions along the tape."""
        return self.num_qubits - self.head_size + 1

    def head_positions(self) -> range:
        """Valid head positions (leftmost ion index under the head)."""
        return range(self.num_head_positions)

    def window(self, position: int) -> range:
        """The ion indices covered by the head at *position*."""
        if position not in self.head_positions():
            raise DeviceError(
                f"head position {position} outside valid range "
                f"[0, {self.num_head_positions - 1}]"
            )
        return range(position, position + self.head_size)

    def is_executable(self, qubit_a: int, qubit_b: int) -> bool:
        """A 2q gate is executable iff both ions fit under one head window."""
        self.validate_qubit(qubit_a)
        self.validate_qubit(qubit_b)
        return abs(qubit_a - qubit_b) <= self.max_gate_span

    def gate_in_window(self, qubits: tuple[int, ...], position: int) -> bool:
        """True if every qubit of a gate lies under the head at *position*."""
        window = self.window(position)
        return all(q in window for q in qubits)

    def positions_covering(self, qubits: tuple[int, ...]) -> range:
        """All head positions whose window covers every qubit in *qubits*.

        Returns an empty range when the qubits cannot be covered by a single
        window (i.e. the gate is not executable).  An empty qubit tuple (a
        global barrier constrains no ions) is vacuously covered everywhere,
        so the full head-position range is returned.
        """
        if not qubits:
            return self.head_positions()
        lo, hi = min(qubits), max(qubits)
        if hi - lo > self.max_gate_span:
            return range(0)
        first = max(0, hi - self.head_size + 1)
        last = min(self.num_head_positions - 1, lo)
        return range(first, last + 1)

    def move_distance_um(self, from_position: int, to_position: int) -> float:
        """Physical tape travel (micrometres) between two head positions."""
        return abs(to_position - from_position) * self.ion_spacing_um

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"TILT device: {self.num_qubits}-ion tape, head size "
            f"{self.head_size}, {self.num_head_positions} head positions"
        )


def tilt_16(num_qubits: int = 64) -> TiltDevice:
    """The paper's primary configuration: head of 16 lasers."""
    return TiltDevice(num_qubits=num_qubits, head_size=16)


def tilt_32(num_qubits: int = 64) -> TiltDevice:
    """The paper's larger configuration: head of 32 lasers."""
    return TiltDevice(num_qubits=num_qubits, head_size=32)
