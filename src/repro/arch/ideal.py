"""Ideal trapped-ion device.

An "Ideal TI" device (Section VI-B of the paper) has enough individual laser
controls for every ion: any pair of qubits can interact directly, so neither
swap insertion nor tape movement is ever needed.  It serves as the upper
bound the TILT compiler is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import DeviceSpec


@dataclass(frozen=True)
class IdealTrappedIonDevice(DeviceSpec):
    """Fully connected trapped-ion device (one laser pair per ion)."""

    def is_executable(self, qubit_a: int, qubit_b: int) -> bool:
        """Every pair of distinct qubits can interact directly."""
        self.validate_qubit(qubit_a)
        self.validate_qubit(qubit_b)
        return qubit_a != qubit_b

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"Ideal trapped-ion device: {self.num_qubits} fully connected ions"
