"""Experiment drivers: one function per figure / table of the paper.

Every driver takes a ``scale`` argument:

* ``"paper"`` — the exact workload sizes of the paper (64/78-qubit circuits,
  head sizes 16 and 32).  A full paper-scale run of every experiment takes a
  few minutes of pure-Python compilation.
* ``"small"`` — the same circuit families at roughly one quarter of the
  width (16/20 qubits, head sizes 4 and 8), preserving the head/chain ratio
  so every qualitative effect survives.  This is the default for the test
  suite and the benchmark harness.

The scale can also be forced globally through the ``TILT_REPRO_SCALE``
environment variable, which is how ``pytest benchmarks/`` is switched to
paper scale for the numbers recorded in EXPERIMENTS.md.

All drivers route through the :mod:`repro.exec` batch engine: each figure
or table assembles its full set of (circuit, device, config, noise) jobs
and submits them in one batch, so the engine can deduplicate and cache
points and — with ``workers`` > 1 or ``TILT_REPRO_WORKERS`` set — compile
and simulate independent points concurrently on a process pool.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig
from repro.core.comparison import (
    ArchitectureComparison,
    comparison_from_results,
    comparison_specs,
    tilt_vs_qccd_ratios,
)
from repro.core.sweep import SweepPoint, default_max_swap_lengths, sweep_job
from repro.exceptions import ReproError
from repro.exec import ExecutionEngine, JobSpec, run_jobs
from repro.noise.parameters import NoiseParameters
from repro.workloads.suite import (
    build_workload,
    routing_suite,
    standard_suite,
    suite_qubits,
    table2_rows,
)

#: Environment variable that forces the experiment scale.
SCALE_ENV_VAR = "TILT_REPRO_SCALE"

#: Compiler configuration used for the swap-insertion studies (Figs. 6/7).
#: The trivial initial mapping is used so both routers start from the same
#: placement and the comparison isolates the swap-insertion strategy itself.
ROUTING_STUDY_CONFIG = CompilerConfig(mapper="trivial")


def resolve_scale(scale: str | None = None) -> str:
    """Pick the experiment scale: explicit argument, env var, or 'small'."""
    chosen = scale or os.environ.get(SCALE_ENV_VAR, "small")
    if chosen not in ("small", "paper"):
        raise ReproError(
            f"unknown scale {chosen!r}; expected 'small' or 'paper'"
        )
    return chosen


def head_sizes_for(scale: str, num_qubits: int) -> tuple[int, int]:
    """The two head sizes evaluated at a given scale (paper: 16 and 32)."""
    if scale == "paper":
        return (16, 32)
    quarter = max(4, num_qubits // 4)
    half = max(quarter + 1, num_qubits // 2)
    return (quarter, half)


def primary_head_size(scale: str, num_qubits: int) -> int:
    """The head size used for the single-configuration studies (paper: 16)."""
    return head_sizes_for(scale, num_qubits)[0]


def device_for(scale: str, workload_name: str) -> TiltDevice:
    """The TILT device a workload is compiled to at the given scale."""
    num_qubits = suite_qubits(workload_name, scale)
    return TiltDevice(num_qubits=num_qubits,
                      head_size=primary_head_size(scale, num_qubits))


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def table2(scale: str | None = None) -> list[dict[str, object]]:
    """Benchmark characteristics (Table II)."""
    return table2_rows(resolve_scale(scale))


# ----------------------------------------------------------------------
# Figure 6 — baseline vs LinQ swap insertion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure6Row:
    """One (workload, router) cell of Figure 6."""

    workload: str
    router: str
    num_swaps: int
    num_opposing_swaps: int
    opposing_swap_ratio: float
    num_moves: int
    success_rate: float
    log10_success_rate: float


def figure6(scale: str | None = None,
            noise_params: NoiseParameters | None = None,
            *, workers: int | None = None,
            engine: ExecutionEngine | None = None) -> list[Figure6Row]:
    """Reproduce Figure 6: swap counts, opposing ratio, moves and success.

    Only the long-distance workloads (BV, QFT, SQRT) are included, exactly
    as in the paper; the other applications need no SWAPs.
    """
    scale = resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    cells: list[tuple[str, str]] = []
    specs: list[JobSpec] = []
    for spec in routing_suite():
        circuit = build_workload(spec.name, scale)
        device = device_for(scale, spec.name)
        for router in ("baseline", "linq"):
            config = ROUTING_STUDY_CONFIG.with_overrides(router=router)
            cells.append((spec.name, router))
            specs.append(sweep_job(circuit, device, config, params,
                                   label=f"{spec.name}/{router}"))
    results = run_jobs(specs, workers=workers, engine=engine)
    rows: list[Figure6Row] = []
    for (workload, router), result in zip(cells, results):
        stats = result.stats
        simulation = result.simulation
        rows.append(
            Figure6Row(
                workload=workload,
                router=router,
                num_swaps=stats.num_swaps,
                num_opposing_swaps=stats.num_opposing_swaps,
                opposing_swap_ratio=stats.opposing_swap_ratio,
                num_moves=stats.num_moves,
                success_rate=simulation.success_rate,
                log10_success_rate=simulation.log10_success_rate,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 7 — MaxSwapLen sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure7Row:
    """One (workload, MaxSwapLen) point of Figure 7."""

    workload: str
    max_swap_len: int
    num_swaps: int
    num_moves: int
    success_rate: float
    log10_success_rate: float


def figure7(scale: str | None = None,
            workloads: tuple[str, ...] | None = None,
            noise_params: NoiseParameters | None = None,
            *, workers: int | None = None,
            engine: ExecutionEngine | None = None) -> list[Figure7Row]:
    """Reproduce Figure 7: success/swaps/moves as MaxSwapLen is restricted.

    The whole figure — every workload at every MaxSwapLen — is one engine
    batch, so all points run concurrently when ``workers`` > 1.
    """
    scale = resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    names = workloads or tuple(spec.name for spec in routing_suite())
    cells: list[tuple[str, int]] = []
    specs: list[JobSpec] = []
    for name in names:
        circuit = build_workload(name, scale)
        device = device_for(scale, name)
        for length in default_max_swap_lengths(device):
            cells.append((name, length))
            specs.append(sweep_job(
                circuit, device,
                ROUTING_STUDY_CONFIG.with_overrides(max_swap_len=length),
                params, label=f"{name}/max_swap_len={length}",
            ))
    results = run_jobs(specs, workers=workers, engine=engine)
    rows: list[Figure7Row] = []
    for (name, length), result in zip(cells, results):
        stats = result.stats
        simulation = result.simulation
        rows.append(
            Figure7Row(
                workload=name,
                max_swap_len=length,
                num_swaps=stats.num_swaps,
                num_moves=stats.num_moves,
                success_rate=simulation.success_rate,
                log10_success_rate=simulation.log10_success_rate,
            )
        )
    return rows


def best_max_swap_len(rows: list[Figure7Row], workload: str) -> Figure7Row:
    """The sweet-spot row of a Figure 7 sweep for one workload."""
    candidates = [row for row in rows if row.workload == workload]
    if not candidates:
        raise ReproError(f"no Figure 7 rows for workload {workload!r}")
    return max(candidates, key=lambda row: row.log10_success_rate)


# ----------------------------------------------------------------------
# Figure 8 — architecture comparison
# ----------------------------------------------------------------------
def figure8(scale: str | None = None,
            workloads: tuple[str, ...] | None = None,
            noise_params: NoiseParameters | None = None,
            *, workers: int | None = None,
            engine: ExecutionEngine | None = None,
            ) -> list[ArchitectureComparison]:
    """Reproduce Figure 8: TILT (two head sizes) vs Ideal TI vs QCCD.

    All architectures of all workloads form one engine batch.
    """
    scale = resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    names = workloads or tuple(spec.name for spec in standard_suite())
    per_workload: list[tuple[str, int]] = []
    specs: list[JobSpec] = []
    for name in names:
        circuit = build_workload(name, scale)
        width = circuit.num_qubits
        head_sizes = head_sizes_for(scale, width)
        if scale == "paper":
            capacities: tuple[int, ...] = (17, 25, 33)
        else:
            capacities = (max(3, width // 4), max(4, width // 3), max(5, width // 2))
        workload_specs = comparison_specs(
            circuit,
            head_sizes=head_sizes,
            qccd_trap_capacities=capacities,
            noise_params=params,
        )
        per_workload.append((name, len(workload_specs)))
        specs.extend(workload_specs)
    results = run_jobs(specs, workers=workers, engine=engine)
    comparisons: list[ArchitectureComparison] = []
    offset = 0
    for name, count in per_workload:
        comparison = comparison_from_results(
            name, results[offset:offset + count]
        )
        comparison.circuit_name = name
        comparisons.append(comparison)
        offset += count
    return comparisons


def headline_ratios(comparisons: list[ArchitectureComparison],
                    scale: str | None = None) -> dict[str, float]:
    """The paper's headline "up to X / on average Y" TILT-vs-QCCD ratios.

    Uses the smallest TILT head size present in each comparison (head 16 at
    paper scale); the *scale* argument is accepted for API symmetry.
    """
    del scale  # the per-comparison label lookup does not need it
    return tilt_vs_qccd_ratios(comparisons)


# ----------------------------------------------------------------------
# Table III — compilation results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    """One (workload, head size) row of Table III."""

    workload: str
    head_size: int
    time_swap_s: float
    time_schedule_s: float
    num_moves: int
    move_distance_um: float
    execution_time_s: float


def table3(scale: str | None = None,
           noise_params: NoiseParameters | None = None,
           *, workers: int | None = None,
           engine: ExecutionEngine | None = None) -> list[Table3Row]:
    """Reproduce Table III: compile times, moves, travel and run time.

    Note the compile-time columns are wall-clock measurements from the run
    that produced each point; a cache-served point reports the timings of
    the run that first executed it.
    """
    scale = resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    cells: list[tuple[str, int]] = []
    specs: list[JobSpec] = []
    for spec in standard_suite():
        circuit = build_workload(spec.name, scale)
        width = circuit.num_qubits
        for head_size in head_sizes_for(scale, width):
            device = TiltDevice(num_qubits=width, head_size=head_size)
            cells.append((spec.name, head_size))
            specs.append(sweep_job(circuit, device, CompilerConfig(), params,
                                   label=f"{spec.name}/head={head_size}"))
    results = run_jobs(specs, workers=workers, engine=engine)
    rows: list[Table3Row] = []
    for (workload, head_size), result in zip(cells, results):
        stats = result.stats
        simulation = result.simulation
        rows.append(
            Table3Row(
                workload=workload,
                head_size=head_size,
                time_swap_s=stats.time_swap_s,
                time_schedule_s=stats.time_schedule_s,
                num_moves=stats.num_moves,
                move_distance_um=stats.move_distance_um,
                execution_time_s=simulation.execution_time_s,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_mapper(scale: str | None = None,
                    workload: str = "QFT",
                    *, workers: int | None = None,
                    engine: ExecutionEngine | None = None,
                    ) -> dict[str, SweepPoint]:
    """Effect of the initial-mapping heuristic on one routing workload."""
    from repro.core.sweep import mapper_sweep

    scale = resolve_scale(scale)
    circuit = build_workload(workload, scale)
    device = device_for(scale, workload)
    return mapper_sweep(circuit, device, workers=workers, engine=engine)


def ablation_lookahead(scale: str | None = None,
                       workload: str = "QFT",
                       *, workers: int | None = None,
                       engine: ExecutionEngine | None = None,
                       ) -> list[SweepPoint]:
    """Effect of the Eq. 1 lookahead window on one routing workload."""
    from repro.core.sweep import lookahead_sweep

    scale = resolve_scale(scale)
    circuit = build_workload(workload, scale)
    device = device_for(scale, workload)
    return lookahead_sweep(circuit, device,
                           base_config=ROUTING_STUDY_CONFIG,
                           workers=workers, engine=engine)
