"""Plain-text table rendering for experiment output.

The experiment drivers return lists of dataclasses / dicts; these helpers
turn them into aligned ASCII tables so the benchmark harness and the
EXPERIMENTS.md generator can print exactly what the paper tabulates without
any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render *rows* under *headers* as an aligned monospace table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * widths[i] for i in range(len(headers)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered_rows
    ]
    return "\n".join([line, separator, *body])


def format_records(records: Sequence[Mapping[str, object]],
                   columns: Sequence[str] | None = None) -> str:
    """Render a list of dicts, optionally restricted/ordered by *columns*."""
    if not records:
        return "(no rows)"
    keys = list(columns) if columns else list(records[0].keys())
    rows = [[record.get(key, "") for key in keys] for record in records]
    return format_table(keys, rows)


def _render(cell: object) -> str:
    """Human-friendly cell formatting (scientific notation for tiny floats)."""
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e6:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
