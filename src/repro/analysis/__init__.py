"""Experiment drivers and reporting for every figure/table of the paper."""

from repro.analysis.convergence import (
    ConvergenceRow,
    convergence_study,
    sampled_figure8,
)
from repro.analysis.experiments import (
    Figure6Row,
    Figure7Row,
    Table3Row,
    ablation_lookahead,
    ablation_mapper,
    best_max_swap_len,
    figure6,
    figure7,
    figure8,
    head_sizes_for,
    headline_ratios,
    primary_head_size,
    resolve_scale,
    table2,
    table3,
)
from repro.analysis.report import (
    convergence_report,
    figure6_report,
    figure7_report,
    figure8_report,
    full_report,
    table2_report,
    table3_report,
)
from repro.analysis.tables import format_records, format_table

__all__ = [
    "ConvergenceRow",
    "Figure6Row",
    "Figure7Row",
    "Table3Row",
    "ablation_lookahead",
    "ablation_mapper",
    "best_max_swap_len",
    "convergence_report",
    "convergence_study",
    "figure6",
    "figure6_report",
    "figure7",
    "figure7_report",
    "figure8",
    "figure8_report",
    "format_records",
    "format_table",
    "full_report",
    "head_sizes_for",
    "headline_ratios",
    "primary_head_size",
    "resolve_scale",
    "sampled_figure8",
    "table2",
    "table2_report",
    "table3",
    "table3_report",
]
