"""Assemble the full experiment report.

``python -m repro.analysis.report [--scale paper|small]`` regenerates every
table and figure of the paper from scratch and prints them as text tables —
this is the script whose paper-scale output is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro.analysis import experiments
from repro.analysis.tables import format_records, format_table


def _rows_of(dataclass_rows: list[object]) -> list[dict[str, object]]:
    return [dataclasses.asdict(row) for row in dataclass_rows]


def table2_report(scale: str | None = None) -> str:
    """Table II: benchmark characteristics."""
    rows = experiments.table2(scale)
    return "Table II — benchmark characteristics\n" + format_records(
        rows,
        ["application", "qubits", "two_qubit_gates", "paper_two_qubit_gates",
         "communication"],
    )


def figure6_report(scale: str | None = None) -> str:
    """Figure 6: baseline vs LinQ swap insertion."""
    rows = _rows_of(experiments.figure6(scale))
    return "Figure 6 — LinQ vs baseline swap insertion\n" + format_records(
        rows,
        ["workload", "router", "num_swaps", "num_opposing_swaps",
         "opposing_swap_ratio", "num_moves", "success_rate",
         "log10_success_rate"],
    )


def figure7_report(scale: str | None = None) -> str:
    """Figure 7: MaxSwapLen sweep."""
    rows = _rows_of(experiments.figure7(scale))
    return "Figure 7 — MaxSwapLen sweep\n" + format_records(
        rows,
        ["workload", "max_swap_len", "num_swaps", "num_moves",
         "success_rate", "log10_success_rate"],
    )


def figure8_report(scale: str | None = None) -> str:
    """Figure 8: architecture comparison plus headline ratios."""
    comparisons = experiments.figure8(scale)
    rows = []
    for comparison in comparisons:
        for architecture, result in comparison.results.items():
            rows.append(
                {
                    "workload": comparison.circuit_name,
                    "architecture": architecture,
                    "success_rate": result.success_rate,
                    "log10_success_rate": result.log10_success_rate,
                    "num_moves": result.num_moves,
                    "execution_time_s": result.execution_time_s,
                }
            )
    ratios = experiments.headline_ratios(comparisons, scale)
    ratio_rows = [[name, value] for name, value in ratios.items()]
    return (
        "Figure 8 — architecture comparison\n"
        + format_records(
            rows,
            ["workload", "architecture", "success_rate",
             "log10_success_rate", "num_moves", "execution_time_s"],
        )
        + "\n\nHeadline TILT-vs-QCCD success ratios\n"
        + format_table(["workload", "ratio"], ratio_rows)
    )


def convergence_report(scale: str | None = None) -> str:
    """Stochastic sampling: sampled-vs-analytic convergence + Figure 8."""
    from repro.analysis.convergence import convergence_report as build

    return build(scale)


def scenarios_report(scale: str | None = None) -> str:
    """Correlated-noise scenarios: comparison, attribution and figure."""
    from repro.analysis.scenario_study import scenarios_report as build

    return build(scale)


def search_report(scale: str | None = None) -> str:
    """Design-space search: grid vs successive halving, Pareto front."""
    from repro.analysis.search_study import search_report as build

    return build(scale)


def table3_report(scale: str | None = None) -> str:
    """Table III: compilation results."""
    rows = _rows_of(experiments.table3(scale))
    return "Table III — LinQ compilation results\n" + format_records(
        rows,
        ["workload", "head_size", "time_swap_s", "time_schedule_s",
         "num_moves", "move_distance_um", "execution_time_s"],
    )


def full_report(scale: str | None = None) -> str:
    """Every experiment, concatenated."""
    scale = experiments.resolve_scale(scale)
    sections = []
    for builder in (table2_report, figure6_report, figure7_report,
                    figure8_report, table3_report):
        start = time.perf_counter()
        body = builder(scale)
        elapsed = time.perf_counter() - start
        sections.append(f"{body}\n(section generated in {elapsed:.1f} s)")
    header = f"TILT reproduction report — scale: {scale}"
    return ("\n\n" + "=" * 72 + "\n\n").join([header, *sections])


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "paper"), default=None,
                        help="workload scale (default: TILT_REPRO_SCALE or "
                             "'small')")
    parser.add_argument("--section", default="all",
                        choices=("all", "table2", "figure6", "figure7",
                                 "figure8", "table3", "convergence",
                                 "scenarios", "search"),
                        help="generate only one section ('convergence' is "
                             "the stochastic-sampling study, 'scenarios' "
                             "the correlated-noise comparison and 'search' "
                             "the design-space search study; none is part "
                             "of 'all')")
    args = parser.parse_args(argv)
    builders = {
        "table2": table2_report,
        "figure6": figure6_report,
        "figure7": figure7_report,
        "figure8": figure8_report,
        "table3": table3_report,
        "convergence": convergence_report,
        "scenarios": scenarios_report,
        "search": search_report,
    }
    if args.section == "all":
        print(full_report(args.scale))
    else:
        print(builders[args.section](args.scale))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    raise SystemExit(main())
