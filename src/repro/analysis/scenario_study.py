"""Correlated-noise scenario comparison and fidelity attribution.

Runs every workload under every registered (or requested) noise scenario
through the :mod:`repro.exec` batch engine, then decomposes the fidelity
loss by mechanism: how many decades of success rate does crosstalk cost,
how many does leakage cost, how many do heating bursts cost, and how much
extra do they cost *together* (the interaction term correlated mechanisms
introduce and independent ones cannot).  The study surfaces the
per-mechanism site telemetry each simulator attaches
(``sites_crosstalk``, ``expected_leakage``, ...) and — when ``shots > 0``
— the empirical per-mechanism trigger counters from the stochastic
sampler (shots in which each mechanism fired; for error mechanisms that
is the shot-loss attribution), so analytic attribution and sampled
attribution sit side by side.  Note the ``expected_*`` columns are
first-order expectations at unscaled site probabilities (burst
amplification excluded), while the sampled counters include it — under
burst-heavy scenarios the sampled numbers sit above the expectations
even though the success rates agree exactly.

``python -m repro.analysis.report --section scenarios`` renders the
comparison table, the attribution table and a plain-text bar figure (the
reproduction is deliberately free of plotting dependencies; the figure is
an aligned log10-success bar chart).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis import experiments
from repro.analysis.tables import format_records
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobSpec, run_jobs
from repro.noise.parameters import NoiseParameters
from repro.noise.scenarios import get_scenario
from repro.workloads.suite import build_workload, routing_suite

#: Scenarios the study compares by default (≥ 4 named scenarios).
DEFAULT_SCENARIOS = ("baseline", "crosstalk", "leakage", "heating_burst",
                     "worst_case")

#: Root seed of the sampled columns (matches the convergence study).
DEFAULT_SEED = 2021


@dataclass(frozen=True)
class ScenarioRow:
    """One (workload, scenario) cell of the comparison study."""

    workload: str
    scenario: str
    success_rate: float
    log10_success_rate: float
    loss_decades: float
    num_scenario_sites: int
    expected_crosstalk: float
    expected_leakage: float
    expected_bursts: float
    sampled_success_rate: float | None = None
    sampled_mechanism_shots: dict[str, int] | None = None


@dataclass(frozen=True)
class AttributionRow:
    """Per-mechanism fidelity attribution for one workload.

    ``loss_decades`` is how many decades of log10 success rate the
    mechanism costs on its own; ``share`` normalises it by the sum of
    single-mechanism losses; ``interaction_decades`` (reported on the
    combined row) is the extra loss the mechanisms cause together beyond
    the sum of their solo costs.
    """

    workload: str
    mechanism: str
    loss_decades: float
    share: float
    interaction_decades: float = 0.0


def _scenario_extras(extras: dict[str, float], kind: str) -> float:
    return float(extras.get(f"expected_{kind}", 0.0))


def scenario_comparison(scale: str | None = None,
                        workloads: tuple[str, ...] | None = None,
                        scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
                        shots: int = 0,
                        seed: int = DEFAULT_SEED,
                        noise_params: NoiseParameters | None = None,
                        *, workers: int | None = None,
                        engine: ExecutionEngine | None = None,
                        ) -> list[ScenarioRow]:
    """Run every workload under every scenario (one engine batch).

    With ``shots > 0`` each cell additionally runs the stochastic sampler
    and reports the sampled success rate plus the per-mechanism shot-loss
    telemetry; ``shots = 0`` keeps the study purely analytic.
    """
    scale = experiments.resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    names = workloads or tuple(spec.name for spec in routing_suite())
    for scenario in scenarios:
        get_scenario(scenario)  # fail fast on typos
    cells: list[tuple[str, str]] = []
    specs: list[JobSpec] = []
    # The loss-decades reference always runs, even when the caller's
    # scenario list omits "baseline" — otherwise every row would be its
    # own baseline and report a misleading zero loss.  Deduplication
    # makes the extra job free when baseline is in the list anyway.
    reference_scenarios = tuple(scenarios) + (
        () if "baseline" in scenarios else ("baseline",)
    )
    for name in names:
        circuit = build_workload(name, scale)
        device = experiments.device_for(scale, name)
        for scenario in reference_scenarios:
            cells.append((name, scenario))
            specs.append(JobSpec(
                circuit=circuit, device=device, backend="tilt",
                config=CompilerConfig(), noise=params,
                scenario=scenario,
                shots=shots if scenario in scenarios else 0,
                seed=seed if shots and scenario in scenarios else 0,
                label=f"{name}/{scenario}",
            ))
    results = run_jobs(specs, workers=workers, engine=engine)
    baseline_log10: dict[str, float] = {}
    for (name, scenario), result in zip(cells, results):
        if scenario == "baseline":
            baseline_log10[name] = result.simulation.log10_success_rate
    rows: list[ScenarioRow] = []
    for (name, scenario), result in zip(cells, results):
        if scenario not in scenarios:
            continue  # internal baseline reference only
        simulation = result.simulation
        extras = simulation.extras
        base = baseline_log10.get(name, simulation.log10_success_rate)
        num_scenario_sites = int(
            extras.get("sites_crosstalk", 0.0)
            + extras.get("sites_leakage", 0.0)
            + extras.get("sites_heating_burst", 0.0)
        )
        rows.append(ScenarioRow(
            workload=name,
            scenario=scenario,
            success_rate=simulation.success_rate,
            log10_success_rate=simulation.log10_success_rate,
            loss_decades=base - simulation.log10_success_rate,
            num_scenario_sites=num_scenario_sites,
            expected_crosstalk=_scenario_extras(extras, "crosstalk"),
            expected_leakage=_scenario_extras(extras, "leakage"),
            expected_bursts=_scenario_extras(extras, "heating_burst"),
            sampled_success_rate=(
                result.shot.success_rate if result.shot is not None else None
            ),
            sampled_mechanism_shots=(
                result.shot.mechanism_shots
                if result.shot is not None else None
            ),
        ))
    return rows


def attribution_rows(rows: list[ScenarioRow]) -> list[AttributionRow]:
    """Decompose each workload's fidelity loss by mechanism.

    Single-mechanism scenarios attribute their loss to that mechanism;
    multi-mechanism scenarios contribute a combined row whose
    ``interaction_decades`` is the loss beyond the sum of the solo
    losses.  ``loss_decades`` is already baseline-relative
    (:func:`scenario_comparison` always runs an internal baseline
    reference), so the caller's scenario list need not include
    ``"baseline"``.
    """
    by_workload: dict[str, dict[str, ScenarioRow]] = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.scenario] = row
    attribution: list[AttributionRow] = []
    for workload, cells in by_workload.items():
        # keyed by scenario name, not mechanism: two single-mechanism
        # scenarios probing the same mechanism at different strengths
        # must both appear rather than silently overwrite each other
        singles: list[tuple[str, str, float]] = []
        combined: list[tuple[str, float]] = []
        for scenario_name, row in cells.items():
            if scenario_name == "baseline":
                continue
            mechanisms = get_scenario(scenario_name).mechanisms
            if len(mechanisms) == 1:
                singles.append((scenario_name, mechanisms[0],
                                row.loss_decades))
            elif mechanisms:
                combined.append((scenario_name, row.loss_decades))
        mechanism_multiplicity: dict[str, int] = {}
        for _, mechanism, _ in singles:
            mechanism_multiplicity[mechanism] = (
                mechanism_multiplicity.get(mechanism, 0) + 1
            )
        total_single = sum(loss for _, _, loss in singles)
        for scenario_name, mechanism, loss in singles:
            label = (mechanism if mechanism_multiplicity[mechanism] == 1
                     else f"{mechanism} ({scenario_name})")
            attribution.append(AttributionRow(
                workload=workload,
                mechanism=label,
                loss_decades=loss,
                share=(loss / total_single) if total_single > 0 else 0.0,
            ))
        # The interaction reference is the solo cost of the mechanisms
        # the combined scenario actually enables (strongest probe per
        # mechanism when several solo scenarios share one) — subtracting
        # unrelated mechanisms' solo losses would push the term negative.
        solo_best: dict[str, float] = {}
        for _, mechanism, loss in singles:
            solo_best[mechanism] = max(solo_best.get(mechanism, 0.0), loss)
        for scenario_name, loss in combined:
            mechanisms = get_scenario(scenario_name).mechanisms
            if all(m in solo_best for m in mechanisms):
                label = f"combined ({scenario_name})"
                interaction = loss - sum(solo_best[m] for m in mechanisms)
            else:
                # without a solo row per enabled mechanism there is
                # nothing sound to subtract; reporting the full loss as
                # "interaction" would wildly overstate the coupling
                label = f"combined ({scenario_name}; no solo reference)"
                interaction = 0.0
            attribution.append(AttributionRow(
                workload=workload,
                mechanism=label,
                loss_decades=loss,
                share=1.0,
                interaction_decades=interaction,
            ))
    return attribution


# ----------------------------------------------------------------------
# The plain-text figure
# ----------------------------------------------------------------------
_BAR_WIDTH = 44


def scenario_figure(rows: list[ScenarioRow]) -> str:
    """Aligned bar chart of log10 success rate per (workload, scenario).

    Bars grow with fidelity *loss* (more decades below the workload's
    baseline → longer bar), so the correlated mechanisms' damage is
    visible at a glance without a plotting dependency.
    """
    if not rows:
        return "(no rows)"
    worst = max(
        (row.loss_decades for row in rows if row.loss_decades > 0),
        default=1.0,
    )
    name_width = max(len(row.workload) for row in rows)
    scenario_width = max(len(row.scenario) for row in rows)
    lines = [
        "Figure S1 — fidelity loss by noise scenario "
        "(bar length ∝ decades of success rate lost vs baseline)",
    ]
    last_workload = None
    for row in rows:
        if row.workload != last_workload and last_workload is not None:
            lines.append("")
        last_workload = row.workload
        filled = 0
        if worst > 0 and row.loss_decades > 0:
            filled = max(1, round(_BAR_WIDTH * row.loss_decades / worst))
        bar = "#" * filled
        lines.append(
            f"{row.workload:<{name_width}}  {row.scenario:<{scenario_width}}  "
            f"log10={row.log10_success_rate:8.3f}  "
            f"|{bar:<{_BAR_WIDTH}}| -{row.loss_decades:.3f} dec"
        )
    return "\n".join(lines)


_COMPARISON_COLUMNS = [
    "workload", "scenario", "success_rate", "log10_success_rate",
    "loss_decades", "num_scenario_sites", "expected_crosstalk",
    "expected_leakage", "expected_bursts",
]

_ATTRIBUTION_COLUMNS = [
    "workload", "mechanism", "loss_decades", "share", "interaction_decades",
]


def scenarios_report(scale: str | None = None,
                     workloads: tuple[str, ...] | None = None,
                     scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
                     shots: int = 0,
                     *, workers: int | None = None,
                     engine: ExecutionEngine | None = None) -> str:
    """Comparison table + per-mechanism attribution table + text figure."""
    rows = scenario_comparison(scale, workloads=workloads,
                               scenarios=scenarios, shots=shots,
                               workers=workers, engine=engine)
    comparison_records = [dataclasses.asdict(row) for row in rows]
    columns = list(_COMPARISON_COLUMNS)
    if shots:
        columns.append("sampled_success_rate")
    attribution_records = [
        dataclasses.asdict(row) for row in attribution_rows(rows)
    ]
    return (
        "Noise-scenario comparison — analytic success under correlated "
        "noise (TILT toolflow)\n"
        + format_records(comparison_records, columns)
        + "\n\nPer-mechanism fidelity attribution (decades of log10 "
        "success rate lost)\n"
        + format_records(attribution_records, _ATTRIBUTION_COLUMNS)
        + "\n\n"
        + scenario_figure(rows)
    )
