"""Sampled-vs-analytic convergence analysis for the stochastic subsystem.

Two studies over the :mod:`repro.sim.stochastic` Monte-Carlo sampler:

* :func:`convergence_study` — for each workload, sample the tilt toolflow
  at an increasing shot schedule and tabulate the sampled success rate
  with its 95 % Wilson confidence interval next to the analytic Eq. 4
  rate.  As shots grow, the interval tightens around the analytic value
  (the sampler estimates exactly the product-of-fidelities probability,
  so this is a statistical regression test of the whole plumbing).
* :func:`sampled_figure8` — the paper's Figure 8 architecture comparison
  (TILT head sizes, Ideal TI, QCCD candidates) rerun with sampled noise,
  one confidence-interval row per architecture.

Both studies route through the :mod:`repro.exec` engine, so every
(workload × shots) or (workload × architecture) cell is one cached,
poolable job.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis import experiments
from repro.analysis.tables import format_records
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobSpec, run_jobs
from repro.noise.parameters import NoiseParameters
from repro.workloads.suite import build_workload, routing_suite

#: Default root seed of the convergence studies (the paper's year, like RCS).
DEFAULT_SEED = 2021

#: Default shot schedule: one decade per step.
DEFAULT_SHOT_SCHEDULE = (100, 1000, 10000)


@dataclass(frozen=True)
class ConvergenceRow:
    """One (workload, architecture, shots) cell of a convergence table."""

    workload: str
    architecture: str
    shots: int
    sampled_success_rate: float
    ci_low: float
    ci_high: float
    analytic_success_rate: float
    within_ci: bool
    mean_errors_per_shot: float


def _row_from_result(workload: str, result) -> ConvergenceRow:
    shot = result.shot
    analytic = result.simulation
    low, high = shot.confidence_interval
    return ConvergenceRow(
        workload=workload,
        architecture=shot.architecture,
        shots=shot.shots,
        sampled_success_rate=shot.success_rate,
        ci_low=low,
        ci_high=high,
        analytic_success_rate=analytic.success_rate,
        within_ci=shot.agrees_with_analytic(analytic.success_rate),
        mean_errors_per_shot=shot.mean_errors_per_shot,
    )


def convergence_study(scale: str | None = None,
                      workloads: tuple[str, ...] | None = None,
                      shot_schedule: tuple[int, ...] = DEFAULT_SHOT_SCHEDULE,
                      seed: int = DEFAULT_SEED,
                      noise_params: NoiseParameters | None = None,
                      *, workers: int | None = None,
                      engine: ExecutionEngine | None = None,
                      ) -> list[ConvergenceRow]:
    """Sampled-vs-analytic success rate on TILT at growing shot counts.

    Every (workload, shots) pair is one engine job; the whole study is a
    single batch.
    """
    scale = experiments.resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    names = workloads or tuple(spec.name for spec in routing_suite())
    cells: list[str] = []
    specs: list[JobSpec] = []
    for name in names:
        circuit = build_workload(name, scale)
        device = experiments.device_for(scale, name)
        for shots in shot_schedule:
            cells.append(name)
            specs.append(JobSpec(
                circuit=circuit, device=device, backend="tilt",
                config=CompilerConfig(), noise=params,
                shots=shots, seed=seed,
                label=f"{name}/shots={shots}",
            ))
    results = run_jobs(specs, workers=workers, engine=engine)
    return [
        _row_from_result(name, result)
        for name, result in zip(cells, results)
    ]


def sampled_figure8(scale: str | None = None,
                    workloads: tuple[str, ...] | None = None,
                    shots: int = 4096,
                    seed: int = DEFAULT_SEED,
                    noise_params: NoiseParameters | None = None,
                    *, workers: int | None = None,
                    engine: ExecutionEngine | None = None,
                    ) -> list[ConvergenceRow]:
    """Figure 8's architecture comparison rerun with sampled noise.

    Reuses :func:`repro.core.comparison.comparison_specs` for the job
    set (TILT head sizes, Ideal TI, QCCD trap-capacity candidates) and
    switches every spec to stochastic sampling, so each architecture row
    reports a sampled success rate with its confidence interval next to
    the analytic value.
    """
    from repro.core.comparison import comparison_specs

    scale = experiments.resolve_scale(scale)
    params = noise_params or NoiseParameters.paper_defaults()
    names = workloads or tuple(
        spec.name for spec in routing_suite()
    )
    cells: list[str] = []
    specs: list[JobSpec] = []
    for name in names:
        circuit = build_workload(name, scale)
        width = circuit.num_qubits
        head_sizes = experiments.head_sizes_for(scale, width)
        if scale == "paper":
            capacities: tuple[int, ...] = (17, 25, 33)
        else:
            capacities = (max(3, width // 4), max(5, width // 2))
        for spec in comparison_specs(circuit, head_sizes=head_sizes,
                                     qccd_trap_capacities=capacities,
                                     noise_params=params):
            cells.append(name)
            specs.append(dataclasses.replace(spec, shots=shots, seed=seed))
    results = run_jobs(specs, workers=workers, engine=engine)
    return [
        _row_from_result(name, result)
        for name, result in zip(cells, results)
    ]


_COLUMNS = [
    "workload", "architecture", "shots", "sampled_success_rate",
    "ci_low", "ci_high", "analytic_success_rate", "within_ci",
    "mean_errors_per_shot",
]


def convergence_report(scale: str | None = None,
                       shot_schedule: tuple[int, ...] = DEFAULT_SHOT_SCHEDULE,
                       seed: int = DEFAULT_SEED,
                       *, workers: int | None = None,
                       engine: ExecutionEngine | None = None) -> str:
    """Text tables: shot-schedule convergence plus the sampled Figure 8."""
    convergence_rows = [
        dataclasses.asdict(row)
        for row in convergence_study(scale, shot_schedule=shot_schedule,
                                     seed=seed, workers=workers,
                                     engine=engine)
    ]
    figure8_rows = [
        dataclasses.asdict(row)
        for row in sampled_figure8(scale, shots=max(shot_schedule),
                                   seed=seed, workers=workers, engine=engine)
    ]
    return (
        "Stochastic convergence — sampled vs analytic success rate "
        "(95% Wilson CI)\n"
        + format_records(convergence_rows, _COLUMNS)
        + "\n\nFigure 8 with sampled noise\n"
        + format_records(figure8_rows, _COLUMNS)
    )
