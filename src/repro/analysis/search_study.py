"""Design-space search study (``--section search``).

Runs the same design space — MaxSwapLen x correlated-noise scenario for
one routing workload — under the exhaustive grid strategy and under
successive halving, then renders what the subsystem adds over the ad-hoc
per-knob loops: a strategy comparison (evaluations, engine jobs, cache
hits, agreement on the best configuration), the multi-objective Pareto
table (log10 success vs execution time vs transport work), the per-knob
sensitivity attribution, and a dependency-free text scatter of the
objective plane with the Pareto front marked.

``python -m repro.analysis.search_study [--out search-pareto.json]`` is
the CI smoke entry point: it prints the report and archives the full
:meth:`~repro.search.SearchResult.to_json` payload (points, rungs,
sensitivity and the engine-stats delta, so cache-hit-rate regressions
are visible) next to the benchmark artifacts.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import tempfile

from repro.analysis import experiments
from repro.analysis.tables import format_records
from repro.core.sweep import default_max_swap_lengths
from repro.exec import ExecutionEngine
from repro.noise.parameters import NoiseParameters
from repro.search import (
    GridStrategy,
    SearchResult,
    SearchSpace,
    SuccessiveHalvingStrategy,
    config_knob,
    run_search,
    scenario_knob,
)
from repro.workloads.suite import build_workload

#: Full-fidelity shot budget of the study (kept small: this is CI smoke).
DEFAULT_SHOTS = 512

#: Root seed of the sampled evaluations (matches the other studies).
DEFAULT_SEED = 2021

#: Scenario axis of the default study space.
DEFAULT_SCENARIOS = ("baseline", "crosstalk")


def study_space(scale: str | None = None, workload: str = "QFT",
                shots: int = DEFAULT_SHOTS,
                scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
                noise_params: NoiseParameters | None = None) -> SearchSpace:
    """The default study space: MaxSwapLen x scenario for one workload."""
    scale = experiments.resolve_scale(scale)
    circuit = build_workload(workload, scale)
    device = experiments.device_for(scale, workload)
    lengths = default_max_swap_lengths(device)
    return SearchSpace(
        circuit=circuit,
        device=device,
        knobs=[
            config_knob("max_swap_len", lengths),
            scenario_knob(scenarios),
        ],
        config=experiments.ROUTING_STUDY_CONFIG,
        noise=noise_params or NoiseParameters.paper_defaults(),
        shots=shots,
        seed=DEFAULT_SEED,
        shards=4,
    )


def search_study(scale: str | None = None, *,
                 shots: int = DEFAULT_SHOTS,
                 workers: int | None = None,
                 store_root: str | None = None) -> dict[str, SearchResult]:
    """Grid and successive halving over the same space, fresh engine each.

    Separate engines keep the job accounting honest: the comparison
    shows what each strategy costs from cold, not what it costs after
    the other strategy warmed a shared cache.

    The grid strategy runs *durably* — through a
    :class:`~repro.exec.RunStore` at ``store_root`` (or a throwaway
    temporary store when none is given) — so the report always carries a
    real run manifest and ``--store`` makes the study resumable: rerun
    with the same directory and completed jobs are skipped.
    """
    space = study_space(scale, shots=shots)
    results: dict[str, SearchResult] = {}
    with tempfile.TemporaryDirectory(prefix="search-store-") as scratch:
        grid_root = store_root if store_root is not None else scratch
        results["grid"] = run_search(
            space, GridStrategy(), store=grid_root, workers=workers,
        )
        if store_root is None and results["grid"].manifest is not None:
            # mark the scratch store so the report hides its random path
            results["grid"].manifest.extra["throwaway_store"] = True
        engine = ExecutionEngine(workers=1 if workers is None else workers)
        halving = SuccessiveHalvingStrategy()
        results[halving.name] = run_search(space, halving, engine=engine)
    return results


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def strategy_table(results: dict[str, SearchResult]) -> str:
    """Per-strategy cost and outcome comparison."""
    records = []
    for name, result in results.items():
        stats = result.engine_stats or {}
        best = result.best()
        records.append({
            "strategy": name,
            "evaluations": len(result.points),
            "engine_jobs": result.num_jobs,
            "jobs_executed": int(stats.get("jobs_executed", 0)),
            "cache_hit_rate": stats.get("cache_hit_rate", 0.0),
            "pareto_size": len(result.pareto_front()),
            "best": ", ".join(f"{k}={v}" for k, v in best.assignments.items()),
            "best_log10": best.log10_success,
        })
    return format_records(records)


def pareto_table(result: SearchResult) -> str:
    """Every full-fidelity point with its objectives and front membership."""
    front = {point.candidate for point in result.pareto_front()}
    records = []
    for point in result.points:
        record: dict[str, object] = dict(point.assignments)
        record.update({
            "success_rate": point.success_rate,
            "log10_success": point.log10_success,
            "execution_time_s": point.execution_time_s,
            "transport_ops": point.transport_ops,
            "shots": point.shots,
            "pareto": "*" if point.candidate in front else "",
        })
        records.append(record)
    return format_records(records)


def sensitivity_table(result: SearchResult) -> str:
    """Per-knob marginal attribution (which knob moves success most)."""
    records = []
    for row in result.sensitivity():
        finite = {k: v for k, v in row.per_value.items() if math.isfinite(v)}
        best = max(finite, key=finite.get) if finite else "-"
        worst = min(finite, key=finite.get) if finite else "-"
        records.append({
            "knob": row.knob,
            "range_decades": row.range_decades,
            "best_value": best,
            "worst_value": worst,
        })
    return format_records(
        records, ["knob", "range_decades", "best_value", "worst_value"]
    )


#: Text-scatter geometry (kept odd-ish so axis labels line up).
_SCATTER_WIDTH = 60
_SCATTER_HEIGHT = 14


def pareto_scatter(result: SearchResult) -> str:
    """Dependency-free scatter of the objective plane.

    x is estimated execution time, y is log10 success; ``*`` marks
    Pareto-front members and ``o`` dominated points.  Points with a
    non-finite score (sampled zero successes) are dropped and counted in
    the caption.
    """
    finite = [p for p in result.points if math.isfinite(p.log10_success)]
    dropped = len(result.points) - len(finite)
    if not finite:
        return "(no finite points to plot)"
    front = {p.candidate for p in result.pareto_front()}
    xs = [p.execution_time_s for p in finite]
    ys = [p.log10_success for p in finite]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    cells = [[" "] * _SCATTER_WIDTH for _ in range(_SCATTER_HEIGHT)]
    for point in finite:
        column = round(
            (point.execution_time_s - x_lo) / x_span * (_SCATTER_WIDTH - 1)
        )
        row = round(
            (y_hi - point.log10_success) / y_span * (_SCATTER_HEIGHT - 1)
        )
        mark = "*" if point.candidate in front else "o"
        if cells[row][column] != "*":  # front members win shared cells
            cells[row][column] = mark
    lines = [
        "Figure S2 — objective plane (x: execution time s, "
        "y: log10 success; * = Pareto front)"
    ]
    if dropped:
        lines.append(f"({dropped} point(s) with zero sampled successes "
                     "not plotted)")
    for index, row_cells in enumerate(cells):
        if index == 0:
            label = f"{y_hi:9.3f} "
        elif index == _SCATTER_HEIGHT - 1:
            label = f"{y_lo:9.3f} "
        else:
            label = " " * 10
        lines.append(label + "|" + "".join(row_cells))
    lines.append(" " * 10 + "+" + "-" * _SCATTER_WIDTH)
    lines.append(" " * 10 + f"{x_lo:<10.4f}" + " " *
                 (_SCATTER_WIDTH - 20) + f"{x_hi:>10.4f}")
    return "\n".join(lines)


def manifest_summary(result: SearchResult) -> list[str]:
    """Render the run manifest of a durable search (empty when absent).

    The store path is hidden for the study's default throwaway store
    (flagged in ``manifest.extra`` by :func:`search_study`): its random
    temp path would make two otherwise-identical reports differ, and
    the report contract is byte-identical output across reruns and
    worker/backend splits.  A user-supplied ``--store`` path — even one
    under the system temp dir — is always shown, since that is the path
    to resume from.
    """
    manifest = result.manifest
    if manifest is None:
        return []
    throwaway = bool(manifest.extra.get("throwaway_store"))
    provenance = manifest.provenance
    commit = provenance.get("git_commit") or "unknown"
    dirty = provenance.get("git_dirty")
    commit_line = str(commit)[:12] + (" (dirty)" if dirty else "")
    stats = manifest.engine_stats
    # completion counts planned keys only: a reused store may hold keys
    # from other runs, which must not inflate this run's tally
    done = len(set(manifest.spec_keys) & set(manifest.completed_keys))
    return [
        "Run manifest (durable store)",
        f"  store:     "
        f"{'(throwaway temp store)' if throwaway else manifest.store_root}",
        f"  status:    {manifest.status}, "
        f"{done}/{len(manifest.spec_keys)} jobs "
        f"complete ({len(manifest.pending_keys)} pending)",
        f"  backend:   {manifest.backend}",
        f"  engine:    {int(stats.get('jobs_executed', 0))} executed, "
        f"{int(stats.get('cache_hits', 0))} cache hits "
        f"(hit rate {stats.get('cache_hit_rate', 0.0):.2f})",
        f"  source:    commit {commit_line}, "
        f"python {provenance.get('python', '?')}",
        f"  sampling:  seed {provenance.get('seed')}, "
        f"{provenance.get('shots')} shots",
        "",
    ]


def report_from_results(results: dict[str, SearchResult]) -> str:
    """Render the report from already-computed results (no re-run)."""
    grid = results["grid"]
    halving = results["successive_halving"]
    rung_lines = [
        f"  rung {index}: {rung.num_candidates} candidates at "
        f"{rung.shots or 'analytic'} shots -> {rung.promoted} promoted"
        for index, rung in enumerate(halving.rungs)
    ]
    return "\n".join([
        "Design-space search — grid vs successive halving "
        "(MaxSwapLen x noise scenario)",
        strategy_table(results),
        "",
        *manifest_summary(grid),
        "Successive-halving schedule",
        *rung_lines,
        "",
        "Pareto table (grid strategy, full fidelity)",
        pareto_table(grid),
        "",
        "Per-knob sensitivity (marginal mean log10 success)",
        sensitivity_table(grid),
        "",
        pareto_scatter(grid),
    ])


def search_report(scale: str | None = None, *,
                  shots: int = DEFAULT_SHOTS,
                  workers: int | None = None) -> str:
    """The full ``--section search`` report text."""
    return report_from_results(
        search_study(scale, shots=shots, workers=workers)
    )


def write_search_json(path: str | os.PathLike[str],
                      results: dict[str, SearchResult],
                      scale: str) -> None:
    """Archive every strategy's full result payload as one JSON file."""
    payload = {
        "scale": scale,
        "strategies": {
            name: result.to_json() for name, result in results.items()
        },
        # throwaway scratch-store manifests are omitted: their store
        # root is deleted before this writes, so archiving it would bake
        # a dangling, run-random path into an otherwise stable artifact
        "manifests": {
            name: result.manifest.to_json()
            for name, result in results.items()
            if result.manifest is not None
            and not result.manifest.extra.get("throwaway_store")
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the CI search smoke)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "paper"), default=None)
    parser.add_argument("--shots", type=int, default=DEFAULT_SHOTS,
                        help="full-fidelity shot budget (0 = analytic only)")
    parser.add_argument("--workers", type=int, default=None,
                        help="engine process-pool size (default: serial)")
    parser.add_argument("--out", default=None,
                        help="write the search JSON artifact to this path")
    parser.add_argument("--store", default=None,
                        help="durable RunStore directory for the grid "
                             "search (rerun with the same directory to "
                             "resume from completed jobs)")
    args = parser.parse_args(argv)
    scale = experiments.resolve_scale(args.scale)
    results = search_study(scale, shots=args.shots, workers=args.workers,
                           store_root=args.store)
    print(report_from_results(results))
    if args.out:
        write_search_json(args.out, results, scale)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    raise SystemExit(main())
