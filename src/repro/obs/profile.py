"""Opt-in per-job resource profiling attached to ``job.execute`` spans.

Set ``TILT_REPRO_PROFILE=1`` (CPU mode) or
``TILT_REPRO_PROFILE=tracemalloc`` (CPU + Python allocation tracking)
and every *traced* executed job carries a ``profile`` attribute on its
``job.execute`` span:

* ``cpu_user_s`` / ``cpu_system_s`` — process CPU-time deltas from
  :func:`os.times` across the job;
* ``max_rss_kb`` plus minor/major page-fault deltas — from
  :func:`resource.getrusage` where the :mod:`resource` module exists
  (POSIX; the field is simply absent elsewhere);
* in ``tracemalloc`` mode additionally the Python-heap size/peak and
  the top :data:`TOP_ALLOCATIONS` allocation sites grown during the job
  (``file:lineno`` with size/count deltas).

The capture rides the existing trace machinery end to end: in pool
workers the span (profile attrs included) lands in the worker's private
sidecar segment and is merged into the parent trace after the batch —
profiling needs no channel of its own.  ``python -m repro.obs.report``
renders the collected profiles as a per-backend resource table.

Profiling is pure observation: it reads process accounting state and
never touches job inputs or results (bit-identity of profiled vs plain
runs is pinned by ``tests/test_obs.py``).  Like the rest of
``repro.obs`` it is wall-clock-legal under RPR001, and its single piece
of process-wide state — the parsed mode cache below — is a sanctioned
RPR008 channel: the cached value is derived from the environment, which
``fork``/``spawn`` workers inherit identically, so the copy each worker
caches agrees with the parent's by construction.
"""

from __future__ import annotations

import os
import sys
import tracemalloc
from typing import Any

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

__all__ = [
    "PROFILE_ENV_VAR",
    "JobProfiler",
    "profile_enabled",
    "refresh_mode",
    "resolve_mode",
    "start_job_profile",
]

#: Environment variable selecting the profiling mode for executed jobs.
PROFILE_ENV_VAR = "TILT_REPRO_PROFILE"

#: Allocation-site rows kept per job in ``tracemalloc`` mode.
TOP_ALLOCATIONS = 3

#: Env values that leave profiling off / select each mode.
_OFF_VALUES = frozenset({"", "0", "off", "false", "no"})
_TRACEMALLOC_VALUES = frozenset({"tracemalloc", "alloc", "full"})

#: The parsed profiling mode, cached once per process (RPR008 sanctioned
#: channel ``repro.obs.profile._MODE_CACHE``): workers inherit the same
#: environment, so every process resolves — and caches — the same mode.
_MODE_CACHE: dict[str, Any] = {}


def resolve_mode() -> str | None:
    """The active profiling mode: ``None`` (off), ``"cpu"``, or
    ``"tracemalloc"``.

    Parsed from :data:`PROFILE_ENV_VAR` once per process; any value not
    naming the tracemalloc mode enables plain CPU/RSS capture, so
    ``TILT_REPRO_PROFILE=1`` is the common switch.
    """
    if "mode" not in _MODE_CACHE:
        raw = os.environ.get(PROFILE_ENV_VAR, "").strip().lower()
        if raw in _OFF_VALUES:
            mode = None
        elif raw in _TRACEMALLOC_VALUES:
            mode = "tracemalloc"
        else:
            mode = "cpu"
        _MODE_CACHE["mode"] = mode
    return _MODE_CACHE["mode"]


def refresh_mode() -> str | None:
    """Drop the cached mode and re-read the environment (for tests and
    benchmarks toggling :data:`PROFILE_ENV_VAR` mid-process)."""
    _MODE_CACHE.clear()
    return resolve_mode()


def profile_enabled() -> bool:
    return resolve_mode() is not None


def _rss_kb(ru_maxrss: int) -> int:
    """``ru_maxrss`` in KiB (Linux reports KiB, macOS reports bytes)."""
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(ru_maxrss / 1024)
    return int(ru_maxrss)


class JobProfiler:
    """Capture resource deltas across one job.

    Construct before the work, call :meth:`finish` after; the returned
    dict is what lands in ``span.attrs["profile"]``.  Construction in
    ``tracemalloc`` mode starts the interpreter-wide tracer if it is not
    already running and leaves it running (per-process; stopping it
    between jobs would discard the bookkeeping repeated jobs reuse).
    """

    __slots__ = ("mode", "_times", "_rusage", "_snapshot")

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._snapshot = None
        if mode == "tracemalloc":
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            if hasattr(tracemalloc, "reset_peak"):
                tracemalloc.reset_peak()
            self._snapshot = tracemalloc.take_snapshot()
        self._rusage = (resource.getrusage(resource.RUSAGE_SELF)
                        if resource is not None else None)
        self._times = os.times()

    def finish(self) -> dict[str, Any]:
        times = os.times()
        payload: dict[str, Any] = {
            "mode": self.mode,
            "cpu_user_s": times.user - self._times.user,
            "cpu_system_s": times.system - self._times.system,
        }
        if resource is not None and self._rusage is not None:
            usage = resource.getrusage(resource.RUSAGE_SELF)
            payload["max_rss_kb"] = _rss_kb(usage.ru_maxrss)
            payload["minor_faults"] = usage.ru_minflt - self._rusage.ru_minflt
            payload["major_faults"] = usage.ru_majflt - self._rusage.ru_majflt
        if self._snapshot is not None:
            size, peak = tracemalloc.get_traced_memory()
            payload["py_heap_kb"] = round(size / 1024, 1)
            payload["py_peak_kb"] = round(peak / 1024, 1)
            after = tracemalloc.take_snapshot()
            stats = after.compare_to(self._snapshot, "lineno")
            payload["allocations"] = [
                {
                    "site": (f"{os.path.basename(stat.traceback[0].filename)}"
                             f":{stat.traceback[0].lineno}"),
                    "size_kb": round(stat.size_diff / 1024, 1),
                    "count": stat.count_diff,
                }
                for stat in stats[:TOP_ALLOCATIONS]
            ]
        return payload


def start_job_profile() -> JobProfiler | None:
    """A :class:`JobProfiler` when profiling is on, else ``None``.

    The off path is one cached-dict lookup — cheap enough for
    :func:`~repro.exec.backends.execute_spec` to call unconditionally
    on every traced job.
    """
    mode = resolve_mode()
    if mode is None:
        return None
    return JobProfiler(mode)
