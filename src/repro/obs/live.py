"""Live run monitoring: heartbeats, ETA and straggler alerts in-process.

:class:`ProgressMonitor` subscribes to a :class:`~repro.obs.trace.TraceRecorder`
stream (:meth:`~repro.obs.trace.TraceRecorder.subscribe`) and folds the
records the engine is already emitting into running operational state:

* **planned vs completed** — ``engine.cache_lookup`` spans carry how
  many unique jobs each batch will execute; ``job.done`` events count
  them off.  Throughput and ETA come straight from that ledger;
* **rolling cache-hit ratio** — cache hits / jobs submitted, cumulative
  over every batch the monitor has seen;
* **straggler alerts** — a job whose wall time exceeds
  ``straggler_factor`` × the rolling ``straggler_quantile`` latency is
  flagged the moment its ``job.done`` event arrives (not minutes later
  in an offline report), once at least ``min_samples`` jobs grounded
  the quantile;
* **per-backend breakdown** — job counts and wall-time totals keyed by
  the toolchain backend on each ``job.done`` event.

State is surfaced two ways: **heartbeat JSONL** (``TILT_REPRO_LIVE=<path>``
or ``heartbeat_path=``) — machine-readable ``heartbeat`` / ``alert``
records, the health channel a future ``RemoteBackend`` worker will
stream to its coordinator — and an opt-in **single-line stderr
renderer** (``TILT_REPRO_LIVE_STDERR=1``) for humans watching a long
run.

Off-path cost: nothing.  An engine without a live monitor has an empty
listener tuple on its recorder (one truthiness check per record when
tracing is on, no check at all when tracing is off — ``NULL_TRACE``
writes no records).  Monitors only *observe*: results are bit-identical
with monitoring on or off, pinned by ``tests/test_obs.py``.
"""

from __future__ import annotations

import collections
import json
import os
import sys
import threading
import time
from typing import Any, TextIO

from repro.obs.trace import NullRecorder, TraceRecorder

__all__ = [
    "LIVE_ENV_VAR",
    "LIVE_STDERR_ENV_VAR",
    "ProgressMonitor",
    "auto_attach",
]

#: Environment variable naming the heartbeat JSONL file for new engines.
LIVE_ENV_VAR = "TILT_REPRO_LIVE"

#: Environment variable enabling the single-line stderr renderer.
LIVE_STDERR_ENV_VAR = "TILT_REPRO_LIVE_STDERR"

#: Layout marker for heartbeat records.
HEARTBEAT_VERSION = 1

#: Rolling window of job wall times behind quantiles and stragglers.
DURATION_WINDOW = 256


class ProgressMonitor:
    """Fold a live trace-record stream into progress/health state.

    Attach to an *enabled* recorder with :meth:`attach` (or use the
    instance as a context manager); every record the recorder writes is
    then fed to this monitor synchronously.  All state mutation happens
    under one lock, so multi-threaded backends (async executor threads)
    are safe.
    """

    def __init__(self, recorder: TraceRecorder, *,
                 heartbeat_path: str | os.PathLike[str] | None = None,
                 stream: TextIO | None = None,
                 straggler_quantile: float = 0.90,
                 straggler_factor: float = 4.0,
                 min_samples: int = 20) -> None:
        if not recorder.enabled:
            raise ValueError(
                "ProgressMonitor needs an enabled TraceRecorder; there "
                "is nothing to monitor on NULL_TRACE"
            )
        self._recorder = recorder
        self._heartbeat_path = (os.path.abspath(os.fspath(heartbeat_path))
                                if heartbeat_path is not None else None)
        self._stream = stream
        self._straggler_quantile = straggler_quantile
        self._straggler_factor = straggler_factor
        self._min_samples = min_samples
        self._lock = threading.Lock()
        self._attached = False
        self._started_monotonic: float | None = None
        # progress ledger
        self._planned = 0
        self._completed = 0
        self._jobs_seen = 0
        self._cache_hits = 0
        self._deduplicated = 0
        self._batches = 0
        self._alerts = 0
        self._last_fanout: dict[str, Any] | None = None
        self._durations: collections.deque[float] = collections.deque(
            maxlen=DURATION_WINDOW
        )
        self._backends: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "ProgressMonitor":
        self._recorder.subscribe(self._on_record)
        self._attached = True
        return self

    def detach(self) -> None:
        self._recorder.unsubscribe(self._on_record)
        self._attached = False

    def __enter__(self) -> "ProgressMonitor":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    @property
    def heartbeat_path(self) -> str | None:
        return self._heartbeat_path

    # ------------------------------------------------------------------
    # Record stream
    # ------------------------------------------------------------------
    def _on_record(self, record: dict[str, Any]) -> None:
        kind = record.get("kind")
        name = record.get("name")
        if kind == "event" and name == "job.done":
            self._note_job_done(record.get("attrs") or {})
        elif kind == "event" and name == "sampling.planned":
            with self._lock:
                self._last_fanout = dict(record.get("attrs") or {})
        elif kind == "span" and name == "engine.cache_lookup":
            self._note_cache_lookup(record.get("attrs") or {})
        elif kind == "span" and name == "engine.batch":
            self._note_batch_end(record.get("attrs") or {})

    def _note_cache_lookup(self, attrs: dict[str, Any]) -> None:
        with self._lock:
            if self._started_monotonic is None:
                self._started_monotonic = time.monotonic()
            unique = int(attrs.get("unique", 0) or 0)
            hits = int(attrs.get("cache_hits", 0) or 0)
            dupes = int(attrs.get("deduplicated", 0) or 0)
            self._planned += unique
            self._cache_hits += hits
            self._deduplicated += dupes
            self._jobs_seen += unique + hits + dupes

    def _note_job_done(self, attrs: dict[str, Any]) -> None:
        wall = float(attrs.get("wall_time_s", 0.0) or 0.0)
        backend = str(attrs.get("backend", "unknown"))
        with self._lock:
            if self._started_monotonic is None:
                self._started_monotonic = time.monotonic()
            self._completed += 1
            threshold = self._straggler_threshold()
            self._durations.append(wall)
            row = self._backends.setdefault(
                backend, {"jobs": 0.0, "wall_s": 0.0}
            )
            row["jobs"] += 1
            row["wall_s"] += wall
            straggler = threshold is not None and wall > threshold
            if straggler:
                self._alerts += 1
            snapshot = self._snapshot("job")
        if straggler:
            self._emit({
                "v": HEARTBEAT_VERSION,
                "kind": "alert",
                "alert": "straggler",
                "ts": time.time(),
                "pid": os.getpid(),
                "wall_time_s": wall,
                "threshold_s": threshold,
                "spec_key": attrs.get("spec_key"),
                "label": attrs.get("label"),
                "backend": backend,
            })
        self._emit(snapshot)
        self._render(snapshot)

    def _note_batch_end(self, attrs: dict[str, Any]) -> None:
        with self._lock:
            self._batches += 1
            snapshot = self._snapshot("batch")
            snapshot["batch"] = {
                "jobs": attrs.get("jobs"),
                "cache_hits": attrs.get("cache_hits"),
                "deduplicated": attrs.get("deduplicated"),
                "executed": attrs.get("executed"),
            }
        self._emit(snapshot)
        self._render(snapshot, final=True)

    # ------------------------------------------------------------------
    # Derived state (callers hold the lock)
    # ------------------------------------------------------------------
    def _straggler_threshold(self) -> float | None:
        if len(self._durations) < self._min_samples:
            return None
        ordered = sorted(self._durations)
        rank = min(len(ordered) - 1,
                   max(0, int(self._straggler_quantile * len(ordered))))
        return ordered[rank] * self._straggler_factor

    def _snapshot(self, phase: str) -> dict[str, Any]:
        elapsed = (time.monotonic() - self._started_monotonic
                   if self._started_monotonic is not None else 0.0)
        throughput = self._completed / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self._planned - self._completed)
        eta = remaining / throughput if throughput > 0 else None
        snapshot: dict[str, Any] = {
            "v": HEARTBEAT_VERSION,
            "kind": "heartbeat",
            "phase": phase,
            "ts": time.time(),
            "pid": os.getpid(),
            "planned": self._planned,
            "completed": self._completed,
            "remaining": remaining,
            "elapsed_s": elapsed,
            "throughput_jps": throughput,
            "eta_s": eta,
            "jobs_seen": self._jobs_seen,
            "cache_hits": self._cache_hits,
            "deduplicated": self._deduplicated,
            "cache_hit_ratio": (self._cache_hits / self._jobs_seen
                                if self._jobs_seen else 0.0),
            "batches": self._batches,
            "alerts": self._alerts,
            "backends": {
                backend: dict(row)
                for backend, row in sorted(self._backends.items())
            },
        }
        if self._last_fanout is not None:
            snapshot["fanout"] = dict(self._last_fanout)
        return snapshot

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def _emit(self, record: dict[str, Any]) -> None:
        if self._heartbeat_path is None:
            return
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        try:
            with open(self._heartbeat_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            # a full disk or vanished directory must not fail the run;
            # the heartbeat channel simply goes quiet
            pass

    def _render(self, snapshot: dict[str, Any], final: bool = False) -> None:
        if self._stream is None:
            return
        eta = snapshot.get("eta_s")
        eta_text = f"{eta:.1f}s" if eta is not None else "?"
        line = (
            f"\r[obs.live] {snapshot['completed']}/{snapshot['planned']} "
            f"jobs  {snapshot['throughput_jps']:.1f}/s  eta {eta_text}  "
            f"cache {snapshot['cache_hit_ratio']:.0%}  "
            f"alerts {snapshot['alerts']}"
        )
        try:
            self._stream.write(line + ("\n" if final else ""))
            self._stream.flush()
        except (OSError, ValueError):
            pass  # closed/broken stream: stop rendering, keep running


# ----------------------------------------------------------------------
# Environment-driven attachment (one monitor per recorder path)
# ----------------------------------------------------------------------
_MONITORS: dict[str, ProgressMonitor] = {}
_REGISTRY_LOCK = threading.Lock()


def auto_attach(
    recorder: "TraceRecorder | NullRecorder",
) -> ProgressMonitor | None:
    """Attach the env-configured live monitor to *recorder*, if any.

    Called by :class:`~repro.exec.engine.ExecutionEngine` after trace
    resolution: when tracing is on and :data:`LIVE_ENV_VAR` (or
    :data:`LIVE_STDERR_ENV_VAR`) asks for monitoring, one shared
    :class:`ProgressMonitor` per trace path is created and subscribed.
    Returns the monitor, or ``None`` when monitoring stays off —
    engines never pay for monitoring they did not ask for.
    """
    if not recorder.enabled or recorder.path is None:
        return None
    heartbeat = os.environ.get(LIVE_ENV_VAR, "").strip() or None
    stderr_on = os.environ.get(LIVE_STDERR_ENV_VAR, "").strip() not in (
        "", "0", "false", "no", "off",
    )
    if heartbeat is None and not stderr_on:
        return None
    with _REGISTRY_LOCK:
        monitor = _MONITORS.get(recorder.path)
        if monitor is None:
            monitor = ProgressMonitor(
                recorder,
                heartbeat_path=heartbeat,
                stream=sys.stderr if stderr_on else None,
            )
            monitor.attach()
            _MONITORS[recorder.path] = monitor
        return monitor
