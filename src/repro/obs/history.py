"""Cross-run telemetry history: the persistent run ledger.

A :class:`RunLedger` is an append-only JSONL record set that outlives
any single process: every traced engine batch, every search and every
benchmark-gate run appends **one summarized record** (metrics snapshot,
backend ``describe_config()``, cache/dedup ratios, latency quantiles,
git/seed provenance, trace path), and ``python -m repro.obs.history``
queries the accumulated trajectory — per-metric trend tables across
runs, cross-run diffs, and a ``--check`` mode flagging trend
regressions against the run's own history (complementing the
single-baseline benchmark gate with real-trace trajectories).

**Concurrency model** — the :class:`~repro.exec.store.RunStore`
contract.  Writers never share a file: each ledger instance appends to
a private segment (``<ledger>.<host>-<pid>-<nonce>.seg``) next to the
main file, one ``write()`` per record, flushed and closed immediately —
torn-line tolerant, lock-free across processes.  Readers
(:func:`load_ledger`) merge the main file plus every segment, dedupe by
record id and sort by timestamp; :meth:`RunLedger.compact` (or the CLI
``--compact`` flag) folds finished segments into the main file with the
same unlink-before-append claim discipline the trace merger uses.  Two
processes appending concurrently therefore produce a merged,
duplicate-free record set — pinned by ``tests/test_obs_history.py``.

**Layering.**  ``repro.obs`` is an import leaf: this module knows
nothing about engines or stores.  Callers compose the record —
:meth:`ExecutionEngine.append_history` fills in backend config,
provenance (via :func:`repro.exec.store.collect_provenance`) and
latency quantiles engine-side; this module only stamps identity and
persists.  Selection mirrors tracing: ``ExecutionEngine(history=...)``
or the :data:`HISTORY_ENV_VAR` environment variable.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import statistics
import threading
import time
import uuid
from typing import Any, Iterable

__all__ = [
    "HISTORY_ENV_VAR",
    "RunLedger",
    "flatten_record",
    "load_ledger",
    "main",
    "new_record",
    "resolve_ledger",
]

#: Environment variable naming the default run ledger for new engines.
HISTORY_ENV_VAR = "TILT_REPRO_HISTORY"

#: Layout marker for ledger records.
HISTORY_VERSION = 1

#: Suffix of per-writer segments next to the main ledger file.
SEGMENT_SUFFIX = ".seg"

#: Metric-path substrings the trend table shows by default.  The
#: ``normalised.`` paths are the machine-normalised hot-path ratios the
#: CI benchmark gate appends (one ``bench.gate`` record per run), so the
#: cross-commit trend gate covers them out of the box.
DEFAULT_TREND_PATTERNS = ("cache.", "latency.", "normalised.")

#: Minimum same-kind records before ``--check`` gates a metric.
MIN_CHECK_HISTORY = 3


def new_record(kind: str, *, label: str | None = None,
               metrics: dict[str, Any] | None = None,
               backend: dict[str, Any] | None = None,
               cache: dict[str, Any] | None = None,
               latency: dict[str, Any] | None = None,
               provenance: dict[str, Any] | None = None,
               trace: str | None = None,
               extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Assemble one history record (identity stamps happen at append).

    ``kind`` names the producing subsystem (``engine.batch``,
    ``search.run``, ``bench.gate``); the keyword sections are optional
    and omitted when ``None``, so records stay as small as their
    producer's knowledge.
    """
    record: dict[str, Any] = {"kind": str(kind)}
    for name, value in (("label", label), ("metrics", metrics),
                        ("backend", backend), ("cache", cache),
                        ("latency", latency), ("provenance", provenance),
                        ("trace", trace), ("extra", extra)):
        if value is not None:
            record[name] = value
    return record


class RunLedger:
    """One writer's handle on a shared append-only history file.

    ``path`` names the *main* ledger file (``history.jsonl``); this
    instance's appends land in a private sidecar segment next to it, so
    any number of concurrent processes can append to "the same ledger"
    without a lock or a torn line.  Appends within one process are
    serialised by an instance lock (the async backend's executor
    threads share the engine, hence the ledger).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.path.abspath(os.fspath(path))
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        host = socket.gethostname().split(".")[0] or "host"
        self._segment = (
            f"{self._path}.{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
            f"{SEGMENT_SUFFIX}"
        )
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        """The main ledger file readers merge (not the private segment)."""
        return self._path

    def append(self, record: dict[str, Any]) -> str:
        """Persist *record* (one JSONL line); returns its record id.

        The record is stamped with a unique ``id``, an epoch ``ts`` and
        the writing ``pid``/``host`` — the id is what keeps re-merged
        or doubly-loaded records exactly-once downstream.
        """
        stamped = dict(record)
        stamped.setdefault("v", HISTORY_VERSION)
        stamped.setdefault("id", uuid.uuid4().hex)
        stamped.setdefault("ts", time.time())
        stamped.setdefault("pid", os.getpid())
        stamped.setdefault("host", socket.gethostname().split(".")[0])
        line = json.dumps(stamped, separators=(",", ":"), sort_keys=True)
        with self._lock:
            with open(self._segment, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        return stamped["id"]

    def compact(self) -> int:
        """Fold finished segments into the main file; returns records moved.

        Unlink-before-append claims each segment exactly once (the
        trace merger's discipline), and ids already present in the main
        file are skipped, so compacting twice — or compacting a ledger
        someone else already compacted — never duplicates a record.
        Run it when no writer is mid-append (end of a CI job); plain
        readers never need it (:func:`load_ledger` merges in memory).
        """
        existing = {
            record.get("id") for record in _read_records(self._path)
        }
        moved = 0
        with self._lock:
            for segment in _segment_paths(self._path):
                records = _read_records(segment)
                try:
                    os.unlink(segment)
                except OSError:
                    continue  # could not claim: leave it for next time
                with open(self._path, "a", encoding="utf-8") as handle:
                    for record in records:
                        if record.get("id") in existing:
                            continue
                        existing.add(record.get("id"))
                        handle.write(json.dumps(
                            record, separators=(",", ":"), sort_keys=True,
                        ) + "\n")
                        moved += 1
        return moved

    def records(self) -> list[dict[str, Any]]:
        """Every record visible through this ledger path (merged view)."""
        return load_ledger(self._path)


# ----------------------------------------------------------------------
# Reading ledgers back
# ----------------------------------------------------------------------
def _segment_paths(path: str) -> list[str]:
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + "."
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, name) for name in names
        if name.startswith(prefix) and name.endswith(SEGMENT_SUFFIX)
    )


def _read_records(source: str) -> list[dict[str, Any]]:
    """Valid records of one file; torn/blank/foreign lines skipped."""
    try:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    records: list[dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn trailing line from a killed writer
        if not isinstance(record, dict):
            continue
        if record.get("v") != HISTORY_VERSION:
            continue
        records.append(record)
    return records


def load_ledger(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """All records at *path*: main file + segments, deduped, time-ordered.

    Reading never deletes or rewrites anything, so it is safe against
    live writers; duplicate ids (a compact racing a reader) collapse to
    the first occurrence.
    """
    path = os.path.abspath(os.fspath(path))
    seen: set[str] = set()
    records: list[dict[str, Any]] = []
    for source in (path, *_segment_paths(path)):
        for record in _read_records(source):
            record_id = str(record.get("id"))
            if record_id in seen:
                continue
            seen.add(record_id)
            records.append(record)
    records.sort(key=lambda r: (float(r.get("ts", 0.0)), str(r.get("id"))))
    return records


# ----------------------------------------------------------------------
# Environment-driven resolution (one shared writer per path)
# ----------------------------------------------------------------------
_LEDGERS: dict[str, RunLedger] = {}
_REGISTRY_LOCK = threading.Lock()


def resolve_ledger(
    history: "RunLedger | str | os.PathLike[str] | None",
) -> RunLedger | None:
    """Turn a history selector into a ledger (shared per path).

    ``history`` may be a :class:`RunLedger` (used as-is), a path (ledger
    created or reused for that file — every engine resolving the same
    path in one process shares one writer segment), or ``None`` — which
    consults :data:`HISTORY_ENV_VAR` and, when that is unset or empty,
    leaves history recording off (``None``).
    """
    if isinstance(history, RunLedger):
        return history
    if history is None:
        raw = os.environ.get(HISTORY_ENV_VAR, "").strip()
        if not raw:
            return None
        history = raw
    path = os.path.abspath(os.fspath(history))
    with _REGISTRY_LOCK:
        ledger = _LEDGERS.get(path)
        if ledger is None:
            ledger = RunLedger(path)
            _LEDGERS[path] = ledger
        return ledger


# ----------------------------------------------------------------------
# Analysis: flattening, trends, diffs, the trend gate
# ----------------------------------------------------------------------
def flatten_record(record: dict[str, Any]) -> dict[str, float]:
    """Dotted numeric paths of a record's measurement sections.

    ``{"cache": {"hit_ratio": 0.5}, "latency": {"p90": 0.01}}`` becomes
    ``{"cache.hit_ratio": 0.5, "latency.p90": 0.01}``; nested dicts
    (histogram snapshots under ``metrics``) flatten recursively, and
    non-numeric leaves are skipped.
    """
    flat: dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            flat[prefix] = float(value)
        elif isinstance(value, dict):
            for key in value:
                walk(f"{prefix}.{key}", value[key])

    for section in ("cache", "latency", "metrics", "extra"):
        value = record.get(section)
        if isinstance(value, dict):
            for key in value:
                walk(f"{section}.{key}", value[key])
    return flat


def _selected_paths(records: list[dict[str, Any]],
                    patterns: Iterable[str]) -> list[str]:
    """Union of flattened paths matching any pattern substring."""
    patterns = list(patterns)
    paths: set[str] = set()
    for record in records:
        for path in flatten_record(record):
            if any(pattern in path for pattern in patterns) \
                    or "all" in patterns:
                paths.add(path)
    return sorted(paths)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return f"{value:.5f}".rstrip("0").rstrip(".")


def _fmt_ts(ts: float) -> str:
    """UTC render, so the same ledger prints identically everywhere."""
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))


def format_trend(records: list[dict[str, Any]],
                 patterns: Iterable[str] = DEFAULT_TREND_PATTERNS) -> str:
    """Per-kind run tables and metric trend summaries."""
    kinds: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        kinds.setdefault(str(record.get("kind", "?")), []).append(record)
    lines = [f"Run ledger: {len(records)} records, "
             f"{len(kinds)} kinds ({', '.join(sorted(kinds))})"]
    for kind in sorted(kinds):
        group = kinds[kind]
        lines.append("")
        lines.append(f"{kind} ({len(group)} records)")
        lines.append("-" * (len(kind) + len(f" ({len(group)} records)")))
        lines.append(f"  {'idx':>3}  {'ts (UTC)':<19}  {'host':<8}  "
                     f"{'label':<20}  trace")
        for index, record in enumerate(group):
            lines.append(
                f"  {index:>3}  {_fmt_ts(float(record.get('ts', 0.0))):<19}"
                f"  {str(record.get('host', '?'))[:8]:<8}"
                f"  {str(record.get('label') or '-')[:20]:<20}"
                f"  {os.path.basename(str(record.get('trace') or '-'))}"
            )
        paths = _selected_paths(group, patterns)
        if not paths:
            continue
        lines.append(f"  {'metric':<32} {'n':>3} {'first':>10} "
                     f"{'last':>10} {'min':>10} {'max':>10} {'delta':>9}")
        for path in paths:
            values = [flat[path] for record in group
                      if path in (flat := flatten_record(record))]
            if not values:
                continue
            delta = values[-1] - values[0]
            lines.append(
                f"  {path:<32} {len(values):>3} {_fmt(values[0]):>10} "
                f"{_fmt(values[-1]):>10} {_fmt(min(values)):>10} "
                f"{_fmt(max(values)):>10} {('+' if delta >= 0 else '') + _fmt(delta):>9}"
            )
    return "\n".join(lines) + "\n"


def format_record_diff(a: dict[str, Any], b: dict[str, Any],
                       label_a: str, label_b: str) -> str:
    """Aligned numeric diff of two ledger records."""
    left = flatten_record(a)
    right = flatten_record(b)
    lines = ["History diff", "------------",
             f"  A = {label_a} ({a.get('kind')}, "
             f"{_fmt_ts(float(a.get('ts', 0.0)))})",
             f"  B = {label_b} ({b.get('kind')}, "
             f"{_fmt_ts(float(b.get('ts', 0.0)))})",
             f"  {'metric':<32} {'A':>12} {'B':>12} {'delta':>12}"]
    for path in sorted(set(left) | set(right)):
        va = left.get(path)
        vb = right.get(path)
        if va is None or vb is None:
            rendered_a = _fmt(va) if va is not None else "-"
            rendered_b = _fmt(vb) if vb is not None else "-"
            lines.append(f"  {path:<32} {rendered_a:>12} {rendered_b:>12} "
                         f"{'-':>12}")
            continue
        delta = vb - va
        lines.append(
            f"  {path:<32} {_fmt(va):>12} {_fmt(vb):>12} "
            f"{('+' if delta >= 0 else '') + _fmt(delta):>12}"
        )
    return "\n".join(lines) + "\n"


def _direction(path: str) -> int:
    """+1 = lower is better, -1 = higher is better, 0 = not gated."""
    if path.startswith(("latency.", "extra.normalised.",
                        "metrics.normalised.")) \
            or path.endswith(("_s", ".mean", ".max", ".p50", ".p90", ".p99")):
        return 1
    if path.endswith(("hit_ratio", "hit_rate")) or "throughput" in path:
        return -1
    return 0


def check_trends(records: list[dict[str, Any]], *,
                 threshold: float = 1.25,
                 window: int = 10,
                 patterns: Iterable[str] = DEFAULT_TREND_PATTERNS,
                 ) -> tuple[bool, list[str]]:
    """Gate the newest record of each kind against its own history.

    For every direction-aware metric the latest value is compared with
    the median of up to *window* prior same-kind records; moving in the
    bad direction by more than *threshold*× flags a trend regression.
    Metrics with fewer than :data:`MIN_CHECK_HISTORY` records, or a
    zero baseline, are skipped — a young ledger passes vacuously.
    """
    lines: list[str] = []
    ok = True
    kinds: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        kinds.setdefault(str(record.get("kind", "?")), []).append(record)
    for kind in sorted(kinds):
        group = kinds[kind]
        if len(group) < MIN_CHECK_HISTORY:
            lines.append(f"  [{kind}] skipped: only {len(group)} record(s),"
                         f" need {MIN_CHECK_HISTORY}")
            continue
        latest = flatten_record(group[-1])
        history = group[-(window + 1):-1]
        for path in _selected_paths(group, patterns):
            direction = _direction(path)
            if direction == 0 or path not in latest:
                continue
            prior = [flat[path] for record in history
                     if path in (flat := flatten_record(record))]
            if len(prior) < MIN_CHECK_HISTORY - 1:
                continue
            baseline = statistics.median(prior)
            current = latest[path]
            if direction > 0:  # lower is better
                if baseline <= 0:
                    continue
                ratio = current / baseline
            else:  # higher is better
                if current <= 0:
                    continue
                ratio = baseline / current
            verdict = "ok"
            if ratio > threshold:
                verdict = "TREND REGRESSION"
                ok = False
            lines.append(
                f"  [{kind}] {verdict:>16}  {path}  x{ratio:.2f} "
                f"(latest {_fmt(current)} vs median-of-{len(prior)} "
                f"{_fmt(baseline)})"
            )
    lines.append(
        f"trend gate {'PASSED' if ok else 'FAILED'} "
        f"(threshold: x{threshold:.2f} against each kind's own history)"
    )
    return ok, lines


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Query the cross-run telemetry ledger: per-metric "
                    "trends, cross-run diffs, and a trend-regression "
                    "gate over real run trajectories.",
    )
    parser.add_argument("ledger", help="history JSONL ledger to analyse")
    parser.add_argument("--metric", action="append", default=None,
                        metavar="SUBSTR",
                        help="metric-path filter (repeatable; substring "
                             "match; 'all' selects everything; default: "
                             "cache.* and latency.*)")
    parser.add_argument("--diff", nargs=2, type=int, metavar=("A", "B"),
                        help="diff two records by index in time order "
                             "(negative indices count from the end)")
    parser.add_argument("--check", action="store_true",
                        help="gate the newest record of each kind against "
                             "its own history; exit 1 on a trend regression")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="--check failure factor (default %(default)s)")
    parser.add_argument("--window", type=int, default=10,
                        help="--check history window per kind "
                             "(default %(default)s)")
    parser.add_argument("--compact", action="store_true",
                        help="fold finished writer segments into the main "
                             "ledger file first (run only when no writer "
                             "is active)")
    args = parser.parse_args(argv)

    if args.compact:
        moved = RunLedger(args.ledger).compact()
        print(f"compacted {moved} record(s) into {args.ledger}")
    records = load_ledger(args.ledger)
    if not records:
        # an empty, all-torn or not-yet-created ledger is a normal state
        # for a young pipeline, not an error
        print(f"no history records in {args.ledger} "
              "(empty, torn, or not yet written)")
        return 0
    patterns = args.metric if args.metric else list(DEFAULT_TREND_PATTERNS)
    if args.diff:
        try:
            a = records[args.diff[0]]
            b = records[args.diff[1]]
        except IndexError:
            print(f"diff indices {args.diff} out of range for "
                  f"{len(records)} records")
            return 2
        print(format_record_diff(a, b, f"record[{args.diff[0]}]",
                                 f"record[{args.diff[1]}]"), end="")
        return 0
    print(format_trend(records, patterns), end="")
    if args.check:
        ok, lines = check_trends(records, threshold=args.threshold,
                                 window=args.window, patterns=patterns)
        print("\n".join(["", "Trend gate", "----------", *lines]))
        return 0 if ok else 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
