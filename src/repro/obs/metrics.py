"""Counter / gauge / histogram registry for operational telemetry.

:class:`MetricsRegistry` is the in-process metrics plane behind
:class:`~repro.exec.engine.EngineStats` (which is a thin view over one)
and anything else that wants named counters without threading ad-hoc
attributes around.  Three instrument kinds, modelled on the DCDB-style
per-sensor monitoring the ROADMAP's telemetry item calls for:

* :class:`Counter` — monotonically accumulating totals (jobs submitted,
  cache hits, shots sampled);
* :class:`Gauge` — a last-written value (current pool size, rung index);
* :class:`Histogram` — a **bounded** distribution summary: exact count /
  sum / min / max plus a fixed-size tail of the most recent
  observations, so a long-lived engine's per-job timing telemetry stays
  O(tail) instead of growing without bound (the old
  ``EngineStats.job_times_s`` list grew one float per executed job,
  forever).

Everything here is deterministic and wall-clock free: instruments hold
values pushed into them; *when* something happened is the trace's job
(:mod:`repro.obs.trace`).  All instruments are thread-safe for the
engine's streaming-result path (the GIL makes the float ``+=`` on a
single attribute atomic enough, but :class:`Histogram` mutates several
fields per observation, so it locks).
"""

from __future__ import annotations

import collections
import math
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default bounded-tail size for histograms (recent-observation window).
DEFAULT_TAIL = 256


class Counter:
    """A float total that only accumulates (but may be reset to zero)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def to_json(self) -> float:
        return self.value


class Gauge:
    """A last-written value (``nan`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = math.nan

    def to_json(self) -> float:
        return self.value


class Histogram:
    """Bounded distribution summary: exact moments + a recent-value tail.

    ``count`` / ``total`` / ``minimum`` / ``maximum`` are exact over
    every observation ever made; ``tail`` holds only the most recent
    *tail_size* values (a deque), which is what percentile estimates and
    the ``job_times_s`` compatibility view are computed from.  Memory is
    O(tail_size) no matter how many observations arrive.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_tail", "_lock")

    def __init__(self, name: str, tail_size: int = DEFAULT_TAIL) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._tail: collections.deque[float] = collections.deque(
            maxlen=tail_size
        )
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            self._tail.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def tail(self) -> list[float]:
        """The most recent observations, oldest first (bounded copy)."""
        with self._lock:
            return list(self._tail)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the *tail* window (0 when empty)."""
        values = sorted(self.tail)
        if not values:
            return 0.0
        rank = min(len(values) - 1, max(0, math.ceil(q * len(values)) - 1))
        return values[rank]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.minimum = math.inf
            self.maximum = -math.inf
            self._tail.clear()

    def to_json(self) -> dict[str, Any]:
        with self._lock:
            count, total = self.count, self.total
            lo, hi = self.minimum, self.maximum
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use and listed deterministically.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    the same name twice returns the same instrument, and asking for a
    name that exists as a *different* kind raises — a silent kind clash
    would split telemetry between two instruments with one name.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = (kind(name) if kind is not Histogram
                              else Histogram(name))
                self._instruments[name] = instrument
            elif type(instrument) is not kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, tail_size: int = DEFAULT_TAIL) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, tail_size)
                self._instruments[name] = instrument
            elif type(instrument) is not Histogram:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not Histogram"
                )
            return instrument

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            ordered = sorted(self._instruments)
            return iter([self._instruments[name] for name in ordered])

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self:
            instrument.reset()

    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON view of every instrument, sorted by name."""
        return {instrument.name: instrument.to_json() for instrument in self}
