"""Structured tracing: hierarchical spans and events on append-only JSONL.

:class:`TraceRecorder` is the push-based event stream behind the
engine's observability plane.  Instrumented code opens **spans** (timed,
hierarchical regions — ``engine.batch`` → ``engine.cache_lookup`` /
``engine.dispatch`` → ``job.execute`` → ``engine.flush``) and emits
**events** (point-in-time records such as ``job.done``); every record is
one JSON object appended to a ``.jsonl`` file and flushed immediately,
the same torn-line-tolerant discipline as
:class:`~repro.exec.store.RunStore` — a killed process loses at most its
half-written last line.

**Process safety.**  The parent process owns the trace file.  Pool
workers must never append to it concurrently; instead each worker writes
a private sidecar segment (``<trace>.<pid>-<nonce>.seg``, see
:func:`worker_recorder`) and the parent folds finished segments back
into the main file after each traced batch (:meth:`TraceRecorder.merge_segments`).
Worker spans carry the job's content hash in ``attrs["spec_key"]``, which
is how the offline report re-parents them under the batch that dispatched
them — the cross-process glue is the spec key, not a shared span stack.

**Zero cost when off.**  Tracing is opt-in
(``ExecutionEngine(trace=...)`` or the :data:`TRACE_ENV_VAR`
environment variable); untraced code paths see :data:`NULL_TRACE`, whose
``span`` / ``event`` calls are attribute lookups returning a shared
no-op — no I/O, no string formatting, no timestamps.  Tracing must never
influence results: recorders only *read* what instrumented code passes
in, and the bit-identity of traced vs untraced runs is pinned by
``tests/test_obs.py``.

This module is the RPR001 wall-clock carve-out: ``time.time()`` epoch
stamps are legal here (and only here, plus the rest of ``repro.obs``)
because they land exclusively in telemetry records, never in results.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
import uuid
from typing import Any, Iterator

__all__ = [
    "NULL_TRACE",
    "NullRecorder",
    "TRACE_ENV_VAR",
    "TraceRecorder",
    "activate",
    "current_trace",
    "load_records",
    "resolve_trace",
    "worker_recorder",
]

#: Environment variable naming the default trace file for new engines.
TRACE_ENV_VAR = "TILT_REPRO_TRACE"

#: Layout marker for trace records.
TRACE_VERSION = 1

#: Suffix of worker sidecar segments next to the main trace file.
SEGMENT_SUFFIX = ".seg"


class Span:
    """One timed region; a context manager handed out by ``recorder.span``.

    ``attrs`` passed at open time (or added with :meth:`add`) are written
    with the record when the span closes.  The wall-clock ``ts`` (epoch
    seconds, ``time.time``) makes spans comparable *across processes*;
    the duration comes from ``time.perf_counter`` so it is immune to
    clock steps.
    """

    __slots__ = ("_recorder", "name", "span_id", "parent_id", "attrs",
                 "ts", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 attrs: dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.span_id = recorder._next_id()
        self.parent_id: str | None = None
        self.attrs = attrs
        self.ts = 0.0
        self._start = 0.0

    def add(self, **attrs: Any) -> None:
        """Attach more attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._recorder._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        stack = self._recorder._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._recorder._write({
            "v": TRACE_VERSION,
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self.ts,
            "dur_s": duration,
            "pid": os.getpid(),
            "attrs": self.attrs,
        })


class _NullSpan:
    """The shared do-nothing span of :class:`NullRecorder`."""

    __slots__ = ()

    def add(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Tracing disabled: every operation is a no-op.

    ``enabled`` is the cheap guard instrumented hot loops check before
    building per-record attribute dicts.
    """

    enabled = False
    path: str | None = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def metrics(self, snapshot: dict[str, Any]) -> None:
        pass

    def subscribe(self, listener) -> None:
        pass

    def unsubscribe(self, listener) -> None:
        pass

    def merge_segments(self) -> int:
        return 0

    def close(self) -> None:
        pass


#: The process-wide "tracing off" singleton.
NULL_TRACE = NullRecorder()


class TraceRecorder:
    """Append-only JSONL trace writer with per-thread span stacks.

    One recorder per trace path per process (see :func:`resolve_trace`);
    appends are serialised by a lock and each record is written, flushed
    and closed in one go, so concurrent *threads* (the async backend)
    interleave whole lines, never fragments.  Span parenthood follows a
    thread-local stack: spans opened on the same thread nest, spans on
    executor threads (or in pool workers) start parentless and are
    re-parented offline via their ``spec_key``.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.path.abspath(os.fspath(path))
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = itertools.count()
        self._listeners: tuple = ()
        self._write({
            "v": TRACE_VERSION,
            "kind": "meta",
            "pid": os.getpid(),
            "ts": time.time(),
        })

    # ------------------------------------------------------------------
    # Record emission
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The trace file this recorder appends to."""
        return self._path

    def _next_id(self) -> str:
        return f"{os.getpid()}-{next(self._counter)}"

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        # Notify subscribers (live monitors) after the file append and
        # outside the lock.  The listener tuple is copy-on-write, so
        # iterating a stale snapshot is safe; listeners receive the
        # record dict by reference and must treat it as read-only.
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:
                # Telemetry observers must never break the traced run; a
                # broken monitor loses its own heartbeats, nothing else.
                pass

    def subscribe(self, listener) -> None:
        """Register *listener* to receive every record as it is written.

        Listeners are called synchronously from the writing thread with
        the record dict (after the file append); they must be fast,
        must not mutate the record, and exceptions they raise are
        swallowed — observation can never fail the observed run.
        """
        with self._lock:
            if listener not in self._listeners:
                self._listeners = (*self._listeners, listener)

    def unsubscribe(self, listener) -> None:
        """Remove *listener* (a no-op when it was never subscribed)."""
        with self._lock:
            self._listeners = tuple(
                entry for entry in self._listeners if entry != listener
            )

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span context manager (recorded when it exits)."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time record, parented to the current open span."""
        stack = self._stack()
        self._write({
            "v": TRACE_VERSION,
            "kind": "event",
            "name": name,
            "span": stack[-1] if stack else None,
            "ts": time.time(),
            "pid": os.getpid(),
            "attrs": attrs,
        })

    def metrics(self, snapshot: dict[str, Any]) -> None:
        """A metrics-registry snapshot record (engine batch telemetry)."""
        self._write({
            "v": TRACE_VERSION,
            "kind": "metrics",
            "ts": time.time(),
            "pid": os.getpid(),
            "attrs": snapshot,
        })

    # ------------------------------------------------------------------
    # Worker segment merge
    # ------------------------------------------------------------------
    def merge_segments(self) -> int:
        """Fold finished worker sidecar segments into the main file.

        Returns the number of records merged.  Sidecars are read with
        the usual torn-line tolerance, appended to the trace and then
        unlinked; a sidecar that cannot be removed (still open on an
        exotic platform) is left for the next merge — records are only
        appended *after* a segment is fully read, and merging keys no
        state, so a double merge of a leftover file is the only risk and
        is prevented by unlink-before-append ordering below.
        """
        merged = 0
        for segment in _segment_paths(self._path):
            try:
                with open(segment, "r", encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            try:
                os.unlink(segment)
            except OSError:
                continue  # could not claim the segment: leave it untouched
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a killed worker
                if record.get("v") != TRACE_VERSION:
                    continue
                self._write(record)
                merged += 1
        return merged

    def close(self) -> None:
        """Merge any outstanding worker segments (idempotent)."""
        self.merge_segments()


def _segment_paths(path: str) -> list[str]:
    """Worker sidecar files currently next to *path*, sorted."""
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + "."
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, name) for name in names
        if name.startswith(prefix) and name.endswith(SEGMENT_SUFFIX)
    )


class _WorkerRecorder(TraceRecorder):
    """A recorder writing a private sidecar segment next to the trace.

    Pool workers (separate processes) must not interleave appends with
    the parent on one file; each worker process gets its own
    ``<trace>.<pid>-<nonce>.seg`` file instead, merged by the parent
    after the batch.  No meta record — the segment is a fragment of the
    parent trace, not a trace of its own.
    """

    def __init__(self, trace_path: str) -> None:
        sidecar = (
            f"{trace_path}.{os.getpid()}-{uuid.uuid4().hex[:6]}"
            f"{SEGMENT_SUFFIX}"
        )
        self._path = os.path.abspath(sidecar)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = itertools.count()
        self._listeners: tuple = ()  # monitors live in the parent only


# ----------------------------------------------------------------------
# The process-wide active recorder
# ----------------------------------------------------------------------
_ACTIVE: TraceRecorder | NullRecorder = NULL_TRACE

#: Recorders by absolute trace path, so every engine resolving the same
#: path (e.g. via the environment variable) shares one writer.
_RECORDERS: dict[str, TraceRecorder] = {}
_REGISTRY_LOCK = threading.Lock()

#: Worker-side sidecar recorders by parent trace path (one per process).
_WORKER_RECORDERS: dict[str, _WorkerRecorder] = {}


def current_trace() -> TraceRecorder | NullRecorder:
    """The recorder instrumented code should emit to right now."""
    return _ACTIVE


@contextlib.contextmanager
def activate(recorder: TraceRecorder | NullRecorder) -> Iterator[None]:
    """Make *recorder* the process-wide active trace for a region.

    The engine activates its recorder around each batch so code that
    cannot be handed a recorder explicitly — :func:`~repro.exec.backends.execute_spec`
    deep inside a backend — still finds it.  Always restores the
    previous recorder, so nested engines (a search driving the shared
    default engine) compose.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield
    finally:
        _ACTIVE = previous


def resolve_trace(
    trace: "TraceRecorder | NullRecorder | str | os.PathLike[str] | None",
) -> TraceRecorder | NullRecorder:
    """Turn a trace selector into a recorder (shared per path).

    ``trace`` may be a recorder (used as-is), a path (recorder created or
    reused for that file) or ``None`` — which consults the
    :data:`TRACE_ENV_VAR` environment variable and, when that is unset
    or empty, disables tracing (:data:`NULL_TRACE`).
    """
    if isinstance(trace, (TraceRecorder, NullRecorder)):
        return trace
    if trace is None:
        raw = os.environ.get(TRACE_ENV_VAR, "").strip()
        if not raw:
            return NULL_TRACE
        trace = raw
    path = os.path.abspath(os.fspath(trace))
    with _REGISTRY_LOCK:
        recorder = _RECORDERS.get(path)
        if recorder is None:
            recorder = TraceRecorder(path)
            _RECORDERS[path] = recorder
        return recorder


def worker_recorder(trace_path: str) -> TraceRecorder:
    """The per-process sidecar recorder a pool worker emits to.

    Cached per trace path, so every chunk a long-lived worker executes
    lands in one segment file.
    """
    with _REGISTRY_LOCK:
        recorder = _WORKER_RECORDERS.get(trace_path)
        if recorder is None:
            recorder = _WorkerRecorder(trace_path)
            _WORKER_RECORDERS[trace_path] = recorder
        return recorder


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------
def load_records(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Every valid record in a trace file plus unmerged sidecar segments.

    Torn lines, blank lines and foreign-version records are skipped
    (the same tolerance the writer's crash model requires); sidecars are
    *read*, never deleted — loading a live trace must not race its
    owner's merge.
    """
    path = os.path.abspath(os.fspath(path))
    records: list[dict[str, Any]] = []
    for source in (path, *_segment_paths(path)):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("v") != TRACE_VERSION:
                continue
            records.append(record)
    return records
