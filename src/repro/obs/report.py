"""Offline trace analysis: ``python -m repro.obs.report <trace.jsonl>``.

Renders what a traced run actually did, from the JSONL records
:mod:`repro.obs.trace` wrote:

* the **span tree** — batches, cache lookup / dispatch / flush phases,
  backend submissions and per-job executions, with repeated children
  aggregated (``job.execute ×40``) so wide batches stay readable;
* a **per-backend breakdown** — for every execution backend that
  submitted jobs: queue wait (job start minus submission start, epoch
  clocks, so it spans processes) and execute-latency quantiles;
* **cache/dedup ratios** from the ``engine.batch`` span attributes;
* **stragglers & critical path** — the longest jobs, and per batch how
  much of the dispatch wall time the single longest job accounts for
  (the job that, if sharded further, would shorten the batch);
* the **per-job resource table** when :mod:`repro.obs.profile` was on —
  CPU time, peak RSS and top allocation sites per toolchain backend;
* the **search round table** when ``search.round`` spans are present;
* ``--diff`` — the same aggregates for two traces side by side with
  deltas, for before/after comparisons of a change.

Worker ``job.execute`` spans arrive parentless (each process/thread has
its own span stack); they are re-parented here by matching their
``spec_key`` attribute against the ``job.done`` events the engine's
dispatch loop emitted — the cross-process glue is the content hash, not
a shared stack.  Everything is computed from the file; nothing here
touches (or could touch) live engines or results.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Iterable

from repro.obs.trace import load_records

__all__ = ["TraceView", "format_report", "format_diff", "load_trace", "main"]

#: Span names whose children are execution work (used by the tree render
#: to aggregate wide fan-outs instead of printing thousands of lines).
_AGGREGATE_CHILDREN = ("job.execute",)


class SpanNode:
    """One span record plus its resolved children."""

    __slots__ = ("id", "parent", "name", "ts", "dur_s", "pid", "attrs",
                 "children")

    def __init__(self, record: dict[str, Any]) -> None:
        self.id = record.get("id")
        self.parent = record.get("parent")
        self.name = str(record.get("name", ""))
        self.ts = float(record.get("ts", 0.0))
        self.dur_s = float(record.get("dur_s", 0.0))
        self.pid = record.get("pid")
        self.attrs = dict(record.get("attrs") or {})
        self.children: list["SpanNode"] = []


class TraceView:
    """A parsed trace: span forest, events and metrics snapshots."""

    def __init__(self, records: Iterable[dict[str, Any]]) -> None:
        self.spans: dict[str, SpanNode] = {}
        self.events: list[dict[str, Any]] = []
        self.metrics: list[dict[str, Any]] = []
        self.meta: list[dict[str, Any]] = []
        for record in records:
            kind = record.get("kind")
            if kind == "span":
                node = SpanNode(record)
                if node.id is not None:
                    self.spans[node.id] = node
            elif kind == "event":
                self.events.append(record)
            elif kind == "metrics":
                self.metrics.append(record)
            elif kind == "meta":
                self.meta.append(record)
        self._reparent_by_spec_key()
        self.roots: list[SpanNode] = []
        for node in self.spans.values():
            parent = self.spans.get(node.parent) if node.parent else None
            if parent is not None:
                parent.children.append(node)
            else:
                self.roots.append(node)
        for node in self.spans.values():
            node.children.sort(key=lambda child: (child.ts, str(child.id)))
        self.roots.sort(key=lambda node: (node.ts, str(node.id)))

    def _reparent_by_spec_key(self) -> None:
        """Attach parentless worker/thread job spans to their dispatcher.

        The engine emits one ``job.done`` event per executed job from
        inside its dispatch loop; that event's ``span`` field names a
        span on the dispatching thread's stack.  A ``job.execute`` span
        that arrived parentless (pool worker, executor thread) with the
        same ``spec_key`` belongs under that span.  Keys are claimed in
        timestamp order so re-executions across engines stay distinct.
        """
        donors: dict[str, list[str]] = {}
        for event in sorted(self.events, key=lambda e: e.get("ts", 0.0)):
            if event.get("name") != "job.done":
                continue
            key = (event.get("attrs") or {}).get("spec_key")
            anchor = event.get("span")
            if key and anchor:
                donors.setdefault(key, []).append(anchor)
        orphans = sorted(
            (node for node in self.spans.values()
             if node.parent is None and node.name == "job.execute"),
            key=lambda node: node.ts,
        )
        for node in orphans:
            anchors = donors.get(node.attrs.get("spec_key") or "")
            if anchors:
                node.parent = anchors.pop(0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def named(self, name: str) -> list[SpanNode]:
        return sorted(
            (node for node in self.spans.values() if node.name == name),
            key=lambda node: (node.ts, str(node.id)),
        )

    def submit_backend_of(self, node: SpanNode) -> str:
        """The execution backend that dispatched *node* (a job span)."""
        seen = set()
        current: SpanNode | None = node
        while current is not None and current.id not in seen:
            seen.add(current.id)
            if current.name == "backend.submit":
                return str(current.attrs.get("backend", "unknown"))
            current = (self.spans.get(current.parent)
                       if current.parent else None)
        # fallback: the submit span whose wall-clock window covers the
        # job start (worker spans re-parented above a submit span)
        for submit in self.named("backend.submit"):
            if submit.ts <= node.ts <= submit.ts + submit.dur_s:
                return str(submit.attrs.get("backend", "unknown"))
        return "unknown"


def load_trace(path: str) -> TraceView:
    return TraceView(load_records(path))


# ----------------------------------------------------------------------
# Small deterministic statistics helpers (exact, whole-sample)
# ----------------------------------------------------------------------
def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


# ----------------------------------------------------------------------
# Report sections
# ----------------------------------------------------------------------
def _render_tree(view: TraceView) -> list[str]:
    lines = ["Span tree", "---------"]
    if not view.roots:
        lines.append("  (no spans)")
        return lines

    def walk(node: SpanNode, depth: int) -> None:
        indent = "  " * (depth + 1)
        attrs = node.attrs
        notes = []
        for key in ("backend", "strategy", "jobs", "candidates", "shots",
                    "shards", "round", "cache_hits", "deduplicated",
                    "executed"):
            if key in attrs:
                notes.append(f"{key}={attrs[key]}")
        note = f"  [{', '.join(notes)}]" if notes else ""
        lines.append(f"{indent}{node.name:<20} {_fmt_s(node.dur_s):>9}"
                     f"{note}")
        plain = [c for c in node.children
                 if c.name not in _AGGREGATE_CHILDREN]
        grouped = [c for c in node.children
                   if c.name in _AGGREGATE_CHILDREN]
        for child in plain:
            walk(child, depth + 1)
        if grouped:
            durs = [c.dur_s for c in grouped]
            lines.append(
                f"{indent}  job.execute x{len(grouped)}   "
                f"total {_fmt_s(sum(durs))}, mean {_fmt_s(_mean(durs))}, "
                f"max {_fmt_s(max(durs))}"
            )

    for root in view.roots:
        walk(root, 0)
    return lines


def _backend_rows(view: TraceView) -> dict[str, dict[str, Any]]:
    """Aggregate queue-wait / execute latency per execution backend."""
    rows: dict[str, dict[str, Any]] = {}
    submits = view.named("backend.submit")
    jobs = view.named("job.execute")
    for job in jobs:
        backend = view.submit_backend_of(job)
        row = rows.setdefault(
            backend, {"jobs": 0, "queue": [], "execute": []}
        )
        row["jobs"] += 1
        row["execute"].append(job.dur_s)
        window = [s for s in submits
                  if str(s.attrs.get("backend", "unknown")) == backend
                  and s.ts <= job.ts]
        if window:
            # queue wait: job start minus the submission that covers it
            # (epoch clocks on both sides, so this works cross-process)
            row["queue"].append(job.ts - max(s.ts for s in window))
    return rows


def _render_backends(view: TraceView) -> list[str]:
    rows = _backend_rows(view)
    lines = ["Per-backend latency", "-------------------"]
    if not rows:
        lines.append("  (no job.execute spans)")
        return lines
    header = (f"  {'backend':<10} {'jobs':>5} {'queue p50':>10} "
              f"{'queue p90':>10} {'exec mean':>10} {'exec p50':>10} "
              f"{'exec p90':>10} {'exec max':>10}")
    lines.append(header)
    for backend in sorted(rows):
        row = rows[backend]
        lines.append(
            f"  {backend:<10} {row['jobs']:>5} "
            f"{_fmt_s(_quantile(row['queue'], 0.50)):>10} "
            f"{_fmt_s(_quantile(row['queue'], 0.90)):>10} "
            f"{_fmt_s(_mean(row['execute'])):>10} "
            f"{_fmt_s(_quantile(row['execute'], 0.50)):>10} "
            f"{_fmt_s(_quantile(row['execute'], 0.90)):>10} "
            f"{_fmt_s(max(row['execute'])):>10}"
        )
    return lines


def _cache_totals(view: TraceView) -> dict[str, float]:
    totals = {"jobs": 0.0, "cache_hits": 0.0, "deduplicated": 0.0,
              "executed": 0.0, "batches": 0.0}
    for batch in view.named("engine.batch"):
        totals["batches"] += 1
        totals["jobs"] += float(batch.attrs.get("jobs", 0) or 0)
        totals["cache_hits"] += float(batch.attrs.get("cache_hits", 0) or 0)
        totals["deduplicated"] += float(
            batch.attrs.get("deduplicated", 0) or 0
        )
        totals["executed"] += float(batch.attrs.get("executed", 0) or 0)
    return totals


def _render_cache(view: TraceView) -> list[str]:
    totals = _cache_totals(view)
    lines = ["Cache / dedup", "-------------"]
    jobs = totals["jobs"]
    if not totals["batches"]:
        lines.append("  (no engine.batch spans)")
        return lines
    hit_rate = totals["cache_hits"] / jobs if jobs else 0.0
    dedup_rate = totals["deduplicated"] / jobs if jobs else 0.0
    lines.append(
        f"  batches {int(totals['batches'])}, jobs {int(jobs)}: "
        f"{int(totals['cache_hits'])} cache hits ({hit_rate:.1%}), "
        f"{int(totals['deduplicated'])} deduplicated ({dedup_rate:.1%}), "
        f"{int(totals['executed'])} executed"
    )
    return lines


def _render_stragglers(view: TraceView, top: int) -> list[str]:
    lines = ["Stragglers & critical path", "--------------------------"]
    jobs = view.named("job.execute")
    if not jobs:
        lines.append("  (no job.execute spans)")
        return lines
    worst = sorted(jobs, key=lambda j: (-j.dur_s, j.ts))[:top]
    lines.append(f"  slowest {len(worst)} of {len(jobs)} jobs:")
    for job in worst:
        label = job.attrs.get("label") or job.attrs.get("spec_key", "?")
        lines.append(
            f"    {_fmt_s(job.dur_s):>9}  {job.attrs.get('backend', '?')}"
            f"  {label}"
        )
    for index, batch in enumerate(view.named("engine.batch")):
        dispatches = [c for c in batch.children
                      if c.name == "engine.dispatch"]
        if not dispatches:
            continue
        dispatch = dispatches[0]
        batch_jobs: list[SpanNode] = []
        pending = list(dispatch.children)
        while pending:
            node = pending.pop()
            if node.name == "job.execute":
                batch_jobs.append(node)
            pending.extend(node.children)
        if not batch_jobs or dispatch.dur_s <= 0:
            continue
        longest = max(batch_jobs, key=lambda j: j.dur_s)
        share = longest.dur_s / dispatch.dur_s
        lines.append(
            f"  batch {index}: dispatch {_fmt_s(dispatch.dur_s)}, "
            f"critical path {_fmt_s(longest.dur_s)} ({share:.0%}) = "
            f"{longest.attrs.get('label') or longest.attrs.get('spec_key', '?')}"
        )
    return lines


def _render_resources(view: TraceView, top: int) -> list[str]:
    """Per-job resource table from ``job.execute`` profile attributes.

    Only rendered when :mod:`repro.obs.profile` was on during the run
    (``TILT_REPRO_PROFILE``); each profiled span carries a ``profile``
    dict with CPU times and, platform permitting, peak RSS.
    """
    profiled = [job for job in view.named("job.execute")
                if isinstance(job.attrs.get("profile"), dict)]
    if not profiled:
        return []
    lines = ["Per-job resources", "-----------------"]
    groups: dict[str, dict[str, Any]] = {}
    for job in profiled:
        profile = job.attrs["profile"]
        backend = str(job.attrs.get("backend", "?"))
        row = groups.setdefault(
            backend, {"jobs": 0, "cpu_user_s": 0.0, "cpu_system_s": 0.0,
                      "max_rss_kb": 0.0, "py_peak_kb": 0.0},
        )
        row["jobs"] += 1
        row["cpu_user_s"] += float(profile.get("cpu_user_s", 0.0) or 0.0)
        row["cpu_system_s"] += float(profile.get("cpu_system_s", 0.0) or 0.0)
        row["max_rss_kb"] = max(row["max_rss_kb"],
                                float(profile.get("max_rss_kb", 0.0) or 0.0))
        row["py_peak_kb"] = max(row["py_peak_kb"],
                                float(profile.get("py_peak_kb", 0.0) or 0.0))
    lines.append(f"  {'toolchain':<10} {'jobs':>5} {'cpu user':>10} "
                 f"{'cpu sys':>10} {'peak rss':>10} {'py peak':>10}")
    for backend in sorted(groups):
        row = groups[backend]
        lines.append(
            f"  {backend:<10} {row['jobs']:>5} "
            f"{_fmt_s(row['cpu_user_s']):>10} "
            f"{_fmt_s(row['cpu_system_s']):>10} "
            f"{row['max_rss_kb'] / 1024:>8.1f}MB "
            f"{row['py_peak_kb'] / 1024:>8.1f}MB"
        )
    hungriest = sorted(
        profiled,
        key=lambda j: (-float((j.attrs["profile"]).get("cpu_user_s", 0.0)
                              or 0.0), j.ts),
    )[:top]
    lines.append(f"  heaviest {len(hungriest)} of {len(profiled)} "
                 "profiled jobs (by cpu user):")
    for job in hungriest:
        profile = job.attrs["profile"]
        label = job.attrs.get("label") or job.attrs.get("spec_key", "?")
        cpu = float(profile.get("cpu_user_s", 0.0) or 0.0)
        detail = f"    {_fmt_s(cpu):>9}  {label}"
        sites = profile.get("allocations")
        if isinstance(sites, list) and sites:
            worst = sites[0]
            detail += (f"  (top alloc {worst.get('site', '?')} "
                       f"{float(worst.get('size_kb', 0.0)):.0f}KB)")
        lines.append(detail)
    return lines


def _render_search(view: TraceView) -> list[str]:
    rounds = view.named("search.round")
    if not rounds:
        return []
    lines = ["Search rounds", "-------------"]
    lines.append(f"  {'round':>5} {'candidates':>10} {'jobs':>6} "
                 f"{'shots':>7} {'wall':>9}")
    for node in rounds:
        lines.append(
            f"  {node.attrs.get('round', '?'):>5} "
            f"{node.attrs.get('candidates', '?'):>10} "
            f"{node.attrs.get('jobs', '?'):>6} "
            f"{node.attrs.get('shots', '?'):>7} "
            f"{_fmt_s(node.dur_s):>9}"
        )
    return lines


def format_report(view: TraceView, top: int = 5) -> str:
    sections = [
        _render_tree(view),
        _render_backends(view),
        _render_cache(view),
        _render_stragglers(view, top),
        _render_resources(view, top),
        _render_search(view),
    ]
    blocks = ["\n".join(section) for section in sections if section]
    return "\n\n".join(blocks) + "\n"


# ----------------------------------------------------------------------
# Cross-run diff
# ----------------------------------------------------------------------
def _summary_numbers(view: TraceView) -> dict[str, float]:
    totals = _cache_totals(view)
    jobs = view.named("job.execute")
    batches = view.named("engine.batch")
    return {
        "batches": totals["batches"],
        "jobs_submitted": totals["jobs"],
        "cache_hits": totals["cache_hits"],
        "deduplicated": totals["deduplicated"],
        "executed": totals["executed"],
        "job_execute_spans": float(len(jobs)),
        "job_time_total_s": sum(j.dur_s for j in jobs),
        "job_time_p90_s": _quantile([j.dur_s for j in jobs], 0.90),
        "batch_wall_s": sum(b.dur_s for b in batches),
    }


def format_diff(a: TraceView, b: TraceView,
                label_a: str = "A", label_b: str = "B") -> str:
    left = _summary_numbers(a)
    right = _summary_numbers(b)
    lines = ["Trace diff", "----------",
             f"  A = {label_a}", f"  B = {label_b}",
             f"  {'metric':<20} {'A':>12} {'B':>12} {'delta':>12}"]
    for key in sorted(left):
        delta = right[key] - left[key]
        if key.endswith("_s"):
            rendered = (f"  {key:<20} {_fmt_s(left[key]):>12} "
                        f"{_fmt_s(right[key]):>12} "
                        f"{('+' if delta >= 0 else '-') + _fmt_s(abs(delta)):>12}")
        else:
            rendered = (f"  {key:<20} {int(left[key]):>12} "
                        f"{int(right[key]):>12} {int(delta):>+12}")
        lines.append(rendered)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro.obs trace (span tree, per-backend "
                    "latency, cache ratios, stragglers).",
    )
    parser.add_argument("trace", help="trace JSONL file to analyse")
    parser.add_argument("--diff", metavar="OTHER",
                        help="second trace: print a cross-run diff "
                             "instead of the full report")
    parser.add_argument("--top", type=int, default=5,
                        help="straggler rows to show (default 5)")
    args = parser.parse_args(argv)
    if not os.path.exists(args.trace):
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 1
    view = load_trace(args.trace)
    if not view.spans and not view.events:
        # An existing-but-empty (or all-torn) trace is what a run that
        # crashed before its first flush leaves behind: report it calmly
        # so CI pipelines that always run the report don't go red.
        print(f"no trace records in {args.trace} "
              "(empty, torn, or not yet written)")
        return 0
    if args.diff:
        other = load_trace(args.diff)
        sys.stdout.write(format_diff(view, other, args.trace, args.diff))
    else:
        sys.stdout.write(format_report(view, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
