"""Operational observability: structured tracing + metrics for the engine.

Two planes, both opt-in and both forbidden from ever touching results:

* :mod:`repro.obs.trace` — hierarchical spans and events written as
  append-only, torn-line-tolerant JSONL (``ExecutionEngine(trace=...)``
  or ``TILT_REPRO_TRACE=<path>``), with per-process sidecar segments so
  pool workers can emit per-job records that merge back into the parent
  trace;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry that
  :class:`~repro.exec.engine.EngineStats` is a thin view over.

``python -m repro.obs.report <trace.jsonl>`` renders the offline
analysis: span tree, per-backend queue/execute breakdown, cache/dedup
ratios, straggler and critical-path analysis, and a cross-run diff of
two traces (``--diff``).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACE,
    NullRecorder,
    TRACE_ENV_VAR,
    TraceRecorder,
    activate,
    current_trace,
    load_records,
    resolve_trace,
    worker_recorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullRecorder",
    "TRACE_ENV_VAR",
    "TraceRecorder",
    "activate",
    "current_trace",
    "load_records",
    "resolve_trace",
    "worker_recorder",
]
