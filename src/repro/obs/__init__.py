"""Operational observability: tracing, metrics, history, live monitoring.

Five planes, all opt-in and all forbidden from ever touching results:

* :mod:`repro.obs.trace` — hierarchical spans and events written as
  append-only, torn-line-tolerant JSONL (``ExecutionEngine(trace=...)``
  or ``TILT_REPRO_TRACE=<path>``), with per-process sidecar segments so
  pool workers can emit per-job records that merge back into the parent
  trace;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry that
  :class:`~repro.exec.engine.EngineStats` is a thin view over;
* :mod:`repro.obs.history` — a persistent cross-run **run ledger**
  (``ExecutionEngine(history=...)`` or ``TILT_REPRO_HISTORY=<path>``):
  every traced batch, search and benchmark-gate run appends one
  summarized record, and ``python -m repro.obs.history`` renders
  per-metric trends, cross-run diffs and a ``--check`` trend gate;
* :mod:`repro.obs.live` — an in-process :class:`~repro.obs.live.ProgressMonitor`
  subscribed to the trace stream: throughput, ETA, rolling cache-hit
  ratio, straggler alerts and per-backend heartbeat JSONL
  (``TILT_REPRO_LIVE=<path>``) plus an opt-in single-line stderr
  renderer (``TILT_REPRO_LIVE_STDERR=1``);
* :mod:`repro.obs.profile` — opt-in per-job resource profiling
  (``TILT_REPRO_PROFILE=1`` or ``tracemalloc``): CPU time, peak RSS and
  top allocation sites attached to each ``job.execute`` span.

``python -m repro.obs.report <trace.jsonl>`` renders the offline
analysis: span tree, per-backend queue/execute breakdown, cache/dedup
ratios, straggler and critical-path analysis, the per-job resource
table when profiling was on, and a cross-run diff of two traces
(``--diff``).
"""

from repro.obs.history import (
    HISTORY_ENV_VAR,
    RunLedger,
    load_ledger,
    new_record,
    resolve_ledger,
)
from repro.obs.live import (
    LIVE_ENV_VAR,
    LIVE_STDERR_ENV_VAR,
    ProgressMonitor,
    auto_attach,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    PROFILE_ENV_VAR,
    JobProfiler,
    profile_enabled,
    start_job_profile,
)
from repro.obs.trace import (
    NULL_TRACE,
    NullRecorder,
    TRACE_ENV_VAR,
    TraceRecorder,
    activate,
    current_trace,
    load_records,
    resolve_trace,
    worker_recorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "HISTORY_ENV_VAR",
    "Histogram",
    "JobProfiler",
    "LIVE_ENV_VAR",
    "LIVE_STDERR_ENV_VAR",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullRecorder",
    "PROFILE_ENV_VAR",
    "ProgressMonitor",
    "RunLedger",
    "TRACE_ENV_VAR",
    "TraceRecorder",
    "activate",
    "auto_attach",
    "current_trace",
    "load_ledger",
    "load_records",
    "new_record",
    "profile_enabled",
    "resolve_ledger",
    "resolve_trace",
    "start_job_profile",
    "worker_recorder",
]
