"""Quantum circuit container used throughout the reproduction.

The :class:`Circuit` class is a light-weight ordered list of :class:`Gate`
objects over a fixed number of qubits.  It offers the operations the LinQ
compiler and the workload generators need: builder methods for every
supported gate, depth/operation statistics, composition, inversion, qubit
relabelling and OpenQASM 2.0 export.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from repro.circuits.gate import GATE_SPECS, Gate
from repro.exceptions import CircuitError


class Circuit:
    """An ordered sequence of gates over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        self.name = name

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the circuit register."""
        return self._num_qubits

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gates in program order (read-only view)."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits and self._gates == other._gates
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"num_gates={len(self._gates)})"
        )

    # ------------------------------------------------------------------
    # Gate insertion
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append *gate*, validating its qubit indices against the register."""
        if any(q >= self._num_qubits for q in gate.qubits):
            raise CircuitError(
                f"gate {gate} uses qubits outside register of size "
                f"{self._num_qubits}"
            )
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Iterable[float] = ()) -> "Circuit":
        """Append a gate given by name, qubits and optional parameters."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate from *gates*."""
        for g in gates:
            self.append(g)
        return self

    # Named builder helpers -------------------------------------------------
    def id(self, q: int) -> "Circuit":
        return self.add("id", q)

    def x(self, q: int) -> "Circuit":
        return self.add("x", q)

    def y(self, q: int) -> "Circuit":
        return self.add("y", q)

    def z(self, q: int) -> "Circuit":
        return self.add("z", q)

    def h(self, q: int) -> "Circuit":
        return self.add("h", q)

    def s(self, q: int) -> "Circuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "Circuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", q)

    def sx(self, q: int) -> "Circuit":
        return self.add("sx", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", q, params=(theta,))

    def p(self, theta: float, q: int) -> "Circuit":
        return self.add("p", q, params=(theta,))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self.add("u3", q, params=(theta, phi, lam))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", control, target)

    def cz(self, control: int, target: int) -> "Circuit":
        return self.add("cz", control, target)

    def swap(self, q1: int, q2: int) -> "Circuit":
        return self.add("swap", q1, q2)

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("cp", control, target, params=(theta,))

    def rzz(self, theta: float, q1: int, q2: int) -> "Circuit":
        return self.add("rzz", q1, q2, params=(theta,))

    def rxx(self, theta: float, q1: int, q2: int) -> "Circuit":
        return self.add("rxx", q1, q2, params=(theta,))

    def xx(self, theta: float, q1: int, q2: int) -> "Circuit":
        return self.add("xx", q1, q2, params=(theta,))

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add("ccx", c1, c2, target)

    def measure(self, q: int) -> "Circuit":
        return self.add("measure", q)

    def measure_all(self) -> "Circuit":
        for q in range(self._num_qubits):
            self.measure(q)
        return self

    def barrier(self, *qubits: int) -> "Circuit":
        targets = qubits if qubits else tuple(range(self._num_qubits))
        return self.append(Gate("barrier", targets))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def count_ops(self) -> dict[str, int]:
        """Return a histogram of gate names."""
        return dict(Counter(g.name for g in self._gates))

    def num_gates(self, *, include_structural: bool = False) -> int:
        """Number of gates, optionally excluding barriers."""
        if include_structural:
            return len(self._gates)
        return sum(1 for g in self._gates if g.name != "barrier")

    def two_qubit_gates(self) -> list[Gate]:
        """Gates acting on exactly two qubits (including SWAPs)."""
        return [g for g in self._gates if g.is_two_qubit]

    def num_two_qubit_gates(self) -> int:
        """Count of two-qubit gates (including SWAPs)."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Circuit depth: the longest chain of dependent gates.

        With ``two_qubit_only=True`` only two-qubit gates advance the level,
        which matches how the paper counts "circuit depth" for scheduling.
        """
        level = [0] * self._num_qubits
        for g in self._gates:
            if g.name == "barrier":
                if g.qubits:
                    top = max(level[q] for q in g.qubits)
                    for q in g.qubits:
                        level[q] = top
                continue
            counts = 0 if (two_qubit_only and not g.is_two_qubit) else 1
            top = max(level[q] for q in g.qubits) + counts
            for q in g.qubits:
                level[q] = top
        return max(level) if level else 0

    def active_qubits(self) -> set[int]:
        """The set of qubits touched by at least one non-barrier gate."""
        used: set[int] = set()
        for g in self._gates:
            if g.name != "barrier":
                used.update(g.qubits)
        return used

    def interaction_counts(self) -> dict[tuple[int, int], int]:
        """Histogram of (sorted) qubit pairs joined by two-qubit gates."""
        counts: Counter[tuple[int, int]] = Counter()
        for g in self._gates:
            if g.is_two_qubit:
                a, b = sorted(g.qubits)
                counts[(a, b)] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        """Return a shallow copy (gates are immutable, so this is safe)."""
        clone = Circuit(self._num_qubits, name or self.name)
        clone._gates = list(self._gates)
        return clone

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits > self._num_qubits:
            raise CircuitError(
                "cannot compose a wider circuit onto a narrower one"
            )
        combined = self.copy()
        combined.extend(other.gates)
        return combined

    def inverse(self) -> "Circuit":
        """Return the adjoint circuit (gates reversed and inverted)."""
        inv = Circuit(self._num_qubits, f"{self.name}_dg")
        for g in reversed(self._gates):
            if g.name == "barrier":
                inv.append(g)
            elif g.name == "measure":
                raise CircuitError("cannot invert a circuit with measurements")
            else:
                inv.append(g.inverse())
        return inv

    def remap(self, mapping: Sequence[int] | Mapping[int, int],
              num_qubits: int | None = None) -> "Circuit":
        """Return a copy with every qubit ``q`` relabelled to ``mapping[q]``."""
        new_size = num_qubits if num_qubits is not None else self._num_qubits
        out = Circuit(new_size, self.name)
        for g in self._gates:
            out.append(g.remapped(mapping))
        return out

    def without(self, names: Iterable[str]) -> "Circuit":
        """Return a copy with every gate whose name is in *names* removed."""
        drop = set(names)
        out = Circuit(self._num_qubits, self.name)
        out._gates = [g for g in self._gates if g.name not in drop]
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_qasm(self) -> str:
        """Serialise the circuit to OpenQASM 2.0 text."""
        from repro.circuits.qasm import circuit_to_qasm

        return circuit_to_qasm(self)

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the circuit."""
        ops = self.count_ops()
        two_q = self.num_two_qubit_gates()
        return (
            f"{self.name}: {self._num_qubits} qubits, {len(self)} gates "
            f"({two_q} two-qubit), depth {self.depth()}, ops={ops}"
        )


def circuit_from_gates(num_qubits: int, gates: Iterable[Gate],
                       name: str = "circuit") -> Circuit:
    """Build a :class:`Circuit` from an iterable of gates."""
    circ = Circuit(num_qubits, name)
    circ.extend(gates)
    return circ
