"""Dependency analysis for circuits.

Two views are provided:

* :class:`CircuitDAG` — a static directed acyclic graph of gate dependencies
  (an edge runs from a gate to the next gate touching the same qubit).  Used
  for layering, depth-distance queries and general inspection.
* :class:`FrontierTracker` — an incremental "ready set" over the same
  dependency structure.  The tape-movement scheduler repeatedly asks "which
  gates could run now?", marks some of them complete and continues; the
  tracker supports that access pattern in O(1) amortised per gate.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import CircuitError


def _dependency_edges(gates: Sequence[Gate]) -> Iterator[tuple[int, int]]:
    """Yield (earlier, later) index pairs for gates sharing a qubit."""
    last_on_qubit: dict[int, int] = {}
    for idx, gate in enumerate(gates):
        for qubit in gate.qubits:
            previous = last_on_qubit.get(qubit)
            if previous is not None:
                yield previous, idx
            last_on_qubit[qubit] = idx


class CircuitDAG:
    """Static gate-dependency DAG of a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self._circuit = circuit
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(range(len(circuit)))
        self._graph.add_edges_from(_dependency_edges(circuit.gates))

    @property
    def circuit(self) -> Circuit:
        """The circuit this DAG was built from."""
        return self._circuit

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (node = gate index)."""
        return self._graph

    def gate(self, index: int) -> Gate:
        """Return the gate at *index*."""
        return self._circuit[index]

    def predecessors(self, index: int) -> list[int]:
        """Indices of gates that must run before gate *index*."""
        return sorted(self._graph.predecessors(index))

    def successors(self, index: int) -> list[int]:
        """Indices of gates that depend directly on gate *index*."""
        return sorted(self._graph.successors(index))

    def front_layer(self) -> list[int]:
        """Indices of gates with no unexecuted predecessor (program start)."""
        return sorted(n for n in self._graph.nodes if self._graph.in_degree(n) == 0)

    def topological_order(self) -> list[int]:
        """A topological ordering of gate indices (stable: program order)."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def layers(self) -> list[list[int]]:
        """Partition gate indices into ASAP layers."""
        level: dict[int, int] = {}
        for node in self.topological_order():
            preds = list(self._graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        num_layers = 1 + max(level.values(), default=-1)
        result: list[list[int]] = [[] for _ in range(num_layers)]
        for node, lvl in level.items():
            result[lvl].append(node)
        return [sorted(layer) for layer in result]

    def depth_index(self) -> dict[int, int]:
        """Map each gate index to its ASAP layer number."""
        depth: dict[int, int] = {}
        for lvl, layer in enumerate(self.layers()):
            for node in layer:
                depth[node] = lvl
        return depth


class FrontierTracker:
    """Incremental ready-set over a circuit's dependency structure.

    The tracker is cheap to copy (:meth:`clone`), which the scheduler uses to
    trial-run "what could execute at head position p" without committing.
    """

    def __init__(self, circuit: Circuit,
                 indices: Iterable[int] | None = None) -> None:
        gates = circuit.gates
        selected = list(indices) if indices is not None else list(range(len(gates)))
        self._circuit = circuit
        self._gates = gates  # cached: Circuit.gates rebuilds a tuple per call
        self._indegree: dict[int, int] = {}
        self._successors: dict[int, list[int]] = {i: [] for i in selected}
        selected_set = set(selected)
        last_on_qubit: dict[int, int] = {}
        for idx in selected:
            gate = gates[idx]
            indeg = 0
            for qubit in gate.qubits:
                previous = last_on_qubit.get(qubit)
                if previous is not None and previous in selected_set:
                    self._successors[previous].append(idx)
                    indeg += 1
                last_on_qubit[qubit] = idx
            self._indegree[idx] = indeg
        self._ready: set[int] = {i for i, d in self._indegree.items() if d == 0}
        self._completed: set[int] = set()

    # Construction helpers -------------------------------------------------
    @classmethod
    def _blank(cls) -> "FrontierTracker":
        instance = cls.__new__(cls)
        return instance

    def clone(self) -> "FrontierTracker":
        """Return an independent copy of the tracker state."""
        other = FrontierTracker._blank()
        other._circuit = self._circuit
        other._gates = self._gates
        other._indegree = dict(self._indegree)
        other._successors = self._successors  # static, shared
        other._ready = set(self._ready)
        other._completed = set(self._completed)
        return other

    # Queries ---------------------------------------------------------------
    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def ready(self) -> set[int]:
        """Indices of gates whose predecessors have all completed."""
        return set(self._ready)

    def is_ready(self, index: int) -> bool:
        return index in self._ready

    def remaining(self) -> int:
        """Number of gates not yet completed."""
        return len(self._indegree) - len(self._completed)

    def is_done(self) -> bool:
        return self.remaining() == 0

    def completed(self) -> set[int]:
        return set(self._completed)

    # Mutation ---------------------------------------------------------------
    def complete(self, index: int) -> list[int]:
        """Mark gate *index* executed; return newly ready gate indices."""
        if index not in self._ready:
            raise CircuitError(
                f"gate {index} is not ready (predecessors incomplete)"
            )
        self._ready.discard(index)
        self._completed.add(index)
        newly_ready: list[int] = []
        for succ in self._successors[index]:
            self._indegree[succ] -= 1
            if self._indegree[succ] == 0:
                self._ready.add(succ)
                newly_ready.append(succ)
        return newly_ready

    def complete_many(self, indices: Iterable[int]) -> None:
        """Complete several gates; ordering inside *indices* must be valid."""
        for index in indices:
            self.complete(index)

    def greedy_closure(self, accepts: "Callable[[Gate], bool]") -> list[int]:
        """Gates executable in one pass if only *accepts*-gates may run.

        Starting from the current ready set, repeatedly execute every ready
        gate accepted by the predicate, releasing its successors, until no
        accepted gate is ready.  The tracker itself is **not** modified; the
        returned list is a valid execution order that can later be replayed
        with :meth:`complete_many`.

        This is the primitive behind the tape-movement scheduler's
        "how many gates could run at head position p" query.  The cost is
        proportional to the number of executed gates plus their successor
        edges (an overlay of in-degrees is used instead of copying the
        tracker).
        """
        gates = self._gates
        executed: list[int] = []
        overlay_indegree: dict[int, int] = {}
        queue = [index for index in self._ready if accepts(gates[index])]
        in_queue = set(queue)
        while queue:
            index = queue.pop()
            executed.append(index)
            for succ in self._successors[index]:
                remaining = overlay_indegree.get(succ, self._indegree[succ]) - 1
                overlay_indegree[succ] = remaining
                if remaining == 0 and succ not in in_queue and accepts(gates[succ]):
                    queue.append(succ)
                    in_queue.add(succ)
        return executed
