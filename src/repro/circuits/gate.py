"""Gate primitives for the circuit IR.

A :class:`Gate` is an immutable record of an operation name, the qubit
indices it acts on, and its (classical) parameters.  The IR is deliberately
small: it supports the universal gates that the Table II workloads need plus
the trapped-ion native set used by the LinQ compiler
(``rx``/``ry``/``rz``/``xx``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import CircuitError

#: Specification of every supported gate name: (number of qubits, number of
#: parameters).  ``barrier`` is variadic and handled specially.
GATE_SPECS: Mapping[str, tuple[int, int]] = {
    # one-qubit, parameter-free
    "id": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "h": (1, 0),
    "s": (1, 0),
    "sdg": (1, 0),
    "t": (1, 0),
    "tdg": (1, 0),
    "sx": (1, 0),
    # one-qubit, parameterised
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "p": (1, 1),
    "u3": (1, 3),
    # two-qubit
    "cx": (2, 0),
    "cz": (2, 0),
    "swap": (2, 0),
    "cp": (2, 1),
    "rzz": (2, 1),
    "rxx": (2, 1),
    "xx": (2, 1),
    # three-qubit
    "ccx": (3, 0),
    # non-unitary / structural
    "measure": (1, 0),
    "barrier": (-1, 0),
}

#: Names considered native on a TILT machine after decomposition.
NATIVE_GATE_NAMES = frozenset({"rx", "ry", "rz", "xx", "measure", "barrier"})

#: Names of two-qubit entangling operations (used by routing and scheduling).
TWO_QUBIT_GATE_NAMES = frozenset(
    name for name, (nq, _) in GATE_SPECS.items() if nq == 2
)


@dataclass(frozen=True)
class Gate:
    """An operation applied to specific qubits.

    Parameters
    ----------
    name:
        Lower-case gate name; must be a key of :data:`GATE_SPECS`.
    qubits:
        Qubit indices the gate acts on, in operand order (e.g. control
        first for ``cx``).
    params:
        Real-valued parameters (rotation angles), possibly empty.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.name not in GATE_SPECS:
            raise CircuitError(f"unknown gate name: {self.name!r}")
        expected_qubits, expected_params = GATE_SPECS[self.name]
        qubits = tuple(int(q) for q in self.qubits)
        params = tuple(float(p) for p in self.params)
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "params", params)
        if expected_qubits >= 0 and len(qubits) != expected_qubits:
            raise CircuitError(
                f"gate {self.name!r} expects {expected_qubits} qubits, "
                f"got {len(qubits)}"
            )
        if self.name == "barrier" and not qubits:
            raise CircuitError("barrier needs at least one qubit")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"gate {self.name!r} has duplicate qubits {qubits}")
        if any(q < 0 for q in qubits):
            raise CircuitError(f"gate {self.name!r} has negative qubit index")
        if len(params) != expected_params:
            raise CircuitError(
                f"gate {self.name!r} expects {expected_params} params, "
                f"got {len(params)}"
            )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True if this is a two-qubit (entangling or swap) gate."""
        return self.name in TWO_QUBIT_GATE_NAMES

    @property
    def is_native(self) -> bool:
        """True if this gate belongs to the TILT native gate set."""
        return self.name in NATIVE_GATE_NAMES

    @property
    def is_unitary(self) -> bool:
        """True for proper quantum gates (not measure/barrier)."""
        return self.name not in ("measure", "barrier")

    @property
    def span(self) -> int:
        """Physical distance between the outermost qubits (0 for 1q gates)."""
        return max(self.qubits) - min(self.qubits)

    def remapped(self, mapping: Sequence[int] | Mapping[int, int]) -> "Gate":
        """Return a copy of the gate with qubits relabelled through *mapping*."""
        if isinstance(mapping, Mapping):
            new_qubits = tuple(mapping[q] for q in self.qubits)
        else:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        return Gate(self.name, new_qubits, self.params)

    def inverse(self) -> "Gate":
        """Return the inverse gate.

        Raises
        ------
        CircuitError
            If the gate has no well-defined inverse (measure, barrier).
        """
        if not self.is_unitary:
            raise CircuitError(f"gate {self.name!r} has no inverse")
        self_inverse = {"id", "x", "y", "z", "h", "cx", "cz", "swap", "ccx"}
        if self.name in self_inverse:
            return self
        pairs = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in pairs:
            return Gate(pairs[self.name], self.qubits)
        if self.name == "sx":
            return Gate("rx", self.qubits, (-math.pi / 2.0,))
        if self.name in ("rx", "ry", "rz", "p", "cp", "rzz", "rxx", "xx"):
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", self.qubits, (-theta, -lam, -phi))
        raise CircuitError(f"no inverse rule for gate {self.name!r}")

    def __str__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


def gate(name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> Gate:
    """Convenience constructor mirroring :class:`Gate`."""
    return Gate(name, tuple(qubits), tuple(params))
