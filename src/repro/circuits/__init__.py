"""Quantum circuit intermediate representation.

Public surface:

* :class:`~repro.circuits.gate.Gate` — immutable gate record.
* :class:`~repro.circuits.circuit.Circuit` — ordered gate container.
* :class:`~repro.circuits.dag.CircuitDAG` / :class:`~repro.circuits.dag.FrontierTracker`
  — dependency analysis.
* :func:`~repro.circuits.qasm.circuit_to_qasm` / :func:`~repro.circuits.qasm.qasm_to_circuit`
  — OpenQASM 2.0 interchange.
* :func:`~repro.circuits.unitary.circuit_unitary` — dense unitary for
  correctness checks.
* :func:`~repro.circuits.random.random_circuit` — random circuit generation.
"""

from repro.circuits.circuit import Circuit, circuit_from_gates
from repro.circuits.dag import CircuitDAG, FrontierTracker
from repro.circuits.gate import (
    GATE_SPECS,
    NATIVE_GATE_NAMES,
    TWO_QUBIT_GATE_NAMES,
    Gate,
    gate,
)
from repro.circuits.qasm import circuit_to_qasm, qasm_to_circuit
from repro.circuits.random import random_circuit, random_native_circuit
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    gate_matrix,
)

__all__ = [
    "GATE_SPECS",
    "NATIVE_GATE_NAMES",
    "TWO_QUBIT_GATE_NAMES",
    "Circuit",
    "CircuitDAG",
    "FrontierTracker",
    "Gate",
    "allclose_up_to_global_phase",
    "circuit_from_gates",
    "circuit_to_qasm",
    "circuit_unitary",
    "gate",
    "gate_matrix",
    "qasm_to_circuit",
    "random_circuit",
    "random_native_circuit",
]
