"""Minimal OpenQASM 2.0 export / import.

Only the subset of OpenQASM needed to round-trip circuits built from this
library's gate set is supported (a single quantum register, a single
classical register for measurements, and the gates listed in
:data:`repro.circuits.gate.GATE_SPECS`).
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import Circuit
from repro.circuits.gate import GATE_SPECS, Gate
from repro.exceptions import QasmError

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _format_angle(value: float) -> str:
    """Render an angle, using multiples of pi when exact for readability."""
    for denom in (1, 2, 4, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if math.isclose(value, math.pi * num / denom, rel_tol=0, abs_tol=1e-12):
                if denom == 1 and num == 1:
                    return "pi"
                if denom == 1 and num == -1:
                    return "-pi"
                if denom == 1:
                    return f"{num}*pi"
                if num == 1:
                    return f"pi/{denom}"
                if num == -1:
                    return f"-pi/{denom}"
                return f"{num}*pi/{denom}"
    if value == 0:
        return "0"
    return repr(value)


def circuit_to_qasm(circuit: Circuit) -> str:
    """Serialise *circuit* to OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if any(g.name == "measure" for g in circuit):
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        if gate.name == "barrier":
            targets = ",".join(f"q[{q}]" for q in gate.qubits)
            lines.append(f"barrier {targets};")
            continue
        if gate.name == "measure":
            (q,) = gate.qubits
            lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        name, params = gate.name, gate.params
        if name == "xx":
            # qelib1 has no native Molmer-Sorensen gate; xx(theta) =
            # exp(+i theta XX) = rxx(-2 theta) (see compiler.decompose).
            name, params = "rxx", (-2.0 * gate.params[0],)
        targets = ",".join(f"q[{q}]" for q in gate.qubits)
        if params:
            args = ",".join(_format_angle(p) for p in params)
            lines.append(f"{name}({args}) {targets};")
        else:
            lines.append(f"{name} {targets};")
    return "\n".join(lines) + "\n"


_QREG_RE = re.compile(r"qreg\s+(\w+)\[(\d+)\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\[(\d+)\]")
_MEASURE_RE = re.compile(r"measure\s+(\w+)\[(\d+)\]\s*->\s*(\w+)\[(\d+)\]")
_GATE_RE = re.compile(r"(\w+)\s*(?:\(([^)]*)\))?\s+(.+)")
_QUBIT_RE = re.compile(r"(\w+)\[(\d+)\]")


def _eval_angle(text: str) -> float:
    """Evaluate a QASM angle expression (numbers, pi, + - * /)."""
    cleaned = text.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\) ]*", cleaned):
        raise QasmError(f"unsupported angle expression: {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate angle {text!r}") from exc


def qasm_to_circuit(text: str, name: str = "qasm") -> Circuit:
    """Parse OpenQASM 2.0 text produced by :func:`circuit_to_qasm`."""
    num_qubits: int | None = None
    statements: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        statements.extend(part.strip() for part in line.split(";") if part.strip())

    circuit: Circuit | None = None
    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        qreg = _QREG_RE.match(stmt)
        if qreg:
            num_qubits = int(qreg.group(2))
            circuit = Circuit(num_qubits, name)
            continue
        if _CREG_RE.match(stmt):
            continue
        if circuit is None:
            raise QasmError("gate statement before qreg declaration")
        measure = _MEASURE_RE.match(stmt)
        if measure:
            circuit.measure(int(measure.group(2)))
            continue
        match = _GATE_RE.match(stmt)
        if not match:
            raise QasmError(f"cannot parse statement: {stmt!r}")
        gate_name, params_text, targets_text = match.groups()
        gate_name = gate_name.lower()
        if gate_name not in GATE_SPECS:
            raise QasmError(f"unsupported gate in QASM input: {gate_name!r}")
        params = (
            tuple(_eval_angle(p) for p in params_text.split(","))
            if params_text
            else ()
        )
        qubits = tuple(int(m.group(2)) for m in _QUBIT_RE.finditer(targets_text))
        if not qubits:
            raise QasmError(f"no qubit operands in statement: {stmt!r}")
        circuit.append(Gate(gate_name, qubits, params))
    if circuit is None:
        raise QasmError("no qreg declaration found")
    return circuit
