"""Random circuit utilities.

These are used for property-based tests (random circuit round-trips, routing
invariants) and as a building block of the RCS workload.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.gate import GATE_SPECS
from repro.exceptions import CircuitError

_ONE_QUBIT_POOL = ("h", "x", "y", "z", "s", "t", "rx", "ry", "rz")
_TWO_QUBIT_POOL = ("cx", "cz", "cp", "rzz", "swap")


def _random_params(name: str, rng: random.Random) -> tuple[float, ...]:
    """Draw uniformly random angles for however many parameters *name* takes."""
    _, num_params = GATE_SPECS[name]
    return tuple(rng.uniform(0, 2 * math.pi) for _ in range(num_params))


def random_circuit(
    num_qubits: int,
    num_gates: int,
    *,
    seed: int | None = None,
    rng: random.Random | None = None,
    two_qubit_fraction: float = 0.4,
    one_qubit_pool: Sequence[str] = _ONE_QUBIT_POOL,
    two_qubit_pool: Sequence[str] = _TWO_QUBIT_POOL,
    max_span: int | None = None,
) -> Circuit:
    """Generate a random circuit.

    Parameters
    ----------
    num_qubits, num_gates:
        Register width and total gate count.
    seed, rng:
        Source of randomness: pass *rng* to draw from an existing
        generator (callers sequencing several reproducible circuits
        share one stream), otherwise a fresh ``random.Random(seed)`` is
        used.  Passing both is an error — a seed would silently be
        ignored.
    two_qubit_fraction:
        Probability that each gate is two-qubit (when ``num_qubits >= 2``).
    one_qubit_pool, two_qubit_pool:
        Gate names to draw from; parameters are drawn uniformly in [0, 2*pi).
    max_span:
        If given, two-qubit gates only join qubits at most this far apart.
    """
    if rng is not None and seed is not None:
        raise CircuitError("pass either seed= or rng=, not both")
    if rng is None:
        rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"random_{num_qubits}q")
    for _ in range(num_gates):
        make_two_qubit = num_qubits >= 2 and rng.random() < two_qubit_fraction
        if make_two_qubit:
            name = rng.choice(list(two_qubit_pool))
            q1 = rng.randrange(num_qubits)
            if max_span is None:
                q2 = rng.choice([q for q in range(num_qubits) if q != q1])
            else:
                low = max(0, q1 - max_span)
                high = min(num_qubits - 1, q1 + max_span)
                q2 = rng.choice([q for q in range(low, high + 1) if q != q1])
            circuit.add(name, q1, q2, params=_random_params(name, rng))
        else:
            name = rng.choice(list(one_qubit_pool))
            q = rng.randrange(num_qubits)
            circuit.add(name, q, params=_random_params(name, rng))
    return circuit


def random_native_circuit(
    num_qubits: int,
    num_gates: int,
    *,
    seed: int | None = None,
    rng: random.Random | None = None,
    two_qubit_fraction: float = 0.4,
    max_span: int | None = None,
) -> Circuit:
    """Random circuit restricted to the TILT native gate set (rx/ry/rz/xx)."""
    circuit = random_circuit(
        num_qubits,
        num_gates,
        seed=seed,
        rng=rng,
        two_qubit_fraction=two_qubit_fraction,
        one_qubit_pool=("rx", "ry", "rz"),
        two_qubit_pool=("xx",),
        max_span=max_span,
    )
    circuit.name = f"random_native_{num_qubits}q"
    return circuit
