"""Gate and circuit unitaries.

Used by the dense state-vector simulator and by the correctness tests that
check the native-gate decompositions are equivalent (up to global phase) to
the gates they replace.

Conventions
-----------
* ``rx/ry/rz(theta) = exp(-i * theta/2 * P)`` (standard physics convention).
* ``xx(theta) = exp(+i * theta * X (x) X)`` — the Molmer-Sorensen gate as
  used in the TILT paper's CNOT decomposition, where ``xx(pi/4)`` is maximally
  entangling.
* ``rxx(theta) = exp(-i * theta/2 * X (x) X)`` and
  ``rzz(theta) = exp(-i * theta/2 * Z (x) Z)`` (qiskit-compatible).
* For multi-qubit gates the first listed qubit is the most significant bit of
  the basis-state index (``cx(c, t)`` flips ``t`` when ``c`` is 1).
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import SimulationError

_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)


def _rx(theta: float) -> np.ndarray:
    return math.cos(theta / 2) * _I2 - 1j * math.sin(theta / 2) * _X


def _ry(theta: float) -> np.ndarray:
    return math.cos(theta / 2) * _I2 - 1j * math.sin(theta / 2) * _Y


def _rz(theta: float) -> np.ndarray:
    return np.diag([cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)])


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    return np.array(
        [
            [math.cos(theta / 2), -cmath.exp(1j * lam) * math.sin(theta / 2)],
            [
                cmath.exp(1j * phi) * math.sin(theta / 2),
                cmath.exp(1j * (phi + lam)) * math.cos(theta / 2),
            ],
        ],
        dtype=complex,
    )


def _two_qubit_exponential(pauli: np.ndarray, coefficient: complex) -> np.ndarray:
    """exp(coefficient * pauli (x) pauli) for a Hermitian, involutory pauli."""
    kron = np.kron(pauli, pauli)
    return np.cosh(coefficient) * np.eye(4, dtype=complex) + np.sinh(coefficient) * kron


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of *gate* (2^k x 2^k for a k-qubit gate)."""
    name, params = gate.name, gate.params
    if name == "id":
        return _I2.copy()
    if name == "x":
        return _X.copy()
    if name == "y":
        return _Y.copy()
    if name == "z":
        return _Z.copy()
    if name == "h":
        return _H.copy()
    if name == "s":
        return np.diag([1, 1j]).astype(complex)
    if name == "sdg":
        return np.diag([1, -1j]).astype(complex)
    if name == "t":
        return np.diag([1, cmath.exp(1j * math.pi / 4)])
    if name == "tdg":
        return np.diag([1, cmath.exp(-1j * math.pi / 4)])
    if name == "sx":
        return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
    if name == "rx":
        return _rx(params[0])
    if name == "ry":
        return _ry(params[0])
    if name == "rz":
        return _rz(params[0])
    if name == "p":
        return np.diag([1, cmath.exp(1j * params[0])])
    if name == "u3":
        return _u3(*params)
    if name == "cx":
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
    if name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    if name == "cp":
        return np.diag([1, 1, 1, cmath.exp(1j * params[0])])
    if name == "rzz":
        theta = params[0]
        return np.diag(
            [
                cmath.exp(-1j * theta / 2),
                cmath.exp(1j * theta / 2),
                cmath.exp(1j * theta / 2),
                cmath.exp(-1j * theta / 2),
            ]
        )
    if name == "rxx":
        return _two_qubit_exponential(_X, -1j * params[0] / 2)
    if name == "xx":
        return _two_qubit_exponential(_X, 1j * params[0])
    if name == "ccx":
        matrix = np.eye(8, dtype=complex)
        matrix[[6, 7], :] = matrix[[7, 6], :]
        return matrix
    raise SimulationError(f"gate {name!r} has no unitary matrix")


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Compute the full unitary of *circuit* (exponential in qubit count).

    Measurements are rejected; barriers are ignored.  Intended for
    correctness checks on small circuits (<= ~10 qubits).
    """
    n = circuit.num_qubits
    if n > 12:
        raise SimulationError(
            f"circuit_unitary limited to 12 qubits, got {n}"
        )
    dim = 2**n
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit:
        if gate.name == "barrier":
            continue
        if gate.name == "measure":
            raise SimulationError("circuit_unitary cannot handle measurements")
        unitary = _expand(gate_matrix(gate), gate.qubits, n) @ unitary
    return unitary


def _expand(matrix: np.ndarray, qubits: tuple[int, ...], n: int) -> np.ndarray:
    """Embed a k-qubit gate matrix into the full 2^n-dimensional space."""
    k = len(qubits)
    dim = 2**n
    full = np.zeros((dim, dim), dtype=complex)
    # Qubit 0 is the most significant bit of the basis index.
    shifts = [n - 1 - q for q in qubits]
    other = [q for q in range(n) if q not in qubits]
    other_shifts = [n - 1 - q for q in other]
    for rest_bits in range(2 ** len(other)):
        base = 0
        for bit_index, shift in enumerate(other_shifts):
            if (rest_bits >> (len(other) - 1 - bit_index)) & 1:
                base |= 1 << shift
        indices = []
        for local in range(2**k):
            index = base
            for bit_index, shift in enumerate(shifts):
                if (local >> (k - 1 - bit_index)) & 1:
                    index |= 1 << shift
            indices.append(index)
        for row_local, row_global in enumerate(indices):
            for col_local, col_global in enumerate(indices):
                full[row_global, col_global] = matrix[row_local, col_local]
    return full


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray,
                                atol: float = 1e-9) -> bool:
    """True if unitaries *a* and *b* differ only by a global phase."""
    if a.shape != b.shape:
        return False
    overlap = np.trace(a.conj().T @ b)
    if abs(overlap) < atol:
        return False
    phase = overlap / abs(overlap)
    return bool(np.allclose(a * phase, b, atol=atol))
