"""Reproduction of TILT (HPCA 2021): the LinQ toolflow and its substrates.

The package is organised as:

* :mod:`repro.circuits` — circuit IR (gates, circuits, DAG, QASM, unitaries).
* :mod:`repro.workloads` — the Table II benchmark generators.
* :mod:`repro.arch` — device models (TILT, Ideal TI, QCCD).
* :mod:`repro.noise` — gate times (Eq. 3), heating and fidelity (Eq. 4).
* :mod:`repro.compiler` — LinQ passes: decomposition, mapping, swap
  insertion (Algorithm 1), tape scheduling (Algorithm 2), QCCD routing.
* :mod:`repro.sim` — statevector, TILT, QCCD and Ideal-TI simulators.
* :mod:`repro.core` — the :class:`LinQ` facade, architecture comparisons
  and parameter sweeps.
* :mod:`repro.search` — declarative design-space exploration and
  autotuning (grid / random / successive halving, Pareto fronts).
* :mod:`repro.analysis` — drivers that regenerate every figure and table.

Quickstart::

    from repro import LinQ, TiltDevice, workloads

    toolflow = LinQ(TiltDevice(num_qubits=64, head_size=16))
    report = toolflow.run(workloads.qft_workload(64))
    print(report.summary())
"""

from repro import arch, circuits, compiler, core, noise, search, sim, workloads
from repro import exec as exec_  # noqa: A004 - the subpackage is repro.exec
from repro.arch import IdealTrappedIonDevice, QccdDevice, TiltDevice
from repro.circuits import Circuit, Gate
from repro.compiler import (
    CompileResult,
    CompilerConfig,
    LinQCompiler,
    QccdCompiler,
    compile_for_qccd,
    compile_for_tilt,
)
from repro.core import (
    LinQ,
    LinQRunReport,
    compare_architectures,
    max_swap_len_sweep,
    tilt_vs_qccd_ratios,
)
from repro.exec import (
    ExecutionEngine,
    JobResult,
    JobSpec,
    ResultCache,
    RunManifest,
    RunStore,
    read_manifest,
    run_jobs,
    run_sampled_job,
)
from repro.exceptions import (
    CircuitError,
    CompilationError,
    DeviceError,
    QasmError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
)
from repro.noise import NoiseParameters
from repro.sim import (
    IdealSimulator,
    QccdSimulator,
    ShotResult,
    SimulationResult,
    StatevectorSimulator,
    TiltSimulator,
    merge_shot_results,
)
from repro.version import __version__

__all__ = [
    "Circuit",
    "CircuitError",
    "CompilationError",
    "CompileResult",
    "CompilerConfig",
    "DeviceError",
    "ExecutionEngine",
    "Gate",
    "IdealSimulator",
    "IdealTrappedIonDevice",
    "JobResult",
    "JobSpec",
    "LinQ",
    "LinQCompiler",
    "LinQRunReport",
    "NoiseParameters",
    "ResultCache",
    "QasmError",
    "QccdCompiler",
    "QccdDevice",
    "QccdSimulator",
    "ReproError",
    "RoutingError",
    "RunManifest",
    "RunStore",
    "SchedulingError",
    "ShotResult",
    "SimulationError",
    "SimulationResult",
    "StatevectorSimulator",
    "TiltDevice",
    "TiltSimulator",
    "__version__",
    "arch",
    "circuits",
    "compare_architectures",
    "compile_for_qccd",
    "compile_for_tilt",
    "compiler",
    "core",
    "exec_",
    "max_swap_len_sweep",
    "merge_shot_results",
    "noise",
    "read_manifest",
    "run_jobs",
    "run_sampled_job",
    "search",
    "sim",
    "tilt_vs_qccd_ratios",
    "workloads",
]
