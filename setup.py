"""Setuptools entry point.

The build configuration lives in ``setup.cfg``; this file exists so that
``pip install -e .`` works with the legacy (non-PEP-517) code path, which is
the only editable-install path available in fully offline environments
without the ``wheel`` package.
"""

from setuptools import setup

setup()
