"""Shot-based noisy sampling with `repro.sim.stochastic`.

Runs a tier-1 workload (BV-16) through the TILT toolflow and samples its
Eq. 4 noise shot by shot instead of folding it into a single analytic
number: per-shot error records, a measurement-count histogram, and a
success-rate estimate with a 95 % Wilson confidence interval that brackets
the analytic value.  The second half fans a larger run out through the
execution engine (sharded, cached, reproducible for any worker count).

Run with:  PYTHONPATH=src python examples/noisy_sampling.py
"""

from repro import ExecutionEngine, JobSpec, TiltDevice, run_sampled_job
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.noise.parameters import NoiseParameters
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.bv import bv_workload


def direct_sampling() -> None:
    """Drive the simulator directly: counts, records, confidence interval."""
    device = TiltDevice(num_qubits=16, head_size=8)
    circuit = bv_workload(16)
    compiled = LinQCompiler(device, CompilerConfig()).compile(circuit)
    simulator = TiltSimulator(device, NoiseParameters.paper_defaults())

    analytic = simulator.run(compiled)
    shot = simulator.run_stochastic(compiled, shots=5000, seed=2021,
                                    sample_counts=True)

    print("analytic:", analytic.summary())
    print("sampled: ", shot.summary())
    low, high = shot.confidence_interval
    print(f"analytic rate inside 95% CI [{low:.4f}, {high:.4f}]:",
          shot.agrees_with_analytic())

    top = sorted(shot.counts.items(), key=lambda item: -item[1])[:3]
    print("top outcomes:", ", ".join(f"{bits}x{n}" for bits, n in top))
    if shot.records:
        record = shot.records[0]
        print(f"first erroneous shot #{record.shot}: "
              + ", ".join(f"{label}@gate{idx}" for idx, label in record.errors))


def engine_fanout() -> None:
    """Fan 20k shots out through the execution engine (4 shards)."""
    spec = JobSpec(
        circuit=bv_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        config=CompilerConfig(),
        shots=20_000,
        seed=2021,
        label="bv/noisy-sampling",
    )
    engine = ExecutionEngine(workers=4)
    result = run_sampled_job(spec, engine=engine)
    print("\nengine fan-out:", result.shot.summary())
    print("engine stats:  ", engine.stats.summary())
    # Same seed, different sharding -> bit-identical shot results:
    again = run_sampled_job(spec, shards=2, engine=ExecutionEngine(workers=1))
    print("2-shard serial rerun identical:", again.shot == result.shot)


if __name__ == "__main__":
    direct_sampling()
    engine_fanout()
