#!/usr/bin/env python3
"""Quickstart: compile and simulate one circuit on a TILT machine.

Builds a 64-qubit Bernstein-Vazirani circuit, compiles it with the LinQ
toolflow for a 64-ion tape with a 16-laser head, and prints the compilation
statistics and the estimated program success rate.

Run with::

    python examples/quickstart.py [num_qubits] [head_size]
"""

from __future__ import annotations

import sys

from repro import LinQ, TiltDevice, workloads


def main() -> int:
    num_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    head_size = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    device = TiltDevice(num_qubits=num_qubits, head_size=head_size)
    print(device.describe())

    circuit = workloads.bv_workload(num_qubits)
    print(f"workload: {circuit.summary()}")

    toolflow = LinQ(device)
    report = toolflow.run(circuit)

    print()
    print(report.summary())
    print()
    print("schedule head positions:",
          report.compile_result.program.positions())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
