#!/usr/bin/env python3
"""Compare TILT against QCCD and an ideal trapped-ion device (Figure 8).

Runs each requested Table II workload through four machine configurations
(TILT with 16- and 32-wide heads, a fully connected ideal device, and a
QCCD machine) and prints the success rates plus the TILT-vs-QCCD ratios —
the experiment behind the paper's "up to 4.35x / 1.95x on average" claim.

Run with::

    python examples/architecture_comparison.py [--scale small|paper] [names...]
"""

from __future__ import annotations

import argparse

from repro import tilt_vs_qccd_ratios
from repro.analysis import experiments
from repro.analysis.tables import format_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "paper"), default="small",
                        help="workload widths (paper = 64/78 qubits)")
    parser.add_argument("workloads", nargs="*",
                        default=["ADDER", "QAOA", "RCS"],
                        help="Table II workload names to compare")
    args = parser.parse_args()

    comparisons = experiments.figure8(args.scale,
                                      workloads=tuple(args.workloads))
    rows = []
    for comparison in comparisons:
        for architecture, result in comparison.results.items():
            rows.append([
                comparison.circuit_name,
                architecture,
                f"{result.success_rate:.3e}",
                f"{result.log10_success_rate:.2f}",
                result.num_moves,
            ])
    print(format_table(
        ["workload", "architecture", "success", "log10(success)", "moves"],
        rows,
    ))

    print()
    ratios = tilt_vs_qccd_ratios(comparisons)
    print(format_table(["workload", "TILT / QCCD success ratio"],
                       [[k, f"{v:.2f}x"] for k, v in ratios.items()]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
