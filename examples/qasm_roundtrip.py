#!/usr/bin/env python3
"""Compile an externally supplied OpenQASM 2.0 circuit for TILT.

Demonstrates the interchange path a downstream user would take: read a
circuit from OpenQASM text (here generated on the fly, but a ``.qasm`` file
path can be passed instead), compile it with LinQ, print the compiled
schedule, and write the routed physical circuit back out as OpenQASM.

Run with::

    python examples/qasm_roundtrip.py [path/to/circuit.qasm]
"""

from __future__ import annotations

import pathlib
import sys

from repro import LinQ, TiltDevice
from repro.circuits import circuit_to_qasm, qasm_to_circuit
from repro.workloads.qft import qft_workload

DEMO_WIDTH = 20


def load_circuit(argv: list[str]):
    if len(argv) > 1:
        text = pathlib.Path(argv[1]).read_text()
        return qasm_to_circuit(text, name=pathlib.Path(argv[1]).stem)
    # No file given: round-trip a QFT through QASM to prove the path works.
    text = circuit_to_qasm(qft_workload(DEMO_WIDTH))
    return qasm_to_circuit(text, name="qft_from_qasm")


def main() -> int:
    circuit = load_circuit(sys.argv)
    print(f"loaded {circuit.summary()}")

    device = TiltDevice(num_qubits=max(circuit.num_qubits, DEMO_WIDTH),
                        head_size=8)
    report = LinQ(device).run(circuit)
    print(report.summary())

    routed_qasm = circuit_to_qasm(report.compile_result.routed_circuit)
    out_path = pathlib.Path("routed_output.qasm")
    out_path.write_text(routed_qasm)
    print(f"\nrouted physical circuit written to {out_path} "
          f"({len(routed_qasm.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
