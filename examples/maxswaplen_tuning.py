#!/usr/bin/env python3
"""Tune MaxSwapLen for a routing-heavy workload (Figure 7).

Restricting the span of inserted SWAPs below the laser-head width costs a
few extra SWAPs but gives the tape-movement scheduler more freedom; this
script sweeps the restriction for one workload, prints every point, and
reports the sweet spot — exactly the iteration loop the paper describes in
Section IV-C.

Run with::

    python examples/maxswaplen_tuning.py [--workload QFT] [--scale small|paper]
"""

from __future__ import annotations

import argparse

from repro import TiltDevice
from repro.analysis import experiments
from repro.analysis.tables import format_table
from repro.core.sweep import max_swap_len_sweep
from repro.workloads.suite import build_workload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="QFT",
                        help="Table II workload name (BV, QFT or SQRT)")
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    args = parser.parse_args()

    circuit = build_workload(args.workload, args.scale)
    head_size = experiments.primary_head_size(args.scale, circuit.num_qubits)
    device = TiltDevice(num_qubits=circuit.num_qubits, head_size=head_size)
    print(f"{device.describe()}; workload {circuit.summary()}")

    points = max_swap_len_sweep(circuit, device,
                                base_config=experiments.ROUTING_STUDY_CONFIG)
    print(format_table(
        ["MaxSwapLen", "swaps", "moves", "tape travel (um)", "success rate"],
        [[int(p.value), p.num_swaps, p.num_moves,
          f"{p.move_distance_um:.0f}", f"{p.success_rate:.3e}"]
         for p in points],
    ))

    best = max(points, key=lambda point: point.log10_success_rate)
    print(f"\nsweet spot: MaxSwapLen = {int(best.value)} "
          f"(success rate {best.success_rate:.3e})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
