#!/usr/bin/env python3
"""Tune MaxSwapLen for a routing-heavy workload (Figure 7).

Restricting the span of inserted SWAPs below the laser-head width costs a
few extra SWAPs but gives the tape-movement scheduler more freedom; this
script explores the restriction with the :mod:`repro.search` subsystem —
the same iteration loop the paper describes in Section IV-C, but as a
declarative :class:`~repro.search.SearchSpace` walked by a pluggable
strategy, with the Pareto view (success vs execution time vs transport
work) and per-knob sensitivity for free.

Run with::

    python examples/maxswaplen_tuning.py [--workload QFT] [--scale small|paper]
        [--strategy grid|random|halving] [--shots N] [--scenario NAME]

``--strategy halving --shots 1000`` scores every MaxSwapLen with the
cheap analytic model first and promotes only the best half to the
full sampled evaluation — fewer engine jobs than the exhaustive grid.
"""

from __future__ import annotations

import argparse

from repro import TiltDevice
from repro.analysis import experiments
from repro.analysis.tables import format_table
from repro.core.sweep import default_max_swap_lengths
from repro.search import (
    GridStrategy,
    RandomStrategy,
    SuccessiveHalvingStrategy,
    SearchSpace,
    config_knob,
    run_search,
)
from repro.workloads.suite import build_workload


def make_strategy(name: str, num_candidates: int):
    if name == "grid":
        return GridStrategy()
    if name == "random":
        return RandomStrategy(num_samples=max(2, num_candidates // 2), seed=7)
    if name == "halving":
        return SuccessiveHalvingStrategy()
    raise ValueError(f"unknown strategy {name!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="QFT",
                        help="Table II workload name (BV, QFT or SQRT)")
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument("--strategy",
                        choices=("grid", "random", "halving"), default="grid")
    parser.add_argument("--shots", type=int, default=0,
                        help="full-fidelity sampling budget (0 = analytic)")
    parser.add_argument("--scenario", default="baseline",
                        help="registered correlated-noise scenario name")
    args = parser.parse_args()

    circuit = build_workload(args.workload, args.scale)
    head_size = experiments.primary_head_size(args.scale, circuit.num_qubits)
    device = TiltDevice(num_qubits=circuit.num_qubits, head_size=head_size)
    print(f"{device.describe()}; workload {circuit.summary()}")

    lengths = default_max_swap_lengths(device)
    space = SearchSpace(
        circuit=circuit,
        device=device,
        knobs=[config_knob("max_swap_len", lengths)],
        config=experiments.ROUTING_STUDY_CONFIG,
        scenario=args.scenario,
        shots=args.shots,
        shards=4 if args.shots else 1,
    )
    result = run_search(space, make_strategy(args.strategy, len(lengths)))

    front = {point.candidate for point in result.pareto_front()}
    print(format_table(
        ["MaxSwapLen", "swaps", "moves", "success rate", "log10",
         "exec time (s)", "Pareto"],
        [[point.assignments["max_swap_len"], point.num_swaps, point.num_moves,
          f"{point.success_rate:.3e}", f"{point.log10_success:.4f}",
          f"{point.execution_time_s:.4f}",
          "*" if point.candidate in front else ""]
         for point in result.points],
    ))

    best = result.best()
    print(f"\nsweet spot: MaxSwapLen = {best.assignments['max_swap_len']} "
          f"(success rate {best.success_rate:.3e})")
    print(f"strategy {result.strategy!r} issued {result.num_jobs} engine "
          f"jobs for {len(result.points)} full-fidelity points")
    for row in result.sensitivity():
        print(f"sensitivity[{row.knob}] = {row.range_decades:.4f} decades")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
