#!/usr/bin/env python3
"""End-to-end QAOA MaxCut study on a TILT machine.

This example exercises the full stack the way a domain user would:

1. build a QAOA MaxCut ansatz for a small ring graph,
2. verify with the exact state-vector simulator that the chosen angles
   actually concentrate probability on good cuts,
3. compile the same ansatz for a TILT device and report how the compiled
   program's swap/move overhead and estimated success rate change with the
   laser-head size.

Run with::

    python examples/qaoa_maxcut_study.py [--vertices 12] [--rounds 3]
"""

from __future__ import annotations

import argparse

from repro import LinQ, TiltDevice
from repro.analysis.tables import format_table
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.qaoa import qaoa_maxcut, ring_graph_edges


def cut_size(bits: str, edges: list[tuple[int, int]]) -> int:
    """Number of edges cut by the assignment encoded in *bits*."""
    return sum(1 for a, b in edges if bits[a] != bits[b])


def expected_cut(circuit, edges) -> float:
    """Expectation of the cut size over the QAOA output distribution."""
    probabilities = StatevectorSimulator().probabilities(circuit)
    n = circuit.num_qubits
    total = 0.0
    for basis_state, probability in enumerate(probabilities):
        bits = format(basis_state, f"0{n}b")
        total += probability * cut_size(bits, edges)
    return total


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args()

    edges = ring_graph_edges(args.vertices)
    circuit = qaoa_maxcut(args.vertices, args.rounds, edges=edges,
                          gammas=[0.4] * args.rounds,
                          betas=[0.35] * args.rounds)

    # 1) Algorithmic sanity check (exact simulation, small sizes only).
    if args.vertices <= 14:
        random_guess = len(edges) / 2
        qaoa_cut = expected_cut(circuit, edges)
        print(f"ring graph with {len(edges)} edges: "
              f"random-assignment expected cut = {random_guess:.2f}, "
              f"QAOA expected cut = {qaoa_cut:.2f}")

    # 2) Architectural study: how does the head size affect this ansatz?
    rows = []
    for head_size in (4, 8, args.vertices):
        device = TiltDevice(num_qubits=args.vertices,
                            head_size=min(head_size, args.vertices))
        report = LinQ(device).run(circuit)
        rows.append([
            device.head_size,
            report.num_swaps,
            report.num_moves,
            f"{report.compile_result.stats.move_distance_um:.0f}",
            f"{report.success_rate:.4f}",
            f"{report.execution_time_s * 1e3:.2f} ms",
        ])
    print()
    print(format_table(
        ["head size", "swaps", "moves", "travel (um)", "success", "exec time"],
        rows,
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
