"""Table III — LinQ compilation results.

Benchmarks the compiler's two expensive passes (swap insertion and tape
scheduling) per workload and head size — the t_swap / t_move columns of
Table III — and prints the full reproduced table (#moves, tape travel,
estimated execution time).
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.report import table3_report
from repro.arch.tilt import TiltDevice
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.compiler.schedule import TapeScheduler
from repro.compiler.swap_linq import LinqSwapInserter
from repro.workloads.suite import build_workload, standard_suite

WORKLOADS = [spec.name for spec in standard_suite()]
HEAD_INDEX = [0, 1]  # small and large head of the active scale


def _device(scale: str, name: str, head_index: int) -> TiltDevice:
    circuit = build_workload(name, scale)
    head = experiments.head_sizes_for(scale, circuit.num_qubits)[head_index]
    return TiltDevice(num_qubits=circuit.num_qubits, head_size=head)


@pytest.mark.parametrize("head_index", HEAD_INDEX)
@pytest.mark.parametrize("name", WORKLOADS)
def test_swap_insertion_time(benchmark, name, head_index, scale):
    """t_swap: routing time for one workload / head size."""
    circuit = build_workload(name, scale)
    device = _device(scale, name, head_index)
    native = merge_adjacent_rotations(decompose_to_native(circuit))
    router = LinqSwapInserter(device)
    result = benchmark.pedantic(router.route, args=(native,),
                                iterations=1, rounds=1)
    assert result.circuit.num_gates() >= native.num_gates()


@pytest.mark.parametrize("head_index", HEAD_INDEX)
@pytest.mark.parametrize("name", WORKLOADS)
def test_tape_scheduling_time(benchmark, name, head_index, scale):
    """t_move: scheduling time for one workload / head size."""
    circuit = build_workload(name, scale)
    device = _device(scale, name, head_index)
    native = merge_adjacent_rotations(decompose_to_native(circuit))
    routed = LinqSwapInserter(device).route(native).circuit
    scheduler = TapeScheduler(device)
    program = benchmark.pedantic(scheduler.schedule, args=(routed,),
                                 iterations=1, rounds=1)
    assert program.num_scheduled_gates == len(routed)


def test_table3_report_and_trends(scale):
    """A wider head needs fewer moves and shorter travel for every workload."""
    rows = experiments.table3(scale)
    by_workload: dict[str, list] = {}
    for row in rows:
        by_workload.setdefault(row.workload, []).append(row)
    for name, pair in by_workload.items():
        small_head, large_head = sorted(pair, key=lambda r: r.head_size)
        assert large_head.num_moves <= small_head.num_moves, name
        assert large_head.move_distance_um <= small_head.move_distance_um, name
    print()
    print(table3_report(scale))


def test_full_pipeline_compile(benchmark, scale):
    """End-to-end compile of the heaviest workload (QFT) at the small head."""
    circuit = build_workload("QFT", scale)
    device = _device(scale, "QFT", 0)
    compiler = LinQCompiler(device, CompilerConfig())
    result = benchmark.pedantic(compiler.compile, args=(circuit,),
                                iterations=1, rounds=1)
    result.program.validate()


def test_engine_batch_compile(benchmark, scale, noise):
    """The same Table III jobs submitted as one engine batch."""
    from repro.analysis.experiments import head_sizes_for
    from repro.exec import ExecutionEngine, JobSpec

    specs = []
    for name in WORKLOADS:
        circuit = build_workload(name, scale)
        for head in head_sizes_for(scale, circuit.num_qubits):
            device = TiltDevice(num_qubits=circuit.num_qubits, head_size=head)
            specs.append(JobSpec(circuit=circuit, device=device, noise=noise))

    engine = ExecutionEngine(workers=1)
    results = benchmark.pedantic(engine.run, args=(specs,),
                                 iterations=1, rounds=1)
    assert len(results) == len(specs)
    benchmark.extra_info["engine"] = engine.stats.summary()
