"""Stochastic-sampling benchmarks: shots/sec, serial vs pooled sharding.

Tracks the throughput of the :mod:`repro.sim.stochastic` subsystem on a
tier-1 workload and pins the acceptance behaviour of the engine fan-out:
sharded pooled runs must be bit-identical to the serial pass.  As with the
engine benchmarks, pool *speedup* is hardware-dependent and therefore
recorded in ``extra_info`` rather than asserted.

``test_serial_shots_per_second`` (the ratcheted BENCH_* trajectory
metric) times *sampling only*: the sampler is prebuilt through the
simulators' ``build_sampler`` seam so the timed region is exactly
``StochasticSampler.run`` — the loop the vectorized shot kernels
replaced.  The whole-job path (compile + analytics + sampling) is
recorded separately by ``test_end_to_end_job_shots_per_second``, and
``test_batched_statevector_patterns`` covers the batched pattern
re-simulation kernel of :mod:`repro.sim.statevector`.
"""

from __future__ import annotations

import time

from repro.analysis import experiments
from repro.circuits.gate import Gate
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.exec import ExecutionEngine, JobSpec, run_sampled_job
from repro.sim.statevector import batch_probabilities_with_insertions
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.qft import qft_workload
from repro.workloads.suite import build_workload

#: Enough shots that sampling (not compilation) dominates the wall time.
BENCH_SHOTS = 20_000


def _spec(scale, noise, shots=BENCH_SHOTS) -> JobSpec:
    name = "QFT"
    return JobSpec(
        circuit=build_workload(name, scale),
        device=experiments.device_for(scale, name),
        config=CompilerConfig(),
        noise=noise,
        shots=shots,
        seed=2021,
        label=f"{name}/stochastic",
    )


def _sampler(scale, noise):
    """The prebuilt sampler of the benchmark workload (untimed setup)."""
    name = "QFT"
    device = experiments.device_for(scale, name)
    compiled = LinQCompiler(device, CompilerConfig()).compile(
        build_workload(name, scale)
    )
    return TiltSimulator(device, noise).build_sampler(compiled)


def test_serial_shots_per_second(benchmark, scale, noise):
    """Sampling-only serial throughput (the BENCH_* trajectory metric)."""
    sampler = _sampler(scale, noise)
    result = benchmark.pedantic(
        sampler.run, args=(BENCH_SHOTS,), kwargs={"seed": 2021},
        iterations=1, rounds=5, warmup_rounds=1,
    )
    assert result.shots == BENCH_SHOTS
    assert sampler.last_stats["mode"] == "vectorized"
    benchmark.extra_info["shots"] = BENCH_SHOTS
    benchmark.extra_info["shots_per_second"] = round(
        BENCH_SHOTS / benchmark.stats.stats.mean
    )
    benchmark.extra_info["sampled_success"] = result.success_rate
    benchmark.extra_info["analytic_success"] = result.expected_success_rate


def test_end_to_end_job_shots_per_second(benchmark, scale, noise):
    """Whole-job throughput: compile + analytics + sampling, one shard."""
    spec = _spec(scale, noise)
    result = benchmark.pedantic(
        run_sampled_job, args=(spec,),
        kwargs={"shards": 1, "engine": ExecutionEngine(workers=1)},
        iterations=1, rounds=1,
    )
    assert result.shot is not None and result.shot.shots == BENCH_SHOTS
    benchmark.extra_info["shots"] = BENCH_SHOTS
    benchmark.extra_info["shots_per_second"] = round(
        BENCH_SHOTS / benchmark.stats.stats.mean
    )
    benchmark.extra_info["sampled_success"] = result.shot.success_rate
    benchmark.extra_info["analytic_success"] = (
        result.shot.expected_success_rate
    )


def test_batched_statevector_patterns(benchmark):
    """Throughput of the batched pattern re-simulation kernel.

    One shared 10-qubit QFT base sequence, 64 members with distinct
    sparse Pauli insertions — the shape of the sampler's distinct
    triggered-error patterns.
    """
    circuit = qft_workload(10)
    gates = list(circuit)
    insertions = [
        {member % len(gates): [Gate("x", (member % circuit.num_qubits,))]}
        for member in range(64)
    ]
    result = benchmark.pedantic(
        batch_probabilities_with_insertions,
        args=(gates, circuit.num_qubits, insertions),
        iterations=1, rounds=3, warmup_rounds=1,
    )
    assert result.shape == (64, 2 ** circuit.num_qubits)
    benchmark.extra_info["batch"] = 64


def test_pooled_sharding_matches_serial(scale, noise):
    """4-shard pooled sampling is bit-identical to the serial run."""
    spec = _spec(scale, noise, shots=4000)
    serial_start = time.perf_counter()
    serial = run_sampled_job(spec, shards=1,
                             engine=ExecutionEngine(workers=1))
    serial_s = time.perf_counter() - serial_start
    pooled_start = time.perf_counter()
    pooled = run_sampled_job(spec, shards=4,
                             engine=ExecutionEngine(workers=4))
    pooled_s = time.perf_counter() - pooled_start
    assert pooled.shot == serial.shot
    # informational only: pool startup dominates at small shot counts
    print(f"serial {4000 / serial_s:.0f} shots/s, "
          f"pooled {4000 / pooled_s:.0f} shots/s")


def test_resampling_is_cache_served(scale, noise):
    """Re-running the same seeded job is free (content-hash cache)."""
    spec = _spec(scale, noise, shots=2000)
    engine = ExecutionEngine(workers=1)
    cold = run_sampled_job(spec, shards=2, engine=engine)
    engine.stats.reset()
    warm = run_sampled_job(spec, shards=2, engine=engine)
    assert warm.shot == cold.shot
    assert engine.stats.cache_hits == 2
    assert engine.stats.jobs_executed == 0
