"""Stochastic-sampling benchmarks: shots/sec, serial vs pooled sharding.

Tracks the throughput of the :mod:`repro.sim.stochastic` subsystem on a
tier-1 workload and pins the acceptance behaviour of the engine fan-out:
sharded pooled runs must be bit-identical to the serial pass.  As with the
engine benchmarks, pool *speedup* is hardware-dependent and therefore
recorded in ``extra_info`` rather than asserted.
"""

from __future__ import annotations

import time

from repro.analysis import experiments
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobSpec, run_sampled_job
from repro.workloads.suite import build_workload

#: Enough shots that sampling (not compilation) dominates the wall time.
BENCH_SHOTS = 20_000


def _spec(scale, noise, shots=BENCH_SHOTS) -> JobSpec:
    name = "QFT"
    return JobSpec(
        circuit=build_workload(name, scale),
        device=experiments.device_for(scale, name),
        config=CompilerConfig(),
        noise=noise,
        shots=shots,
        seed=2021,
        label=f"{name}/stochastic",
    )


def test_serial_shots_per_second(benchmark, scale, noise):
    """Throughput of one serial shard (the BENCH_* trajectory metric)."""
    spec = _spec(scale, noise)
    result = benchmark.pedantic(
        run_sampled_job, args=(spec,),
        kwargs={"shards": 1, "engine": ExecutionEngine(workers=1)},
        iterations=1, rounds=1,
    )
    assert result.shot is not None and result.shot.shots == BENCH_SHOTS
    benchmark.extra_info["shots"] = BENCH_SHOTS
    benchmark.extra_info["shots_per_second"] = round(
        BENCH_SHOTS / benchmark.stats.stats.mean
    )
    benchmark.extra_info["sampled_success"] = result.shot.success_rate
    benchmark.extra_info["analytic_success"] = (
        result.shot.expected_success_rate
    )


def test_pooled_sharding_matches_serial(scale, noise):
    """4-shard pooled sampling is bit-identical to the serial run."""
    spec = _spec(scale, noise, shots=4000)
    serial_start = time.perf_counter()
    serial = run_sampled_job(spec, shards=1,
                             engine=ExecutionEngine(workers=1))
    serial_s = time.perf_counter() - serial_start
    pooled_start = time.perf_counter()
    pooled = run_sampled_job(spec, shards=4,
                             engine=ExecutionEngine(workers=4))
    pooled_s = time.perf_counter() - pooled_start
    assert pooled.shot == serial.shot
    # informational only: pool startup dominates at small shot counts
    print(f"serial {4000 / serial_s:.0f} shots/s, "
          f"pooled {4000 / pooled_s:.0f} shots/s")


def test_resampling_is_cache_served(scale, noise):
    """Re-running the same seeded job is free (content-hash cache)."""
    spec = _spec(scale, noise, shots=2000)
    engine = ExecutionEngine(workers=1)
    cold = run_sampled_job(spec, shards=2, engine=engine)
    engine.stats.reset()
    warm = run_sampled_job(spec, shards=2, engine=engine)
    assert warm.shot == cold.shot
    assert engine.stats.cache_hits == 2
    assert engine.stats.jobs_executed == 0
