"""Ablation benchmarks beyond the paper's figures.

DESIGN.md calls out three design choices of this reproduction whose impact
is worth quantifying: the initial-mapping heuristic, the Eq. 1 lookahead
window, and the Eq. 1 discount factor alpha.  These benches time each
configuration and record the resulting swap/move counts so regressions in
the heuristics are visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.compiler.pipeline import LinQCompiler
from repro.exec import JobSpec, execute_spec
from repro.workloads.suite import build_workload

ABLATION_WORKLOAD = "QFT"


def _compile_job(scale: str, **overrides) -> JobSpec:
    """A compile-only engine job for QFT with config overrides applied."""
    circuit = build_workload(ABLATION_WORKLOAD, scale)
    device = experiments.device_for(scale, ABLATION_WORKLOAD)
    config = experiments.ROUTING_STUDY_CONFIG.with_overrides(**overrides)
    return JobSpec(circuit=circuit, device=device, config=config,
                   simulate=False)


@pytest.mark.parametrize("mapper", ["trivial", "spectral", "greedy"])
def test_mapper_ablation(benchmark, mapper, scale):
    """Compile QFT with each initial-mapping heuristic."""
    spec = _compile_job(scale, mapper=mapper)
    result = benchmark.pedantic(execute_spec, args=(spec,),
                                iterations=1, rounds=1)
    benchmark.extra_info["num_swaps"] = result.stats.num_swaps
    benchmark.extra_info["num_moves"] = result.stats.num_moves


@pytest.mark.parametrize("lookahead", [1, 20, 200])
def test_lookahead_ablation(benchmark, lookahead, scale):
    """Compile QFT with increasingly deep Eq. 1 lookahead windows."""
    spec = _compile_job(scale, lookahead_window=lookahead)
    result = benchmark.pedantic(execute_spec, args=(spec,),
                                iterations=1, rounds=1)
    benchmark.extra_info["num_swaps"] = result.stats.num_swaps
    benchmark.extra_info["opposing_ratio"] = result.stats.opposing_swap_ratio


@pytest.mark.parametrize("alpha", [0.5, 0.8, 0.98])
def test_alpha_ablation(benchmark, alpha, scale):
    """Compile QFT with different Eq. 1 discount factors."""
    spec = _compile_job(scale, alpha=alpha)
    result = benchmark.pedantic(execute_spec, args=(spec,),
                                iterations=1, rounds=1)
    benchmark.extra_info["num_swaps"] = result.stats.num_swaps


@pytest.mark.parametrize("interval", [0, 8, 2])
def test_tilt_sympathetic_cooling(benchmark, interval, scale, noise):
    """Section VII extension: re-cool the tape every N moves (0 = off)."""
    from repro.sim.tilt_sim import TiltSimulator

    circuit = build_workload(ABLATION_WORKLOAD, scale)
    device = experiments.device_for(scale, ABLATION_WORKLOAD)
    compiled = LinQCompiler(device, experiments.ROUTING_STUDY_CONFIG).compile(
        circuit
    )
    params = noise.with_overrides(tilt_cooling_interval_moves=interval)
    simulator = TiltSimulator(device, params)
    # repro-lint: disable=RPR002 -- times the raw simulator under a cooling-interval override; compile is deliberately outside the measured lambda, which execute_spec cannot express
    result = benchmark(lambda: simulator.run(compiled))
    benchmark.extra_info["log10_success"] = result.log10_success_rate


def test_deep_lookahead_finds_more_opposing_swaps(scale):
    """The opposing-swap structure only becomes visible with deep lookahead."""
    circuit = build_workload(ABLATION_WORKLOAD, scale)
    device = experiments.device_for(scale, ABLATION_WORKLOAD)

    def ratio(lookahead: int) -> float:
        config = experiments.ROUTING_STUDY_CONFIG.with_overrides(
            lookahead_window=lookahead
        )
        return LinQCompiler(device, config).compile(circuit).stats.opposing_swap_ratio

    assert ratio(200) >= ratio(1)
