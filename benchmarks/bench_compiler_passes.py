"""Micro-benchmarks of the individual compiler passes and simulators.

These are pure performance benchmarks (no figure attached): they track the
cost of decomposition, routing, scheduling, and the two noisy simulators on
the QFT workload so performance regressions in the toolflow are caught.
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.arch.qccd import QccdDevice
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.compiler.pipeline import LinQCompiler
from repro.compiler.qccd_compiler import QccdCompiler
from repro.noise.parameters import NoiseParameters
from repro.sim.qccd_sim import QccdSimulator
from repro.sim.statevector import StatevectorSimulator
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.qft import qft_workload
from repro.workloads.suite import build_workload


def test_native_decomposition(benchmark, scale):
    circuit = build_workload("QFT", scale)
    native = benchmark(lambda: merge_adjacent_rotations(
        decompose_to_native(circuit)))
    assert native.num_two_qubit_gates() > 0


def test_tilt_simulation(benchmark, scale, noise):
    circuit = build_workload("QFT", scale)
    device = experiments.device_for(scale, "QFT")
    compiled = LinQCompiler(device).compile(circuit)
    simulator = TiltSimulator(device, noise)
    # repro-lint: disable=RPR002 -- micro-benchmark of the raw TILT simulator hot path; the engine's execute_spec would fold compile time and cache bookkeeping into the measurement
    result = benchmark(lambda: simulator.run(compiled))
    assert 0.0 <= result.success_rate <= 1.0


def test_qccd_compile_and_simulate(benchmark, scale, noise):
    circuit = build_workload("QFT", scale)
    capacity = 17 if scale == "paper" else 5
    device = QccdDevice(num_qubits=circuit.num_qubits, trap_capacity=capacity)
    program = QccdCompiler(device).compile(circuit)
    simulator = QccdSimulator(device, noise)
    # repro-lint: disable=RPR002 -- micro-benchmark of the raw QCCD simulator hot path, isolated from compile and engine overhead by design
    result = benchmark(lambda: simulator.run(program))
    assert result.num_moves > 0


def test_statevector_simulation(benchmark):
    """Exact simulation of a 12-qubit QFT (fixed size, scale-independent)."""
    circuit = qft_workload(12)
    simulator = StatevectorSimulator()
    # repro-lint: disable=RPR002 -- micro-benchmark of the raw statevector kernel (the ROADMAP vectorisation target); must time simulator.run alone
    state = benchmark(lambda: simulator.run(circuit))
    assert abs(abs(state[0]) ** 2 - 1 / 4096) < 1e-9


def test_noise_model_evaluation(benchmark):
    """Raw throughput of the Eq. 3/4 evaluation loop."""
    from repro.circuits.gate import Gate
    from repro.noise.fidelity import gate_fidelity

    params = NoiseParameters()
    gate = Gate("xx", (0, 5), (0.3,))

    def evaluate() -> float:
        total = 0.0
        for quanta in range(200):
            total += gate_fidelity(gate, float(quanta), params)
        return total

    total = benchmark(evaluate)
    assert total > 0
