"""Figure 7 — MaxSwapLen sweep.

Benchmarks one full compile+simulate per MaxSwapLen value for each routing
workload, and checks the paper's qualitative finding that the best setting
is at (or below) the maximum executable span — i.e. restricting the swap
length never has to be worse than the unrestricted router.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.report import figure7_report
from repro.exec import JobSpec, execute_spec
from repro.workloads.suite import build_workload, routing_suite

ROUTING_WORKLOADS = [spec.name for spec in routing_suite()]


@pytest.mark.parametrize("name", ROUTING_WORKLOADS)
def test_max_swap_len_sweep(benchmark, name, scale):
    """Time the compile job at the most restricted MaxSwapLen of the sweep."""
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    restricted = device.head_size // 2
    config = experiments.ROUTING_STUDY_CONFIG.with_overrides(
        max_swap_len=restricted
    )
    spec = JobSpec(circuit=circuit, device=device, config=config,
                   simulate=False)
    result = benchmark.pedantic(execute_spec, args=(spec,),
                                iterations=1, rounds=1)
    assert result.stats.max_swap_span <= restricted


def test_figure7_sweet_spot(scale):
    """The best MaxSwapLen is never the worst point of the sweep."""
    rows = experiments.figure7(scale)
    for name in ROUTING_WORKLOADS:
        workload_rows = [row for row in rows if row.workload == name]
        assert len(workload_rows) >= 2
        best = experiments.best_max_swap_len(rows, name)
        worst = min(workload_rows, key=lambda row: row.log10_success_rate)
        assert best.log10_success_rate >= worst.log10_success_rate
    print()
    print(figure7_report(scale))
