"""Figure 7 — MaxSwapLen sweep, driven by the ``repro.search`` subsystem.

Each routing workload's sweep is declared as a one-knob
:class:`~repro.search.SearchSpace` and walked by the exhaustive
:class:`~repro.search.GridStrategy`; the benchmark times the whole
search and pins that it reproduces the ad-hoc
:func:`repro.analysis.experiments.figure7` loop point for point, plus
the paper's qualitative finding that the best setting is at (or below)
the maximum executable span.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.report import figure7_report
from repro.core.sweep import default_max_swap_lengths
from repro.exec import ExecutionEngine
from repro.search import GridStrategy, SearchSpace, config_knob, run_search
from repro.workloads.suite import build_workload, routing_suite

ROUTING_WORKLOADS = [spec.name for spec in routing_suite()]


def _fig7_space(name: str, scale: str) -> SearchSpace:
    """The Figure 7 design space of one workload (same specs as the loop)."""
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    lengths = default_max_swap_lengths(device)
    return SearchSpace(
        circuit=circuit,
        device=device,
        knobs=[config_knob("max_swap_len", lengths)],
        config=experiments.ROUTING_STUDY_CONFIG,
    )


@pytest.mark.parametrize("name", ROUTING_WORKLOADS)
def test_max_swap_len_search(benchmark, name, scale):
    """Time the full sweep of one workload as a cold grid search."""
    space = _fig7_space(name, scale)

    def cold_search():
        return run_search(space, GridStrategy(),
                          engine=ExecutionEngine(workers=1))

    result = benchmark.pedantic(cold_search, iterations=1, rounds=1)
    rows = [row for row in experiments.figure7(scale) if row.workload == name]
    # the declarative search subsumes the ad-hoc loop: point for point
    assert [
        (int(point.assignments["max_swap_len"]), point.num_swaps,
         point.num_moves, point.log10_success)
        for point in result.points
    ] == [
        (row.max_swap_len, row.num_swaps, row.num_moves,
         row.log10_success_rate)
        for row in rows
    ]
    benchmark.extra_info["engine_jobs"] = result.num_jobs
    benchmark.extra_info["pareto_size"] = len(result.pareto_front())


def test_figure7_sweet_spot(scale):
    """The best MaxSwapLen is never the worst point of the sweep."""
    rows = experiments.figure7(scale)
    for name in ROUTING_WORKLOADS:
        workload_rows = [row for row in rows if row.workload == name]
        assert len(workload_rows) >= 2
        best = experiments.best_max_swap_len(rows, name)
        worst = min(workload_rows, key=lambda row: row.log10_success_rate)
        assert best.log10_success_rate >= worst.log10_success_rate
        # the search's scalar best attains the ad-hoc selection's success
        # (on an exact success tie the Pareto view may prefer the point
        # that is also cheaper, so compare the objective, not the knob)
        search_best = run_search(
            _fig7_space(name, scale), GridStrategy(),
            engine=ExecutionEngine(workers=1),
        ).best()
        assert search_best.log10_success == best.log10_success_rate
    print()
    print(figure7_report(scale))
