"""Observability-overhead benchmarks: tracing must stay near-free.

Two benchmarks run the *same* engine batch — a mixed analytic workload
executed serially so backend scheduling noise stays out of the
measurement — once untraced and once with a :class:`TraceRecorder`
writing to a temp file.  The regression gate tracks both as the
``obs_overhead`` group: a slowdown in either means instrumentation
leaked onto the hot path (untraced: the ``NULL_TRACE`` no-ops grew a
cost; traced: the per-record write amplification regressed).

Each round gets a fresh engine (and, for the traced case, a fresh trace
file) via ``benchmark.pedantic`` setup, so every measured pass is a cold
cache doing the full lookup → dispatch → flush work.
"""

from __future__ import annotations

import itertools
import os

from repro.analysis import experiments
from repro.core.sweep import max_swap_len_sweep
from repro.exec import ExecutionEngine
from repro.obs.trace import TraceRecorder
from repro.workloads.suite import build_workload, routing_suite

_TRACE_SEQ = itertools.count()


def _sweep_inputs(scale):
    name = routing_suite()[0].name
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    return circuit, device


def _run_batch(circuit, device, noise, engine):
    return max_swap_len_sweep(
        circuit, device,
        base_config=experiments.ROUTING_STUDY_CONFIG,
        noise_params=noise, engine=engine,
    )


def test_untraced_engine_batch(benchmark, scale, noise):
    """The tracing-off cost: NULL_TRACE spans must stay no-ops."""
    circuit, device = _sweep_inputs(scale)

    def setup():
        return (circuit, device, noise, ExecutionEngine(workers=1)), {}

    points = benchmark.pedantic(_run_batch, setup=setup,
                                iterations=1, rounds=5)
    assert points


def test_traced_engine_batch(benchmark, scale, noise, tmp_path):
    """The tracing-on cost: span/event JSONL appends per batch."""
    circuit, device = _sweep_inputs(scale)

    def setup():
        # a fresh file per round: recorders are shared per path, and an
        # append-only file growing across rounds would skew nothing but
        # still muddies the per-round record count below
        trace = TraceRecorder(
            tmp_path / f"bench-{next(_TRACE_SEQ)}.jsonl"
        )
        engine = ExecutionEngine(workers=1, trace=trace)
        return (circuit, device, noise, engine), {}

    points = benchmark.pedantic(_run_batch, setup=setup,
                                iterations=1, rounds=5)
    assert points
    traces = sorted(tmp_path.glob("bench-*.jsonl"))
    assert traces and os.path.getsize(traces[-1]) > 0
