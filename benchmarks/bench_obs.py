"""Observability-overhead benchmarks: instrumentation must stay cheap.

Four benchmarks run the *same* engine batch — a mixed analytic workload
executed serially so backend scheduling noise stays out of the
measurement — at increasing instrumentation levels: untraced, traced
(:class:`TraceRecorder` writing JSONL), traced with a live
:class:`~repro.obs.live.ProgressMonitor` attached (heartbeat file, no
stderr), and traced with per-job resource profiling on.  The regression
gate tracks all four as the ``obs_overhead`` group: a slowdown means
instrumentation leaked onto the hot path (untraced: the ``NULL_TRACE``
no-ops grew a cost; traced: write amplification; monitored: the
listener fan-out; profiled: the per-job rusage snapshots).

Each round gets a fresh engine (and fresh trace/heartbeat files) via
``benchmark.pedantic`` setup, so every measured pass is a cold cache
doing the full lookup → dispatch → flush work.
"""

from __future__ import annotations

import itertools
import json
import os

from repro.analysis import experiments
from repro.core.sweep import max_swap_len_sweep
from repro.exec import ExecutionEngine
from repro.obs import profile as obs_profile
from repro.obs.live import ProgressMonitor
from repro.obs.trace import TraceRecorder
from repro.workloads.suite import build_workload, routing_suite

_TRACE_SEQ = itertools.count()


def _sweep_inputs(scale):
    name = routing_suite()[0].name
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    return circuit, device


def _run_batch(circuit, device, noise, engine):
    return max_swap_len_sweep(
        circuit, device,
        base_config=experiments.ROUTING_STUDY_CONFIG,
        noise_params=noise, engine=engine,
    )


def test_untraced_engine_batch(benchmark, scale, noise):
    """The tracing-off cost: NULL_TRACE spans must stay no-ops."""
    circuit, device = _sweep_inputs(scale)

    def setup():
        return (circuit, device, noise, ExecutionEngine(workers=1)), {}

    points = benchmark.pedantic(_run_batch, setup=setup,
                                iterations=1, rounds=5)
    assert points


def test_traced_engine_batch(benchmark, scale, noise, tmp_path):
    """The tracing-on cost: span/event JSONL appends per batch."""
    circuit, device = _sweep_inputs(scale)

    def setup():
        # a fresh file per round: recorders are shared per path, and an
        # append-only file growing across rounds would skew nothing but
        # still muddies the per-round record count below
        trace = TraceRecorder(
            tmp_path / f"bench-{next(_TRACE_SEQ)}.jsonl"
        )
        engine = ExecutionEngine(workers=1, trace=trace)
        return (circuit, device, noise, engine), {}

    points = benchmark.pedantic(_run_batch, setup=setup,
                                iterations=1, rounds=5)
    assert points
    traces = sorted(tmp_path.glob("bench-*.jsonl"))
    assert traces and os.path.getsize(traces[-1]) > 0


def test_monitored_engine_batch(benchmark, scale, noise, tmp_path):
    """Tracing + a live ProgressMonitor: the listener fan-out cost."""
    circuit, device = _sweep_inputs(scale)

    def setup():
        seq = next(_TRACE_SEQ)
        trace = TraceRecorder(tmp_path / f"bench-mon-{seq}.jsonl")
        ProgressMonitor(
            trace, heartbeat_path=tmp_path / f"heartbeat-{seq}.jsonl",
        ).attach()
        engine = ExecutionEngine(workers=1, trace=trace)
        return (circuit, device, noise, engine), {}

    points = benchmark.pedantic(_run_batch, setup=setup,
                                iterations=1, rounds=5)
    assert points
    beats = sorted(tmp_path.glob("heartbeat-*.jsonl"))
    assert beats
    with open(beats[-1], "r", encoding="utf-8") as handle:
        last = json.loads(handle.readlines()[-1])
    assert last["kind"] == "heartbeat"
    assert last["completed"] == last["planned"]


def test_profiled_engine_batch(benchmark, scale, noise, tmp_path,
                               monkeypatch):
    """Tracing + per-job profiling: the rusage-snapshot cost."""
    circuit, device = _sweep_inputs(scale)
    monkeypatch.setenv(obs_profile.PROFILE_ENV_VAR, "1")
    obs_profile.refresh_mode()

    def setup():
        trace = TraceRecorder(
            tmp_path / f"bench-prof-{next(_TRACE_SEQ)}.jsonl"
        )
        engine = ExecutionEngine(workers=1, trace=trace)
        return (circuit, device, noise, engine), {}

    try:
        points = benchmark.pedantic(_run_batch, setup=setup,
                                    iterations=1, rounds=5)
    finally:
        monkeypatch.delenv(obs_profile.PROFILE_ENV_VAR, raising=False)
        obs_profile.refresh_mode()
    assert points
