"""Figure 8 — architecture comparison (TILT vs Ideal TI vs QCCD).

Benchmarks the full compare-architectures pipeline per workload and checks
the paper's qualitative conclusions:

* ADDER and BV perform comparably on TILT and QCCD;
* QAOA and RCS (short-distance heavy) favour TILT;
* QFT (long-distance heavy) favours QCCD;
* the ideal fully connected device upper-bounds every TILT configuration;
* a 32-wide head is at least as good as a 16-wide head.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.report import figure8_report
from repro.workloads.suite import standard_suite

WORKLOADS = [spec.name for spec in standard_suite()]


@pytest.mark.parametrize("name", WORKLOADS)
def test_architecture_comparison(benchmark, name, scale, noise):
    """Time the four-architecture comparison for one workload."""
    def run():
        return experiments.figure8(scale, workloads=(name,),
                                   noise_params=noise)[0]

    comparison = benchmark.pedantic(run, iterations=1, rounds=1)
    for architecture, result in comparison.results.items():
        benchmark.extra_info[architecture] = result.log10_success_rate
    assert set(comparison.results) >= {"Ideal TI", "QCCD"}


def test_figure8_shape(scale, noise):
    """Qualitative Figure 8 conclusions hold at the active scale."""
    comparisons = {c.circuit_name: c
                   for c in experiments.figure8(scale, noise_params=noise)}

    def tilt_labels(comparison):
        labels = sorted(
            (name for name in comparison.architectures()
             if name.startswith("TILT")),
            key=lambda name: int(name.rsplit(" ", 1)[-1]),
        )
        return labels[0], labels[-1]

    for name, comparison in comparisons.items():
        small_head, large_head = tilt_labels(comparison)
        # Ideal TI upper-bounds TILT; a larger head never hurts.
        assert (comparison.log10_success_rate("Ideal TI") + 1e-9
                >= comparison.log10_success_rate(large_head))
        assert (comparison.log10_success_rate(large_head) + 1e-9
                >= comparison.log10_success_rate(small_head))

    if scale == "paper":
        ratios = experiments.headline_ratios(list(comparisons.values()))
        # TILT ~ QCCD on ADDER/BV, ahead on QAOA/RCS, behind on QFT.
        assert 0.5 <= ratios["ADDER"] <= 2.0
        assert 0.5 <= ratios["BV"] <= 2.0
        assert ratios["QAOA"] > 1.0
        assert ratios["RCS"] > 1.0
        assert ratios["QFT"] < 1.0
        assert ratios["max"] > 1.2
    print()
    print(figure8_report(scale))
