"""Benchmark of the invariant linter itself.

The lint step is blocking in CI, so its wall time is a developer-facing
hot path: track whole-repo lint time (parse + tokenize + all five rules
over ``src``/``tests``/``benchmarks``/``examples``) in the regression
gate so a rule that goes accidentally quadratic fails the build instead
of quietly taxing every PR.
"""

from __future__ import annotations

import os

from repro.devtools import run_lint

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_LINT_PATHS = tuple(
    os.path.join(_REPO_ROOT, part)
    for part in ("src", "tests", "benchmarks", "examples")
)


def test_lint_whole_repo(benchmark):
    report = benchmark(lambda: run_lint(_LINT_PATHS))
    # the benchmark doubles as an acceptance check: a dirty tree here
    # means the blocking CI lint step is about to fail too
    assert report.active == [], [v.format() for v in report.active]
    assert report.files_scanned > 100


def test_lint_single_rule_overhead(benchmark):
    """Per-rule cost on the hottest scoped rule (determinism scans
    every call node of every file)."""
    report = benchmark(
        lambda: run_lint(_LINT_PATHS, select=["RPR001"])
    )
    assert report.active == []
