"""Benchmark of the invariant linter itself.

The lint step is blocking in CI, so its wall time is a developer-facing
hot path: track whole-repo lint time (parse + tokenize + all five
per-file rules over ``src``/``tests``/``benchmarks``/``examples``) in
the regression gate so a rule that goes accidentally quadratic fails
the build instead of quietly taxing every PR.  The ``--graph`` run is
tracked as its own group (``lint_graph``): whole-program analysis
(import graph + call graph + worker-reachable set + RPR006-RPR009) is
the expensive half, and its natural failure mode — resolution work
growing superlinearly in project size — deserves a dedicated gate.
"""

from __future__ import annotations

import os

from repro.devtools import run_lint

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_LINT_PATHS = tuple(
    os.path.join(_REPO_ROOT, part)
    for part in ("src", "tests", "benchmarks", "examples")
)


def test_lint_whole_repo(benchmark):
    report = benchmark(lambda: run_lint(_LINT_PATHS))
    # the benchmark doubles as an acceptance check: a dirty tree here
    # means the blocking CI lint step is about to fail too
    assert report.active == [], [v.format() for v in report.active]
    assert report.files_scanned > 100


def test_lint_whole_repo_graph(benchmark):
    """Full lint plus the whole-program pass — what CI actually runs."""
    report = benchmark(lambda: run_lint(_LINT_PATHS, graph=True))
    assert report.active == [], [v.format() for v in report.active]
    assert report.graph is not None
    # the worker-reachable set is the product the graph rules consume;
    # an empty one here means the analysis silently broke
    assert "repro.exec.backends.execute_spec" in report.graph.worker_reachable


def test_lint_single_rule_overhead(benchmark):
    """Per-rule cost on the hottest scoped rule (determinism scans
    every call node of every file)."""
    report = benchmark(
        lambda: run_lint(_LINT_PATHS, select=["RPR001"])
    )
    assert report.active == []
