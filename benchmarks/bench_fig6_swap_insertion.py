"""Figure 6 — LinQ vs baseline swap insertion.

For each long-distance workload (BV, QFT, SQRT) and each router, benchmarks
the full compile (mapping + swap insertion + scheduling) and checks the
paper's qualitative findings: the LinQ router inserts no more swaps than the
baseline, raises the opposing-swap ratio, needs no more tape moves, and ends
up with at least the baseline's success rate.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.report import figure6_report
from repro.exec import JobSpec, execute_spec
from repro.workloads.suite import build_workload, routing_suite

ROUTING_WORKLOADS = [spec.name for spec in routing_suite()]


@pytest.mark.parametrize("router", ["baseline", "linq"])
@pytest.mark.parametrize("name", ROUTING_WORKLOADS)
def test_swap_insertion(benchmark, name, router, scale, noise):
    """One engine job (compile + simulate) per routing workload and router."""
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    config = experiments.ROUTING_STUDY_CONFIG.with_overrides(router=router)
    spec = JobSpec(circuit=circuit, device=device, config=config, noise=noise)

    result = benchmark.pedantic(execute_spec, args=(spec,),
                                iterations=1, rounds=1)
    benchmark.extra_info["num_swaps"] = result.stats.num_swaps
    benchmark.extra_info["opposing_ratio"] = result.stats.opposing_swap_ratio
    benchmark.extra_info["num_moves"] = result.stats.num_moves
    benchmark.extra_info["log10_success"] = result.simulation.log10_success_rate
    assert result.stats.num_swaps > 0 or name == "BV"


def test_figure6_shape(scale):
    """LinQ beats (or ties) the baseline on every Figure 6 metric."""
    rows = {(row.workload, row.router): row
            for row in experiments.figure6(scale)}
    for name in ("QFT", "SQRT"):
        linq = rows[(name, "linq")]
        baseline = rows[(name, "baseline")]
        assert linq.num_swaps <= baseline.num_swaps
        assert linq.opposing_swap_ratio >= baseline.opposing_swap_ratio
        assert linq.num_moves <= baseline.num_moves
        assert linq.log10_success_rate >= baseline.log10_success_rate
    print()
    print(figure6_report(scale))
