"""Table II — benchmark characteristics.

Regenerates the workload suite and its two-qubit gate counts, benchmarking
the circuit-generation + decomposition cost of each Table II application.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import table2_report
from repro.compiler.decompose import decompose_to_cx
from repro.workloads import suite

WORKLOADS = [spec.name for spec in suite.standard_suite()]


@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_generation(benchmark, name, scale):
    """Time to build one Table II workload and count its CX-level gates."""
    width = suite.suite_qubits(name, scale)
    spec = suite.benchmark(name)

    def build_and_count() -> int:
        return decompose_to_cx(spec.build(width)).num_two_qubit_gates()

    count = benchmark(build_and_count)
    assert count > 0


def test_table2_rows_match_paper_shape(scale):
    """The measured counts track Table II (exact for QFT/RCS/QAOA)."""
    rows = {row["application"]: row for row in suite.table2_rows(scale)}
    assert set(rows) == set(WORKLOADS)
    if scale == "paper":
        assert rows["QFT"]["two_qubit_gates"] == 4032
        assert rows["RCS"]["two_qubit_gates"] == 560
        assert rows["QAOA"]["two_qubit_gates"] == 1260
    print()
    print(table2_report(scale))
