"""Correlated-noise scenario benchmarks.

Tracks the cost of the scenario machinery on top of the PR-1/PR-2 stack:
the analytic scenario-comparison study (site expansion + the exact burst
dynamic program for every workload × scenario cell), the throughput of
correlated-noise stochastic sampling, and the acceptance behaviour that
baseline scenario keys leave the content-hash cache untouched.
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.analysis.scenario_study import (
    DEFAULT_SCENARIOS,
    attribution_rows,
    scenario_comparison,
)
from repro.compiler.pipeline import CompilerConfig
from repro.exec import ExecutionEngine, JobSpec, run_sampled_job, spec_key
from repro.workloads.suite import build_workload

#: Enough shots that correlated sampling (not compilation) dominates.
BENCH_SHOTS = 5_000


def _spec(scale, noise, scenario=None, shots=0) -> JobSpec:
    """Build a QFT spec; ``scenario=None`` omits the field entirely."""
    name = "QFT"
    kwargs = dict(
        circuit=build_workload(name, scale),
        device=experiments.device_for(scale, name),
        config=CompilerConfig(),
        noise=noise,
        shots=shots,
        seed=2021 if shots else 0,
        label=f"{name}/{scenario or 'default'}",
    )
    if scenario is not None:
        kwargs["scenario"] = scenario
    return JobSpec(**kwargs)


def test_scenario_study_smoke(benchmark, scale, noise):
    """The full analytic comparison study (the CI smoke metric)."""
    rows = benchmark.pedantic(
        scenario_comparison, args=(scale,),
        kwargs={"noise_params": noise, "engine": ExecutionEngine(workers=1)},
        iterations=1, rounds=1,
    )
    scenarios = {row.scenario for row in rows}
    workloads = {row.workload for row in rows}
    assert scenarios == set(DEFAULT_SCENARIOS)
    assert len(workloads) >= 3
    attribution = attribution_rows(rows)
    combined = [row for row in attribution if "combined" in row.mechanism]
    benchmark.extra_info["cells"] = len(rows)
    benchmark.extra_info["max_combined_loss_decades"] = max(
        row.loss_decades for row in combined
    )


def test_correlated_sampling_shots_per_second(benchmark, scale, noise):
    """Throughput of worst-case correlated sampling (BENCH_* trajectory)."""
    spec = _spec(scale, noise, "worst_case", shots=BENCH_SHOTS)
    result = benchmark.pedantic(
        run_sampled_job, args=(spec,),
        kwargs={"shards": 1, "engine": ExecutionEngine(workers=1)},
        iterations=1, rounds=1,
    )
    assert result.shot is not None and result.shot.shots == BENCH_SHOTS
    assert result.shot.mechanism_counts
    benchmark.extra_info["shots"] = BENCH_SHOTS
    benchmark.extra_info["shots_per_second"] = round(
        BENCH_SHOTS / benchmark.stats.stats.mean
    )
    benchmark.extra_info["sampled_success"] = result.shot.success_rate
    benchmark.extra_info["analytic_success"] = (
        result.shot.expected_success_rate
    )


def test_baseline_scenario_preserves_cache_keys(scale, noise):
    """Baseline scenario specs hash identically to pre-scenario specs."""
    import dataclasses

    explicit = _spec(scale, noise, "baseline")
    # a spec that never mentions scenarios shares the baseline key
    assert spec_key(explicit) == spec_key(_spec(scale, noise))
    assert spec_key(explicit) != spec_key(
        dataclasses.replace(explicit, scenario="worst_case")
    )
    # a warm cache serves the baseline job regardless of how the spec
    # spells its scenario
    engine = ExecutionEngine(workers=1)
    engine.run_one(explicit)
    engine.stats.reset()
    again = engine.run_one(_spec(scale, noise, "baseline"))
    assert again.cache_hit
    assert engine.stats.jobs_executed == 0
