"""Execution-engine benchmarks: caching, deduplication and pooled fan-out.

Tracks the acceptance behaviour of :mod:`repro.exec`: a repeated
MaxSwapLen sweep must be served from the compile/simulate cache, and a
pooled sweep must produce exactly the points of the serial sweep.  The
wall-clock benefit of ``workers=4`` is only measurable on a multi-core
machine, so the speed assertion is informational (recorded in
``extra_info``) rather than enforced.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import experiments
from repro.core.sweep import max_swap_len_sweep
from repro.exec import ExecutionEngine
from repro.workloads.suite import build_workload, routing_suite

ROUTING_WORKLOADS = [spec.name for spec in routing_suite()]


@pytest.mark.parametrize("name", ROUTING_WORKLOADS)
def test_sweep_cache_hit_rate(benchmark, name, scale, noise):
    """A repeated sweep is free: every point is a cache hit.

    ``engine.stats.reset()`` between the cold and warm passes makes each
    phase report its own cache-hit/dedup counters (recorded in
    ``extra_info`` and asserted per phase) instead of cumulative totals.
    """
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    engine = ExecutionEngine(workers=1)
    cold = max_swap_len_sweep(
        circuit, device,
        base_config=experiments.ROUTING_STUDY_CONFIG, noise_params=noise,
        engine=engine,
    )
    cold_stats = engine.stats.summary()
    assert engine.stats.cache_hits == 0
    assert engine.stats.jobs_executed == len(cold)
    engine.stats.reset()

    warm = benchmark.pedantic(
        max_swap_len_sweep, args=(circuit, device),
        kwargs={"base_config": experiments.ROUTING_STUDY_CONFIG,
                "noise_params": noise, "engine": engine},
        iterations=1, rounds=1,
    )
    assert warm == cold
    assert engine.stats.cache_hits == len(cold)
    assert engine.stats.jobs_executed == 0
    benchmark.extra_info["engine_cold"] = cold_stats
    benchmark.extra_info["engine_warm"] = engine.stats.summary()


def test_pooled_sweep_matches_serial(scale, noise):
    """workers=4 produces bit-identical sweep points to workers=1."""
    name = ROUTING_WORKLOADS[0]
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    serial = max_swap_len_sweep(
        circuit, device,
        base_config=experiments.ROUTING_STUDY_CONFIG, noise_params=noise,
        engine=ExecutionEngine(workers=1),
    )
    pooled = max_swap_len_sweep(
        circuit, device,
        base_config=experiments.ROUTING_STUDY_CONFIG, noise_params=noise,
        engine=ExecutionEngine(workers=4),
    )
    assert pooled == serial


def test_backend_sweep_invariance(scale, noise):
    """Every execution backend produces the serial sweep bit for bit."""
    name = ROUTING_WORKLOADS[0]
    circuit = build_workload(name, scale)
    device = experiments.device_for(scale, name)
    sweeps = {
        backend: max_swap_len_sweep(
            circuit, device,
            base_config=experiments.ROUTING_STUDY_CONFIG, noise_params=noise,
            engine=ExecutionEngine(workers=2, backend=backend),
        )
        for backend in ("serial", "process", "async")
    }
    assert sweeps["process"] == sweeps["serial"]
    assert sweeps["async"] == sweeps["serial"]


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="pool speedup needs at least 4 cores")
def test_pooled_sweep_speedup(scale, noise):
    """On a 4-core machine the pooled figure-7 sweep beats serial by >=3x.

    Kept out of CI boxes with fewer cores; this is the acceptance check
    from the engine design note.
    """
    import time

    def run(workers: int) -> float:
        engine = ExecutionEngine(workers=workers)
        start = time.perf_counter()
        experiments.figure7(scale, noise_params=noise, engine=engine)
        return time.perf_counter() - start

    serial_s = run(1)
    pooled_s = run(4)
    assert pooled_s * 3.0 <= serial_s, (serial_s, pooled_s)
