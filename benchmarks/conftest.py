"""Shared fixtures for the benchmark harness.

Every benchmark honours the ``TILT_REPRO_SCALE`` environment variable:

* unset / ``small`` — reduced-width workloads (default, finishes in seconds);
* ``paper``        — the exact 64/78-qubit configurations of the paper,
  used to produce the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.noise.parameters import NoiseParameters


@pytest.fixture(scope="session")
def scale() -> str:
    """The active experiment scale ('small' or 'paper')."""
    return experiments.resolve_scale()


@pytest.fixture(scope="session")
def noise() -> NoiseParameters:
    """The calibration used for every figure in EXPERIMENTS.md."""
    return NoiseParameters.paper_defaults()


def pytest_report_header(config):  # noqa: D103 - pytest hook
    return f"TILT reproduction benchmarks, scale={experiments.resolve_scale()}"
