#!/usr/bin/env python
"""CI benchmark-regression gate.

Compares the medians in a pytest-benchmark JSON file (``bench-small.json``,
produced by the CI harness) against the committed
``benchmarks/baseline.json`` and **fails** (exit code 1) when a tracked
hot path slowed down by more than the threshold (default: >25%).  The
tracked hot paths are the ones the ROADMAP's perf work landed on:

* ``schedule``          — the pruned TapeScheduler per-segment scan
  (``bench_table3_compilation.py::test_tape_scheduling_time``);
* ``engine_cache``      — engine cold/warm cache behaviour
  (``bench_engine.py::test_sweep_cache_hit_rate``, whose benchmarked
  phase is the warm, all-cache-hits sweep);
* ``stochastic_shots``  — Monte-Carlo sampling throughput
  (``bench_stochastic.py::test_serial_shots_per_second``, sampling-only
  through the vectorized shot kernels, and the correlated-scenario
  variant in ``bench_scenarios.py``);
* ``statevector_batch`` — the batched pattern re-simulation kernel
  (``bench_stochastic.py::test_batched_statevector_patterns``);
* ``obs_overhead``      — the engine batch with tracing off, on, with a
  live progress monitor attached, and with per-job profiling on
  (``bench_obs.py``): instrumentation must stay near-free when off and
  cheap at every opt-in level;
* ``lint`` / ``lint_graph`` — the blocking CI lint step, per-file and
  with the whole-program ``--graph`` pass
  (``bench_lint.py::test_lint_whole_repo`` /
  ``::test_lint_whole_repo_graph``): graph construction must not grow
  superlinearly in project size.

CI machines are not the machine the baseline was recorded on, so raw
medians are not comparable run to run.  The gate therefore normalises:
the per-benchmark ratio ``current / baseline`` is divided by the *median
ratio across every benchmark shared by both files* — an estimate of how
much slower/faster this machine is overall.  A uniformly slow runner
moves every ratio together and passes; a regression in one hot path
sticks out against the fleet and fails.  ``--no-normalize`` compares raw
medians for same-machine A/B runs.

Intentional re-baselining (an accepted trade-off, a new benchmark set):

    PYTHONPATH=src python -m pytest -q benchmarks/bench_*.py \
        --benchmark-json=bench-small.json
    python benchmarks/check_regression.py bench-small.json --update-baseline

then commit the regenerated ``benchmarks/baseline.json`` and say why in
the PR.  A tracked benchmark that disappears from the current run (e.g.
renamed) also fails the gate, so tracking cannot rot silently.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import statistics
import sys

#: (group, fullname regex) — the gated hot paths.
TRACKED_PATTERNS: tuple[tuple[str, str], ...] = (
    ("schedule",
     r"bench_table3_compilation\.py::test_tape_scheduling_time"),
    ("engine_cache",
     r"bench_engine\.py::test_sweep_cache_hit_rate"),
    ("stochastic_shots",
     r"bench_stochastic\.py::test_serial_shots_per_second"),
    ("stochastic_shots",
     r"bench_scenarios\.py::test_correlated_sampling_shots_per_second"),
    ("statevector_batch",
     r"bench_stochastic\.py::test_batched_statevector_patterns"),
    ("lint",
     r"bench_lint\.py::test_lint_whole_repo$"),
    ("lint_graph",
     r"bench_lint\.py::test_lint_whole_repo_graph"),
    ("obs_overhead",
     r"bench_obs\.py::test_untraced_engine_batch"),
    ("obs_overhead",
     r"bench_obs\.py::test_traced_engine_batch"),
    ("obs_overhead",
     r"bench_obs\.py::test_monitored_engine_batch"),
    ("obs_overhead",
     r"bench_obs\.py::test_profiled_engine_batch"),
)

#: Fail when a tracked (normalised) slowdown exceeds this factor.
DEFAULT_THRESHOLD = 1.25

#: Layout marker of baseline.json.
BASELINE_VERSION = 1

_HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(_HERE, "baseline.json")


def load_medians(path: str) -> dict[str, float]:
    """``fullname -> median seconds`` from a pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    medians: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        median = bench.get("stats", {}).get("median")
        name = bench.get("fullname") or bench.get("name")
        if name and median:
            medians[name] = float(median)
    return medians


def _baseline_payload(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise SystemExit(
            f"{path}: unsupported baseline version "
            f"{payload.get('version')!r} (expected {BASELINE_VERSION}); "
            "re-baseline with --update-baseline"
        )
    return payload


def load_baseline(path: str) -> dict[str, float]:
    return {name: float(median)
            for name, median in _baseline_payload(path).get(
                "medians", {}).items()}


def baseline_threshold(path: str) -> float:
    """The failure factor recorded in the baseline (editable in-place)."""
    return float(_baseline_payload(path).get("threshold",
                                             DEFAULT_THRESHOLD))


def tracked_group(fullname: str) -> str | None:
    """The hot-path group a benchmark belongs to, or ``None``."""
    for group, pattern in TRACKED_PATTERNS:
        if re.search(pattern, fullname):
            return group
    return None


def write_baseline(medians: dict[str, float], path: str, source: str,
                   threshold: float = DEFAULT_THRESHOLD) -> None:
    """Record *medians* as the new committed baseline.

    Every benchmark's median is stored (not just the tracked ones) so
    the machine-speed normaliser has a wide sample and newly tracked
    paths gate without a re-baseline.  The recording interpreter's
    version is stored too: the CI gate is pinned to the baseline's
    Python (interpreter speedups are not uniform across code paths), so
    a re-baseline under a different version must be visible.
    """
    payload = {
        "version": BASELINE_VERSION,
        "source": os.path.basename(source),
        "python": platform.python_version(),
        "threshold": threshold,
        "tracked_groups": sorted({g for g, _ in TRACKED_PATTERNS}),
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check(current: dict[str, float], baseline: dict[str, float], *,
          threshold: float = DEFAULT_THRESHOLD,
          normalize: bool = True) -> tuple[bool, list[str]]:
    """Gate *current* against *baseline*; returns (ok, report lines)."""
    lines: list[str] = []
    shared = sorted(set(current) & set(baseline))
    if not shared:
        return False, ["no benchmarks shared with the baseline — "
                       "re-baseline with --update-baseline"]
    ratios = {name: current[name] / baseline[name] for name in shared
              if baseline[name] > 0}
    scale = statistics.median(ratios.values()) if normalize else 1.0
    lines.append(
        f"{len(shared)} shared benchmarks; machine-speed normaliser "
        f"{scale:.3f} ({'median current/baseline ratio' if normalize else 'disabled'})"
    )
    ok = True
    seen_groups: set[str] = set()
    for name in shared:
        group = tracked_group(name)
        if group is None or name not in ratios:
            continue
        seen_groups.add(group)
        normalised = ratios[name] / scale
        verdict = "ok"
        if normalised > threshold:
            verdict = "REGRESSION"
            ok = False
        lines.append(
            f"  [{group:>16}] {verdict:>10}  x{normalised:.2f} "
            f"(raw x{ratios[name]:.2f}, median {current[name]:.6f}s vs "
            f"baseline {baseline[name]:.6f}s)  {name}"
        )
    # A tracked baseline entry missing from the current run means the
    # benchmark was renamed or dropped: the gate would rot silently.
    for name in sorted(set(baseline) - set(current)):
        if tracked_group(name) is not None:
            ok = False
            lines.append(
                f"  [{tracked_group(name):>16}]    MISSING  tracked "
                f"baseline benchmark not in current run: {name} — "
                "re-baseline if the rename was intentional"
            )
    expected_groups = {g for g, _ in TRACKED_PATTERNS}
    for group in sorted(expected_groups - seen_groups):
        ok = False
        lines.append(
            f"  [{group:>16}]      EMPTY  no current benchmark matched "
            "this tracked hot path"
        )
    lines.append(
        f"gate {'PASSED' if ok else 'FAILED'} "
        f"(threshold: >{(threshold - 1) * 100:.0f}% normalised slowdown)"
    )
    return ok, lines


def _tracked_ratios(current: dict[str, float], baseline: dict[str, float],
                    *, normalize: bool = True) -> dict[str, float]:
    """Machine-normalised ``tracked fullname -> ratio`` (mirrors check)."""
    shared = sorted(set(current) & set(baseline))
    ratios = {name: current[name] / baseline[name] for name in shared
              if baseline[name] > 0}
    if not ratios:
        return {}
    scale = statistics.median(ratios.values()) if normalize else 1.0
    return {name: ratios[name] / scale for name in ratios
            if tracked_group(name) is not None}


def append_history(ledger_path: str, *, bench_json: str,
                   current: dict[str, float], baseline: dict[str, float],
                   ok: bool, threshold: float, normalize: bool) -> str:
    """Append this gate run as one ``bench.gate`` run-ledger record.

    CI calls this script without ``PYTHONPATH=src``, so the repo's
    ``src`` tree is bootstrapped onto ``sys.path`` here before the
    :mod:`repro.obs.history` import.  Machine-normalised ratios (not
    raw medians) are recorded: they are the one number comparable
    across the heterogeneous CI fleet, so the ledger's trend tables
    and ``--check`` gate stay meaningful run over run.
    """
    src = os.path.join(os.path.dirname(_HERE), "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.history import RunLedger, new_record

    normalised = _tracked_ratios(current, baseline, normalize=normalize)
    groups: dict[str, list[float]] = {}
    for name, ratio in normalised.items():
        groups.setdefault(tracked_group(name), []).append(ratio)
    record = new_record(
        "bench.gate",
        label=os.path.basename(bench_json),
        metrics={f"normalised.{group}": max(ratios)
                 for group, ratios in sorted(groups.items())},
        extra={"ok": 1 if ok else 0, "threshold": threshold,
               "normalize": 1 if normalize else 0,
               "shared": len(set(current) & set(baseline)),
               "python": platform.python_version()},
    )
    ledger = RunLedger(ledger_path)
    record_id = ledger.append(record)
    # one writer per gate run: fold the sidecar segment straight into
    # the main file so the CI artifact is a single JSONL
    ledger.compact()
    return record_id


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("bench_json",
                        help="pytest-benchmark JSON of the current run")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="failure factor (default: the baseline's "
                             f"recorded threshold, or {DEFAULT_THRESHOLD} "
                             "= +25%% when it records none)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw medians (same-machine A/B only)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from bench_json and exit")
    parser.add_argument("--append-history", metavar="LEDGER",
                        help="append this gate run (normalised tracked "
                             "ratios + verdict) to a repro.obs.history "
                             "run ledger")
    args = parser.parse_args(argv)

    current = load_medians(args.bench_json)
    if args.update_baseline:
        # a hand-tuned threshold in the existing baseline survives a
        # routine re-baseline; --threshold overrides it explicitly
        threshold = args.threshold
        if threshold is None and os.path.exists(args.baseline):
            threshold = baseline_threshold(args.baseline)
        write_baseline(current, args.baseline, source=args.bench_json,
                       threshold=(threshold if threshold is not None
                                  else DEFAULT_THRESHOLD))
        print(f"baseline rewritten: {args.baseline} "
              f"({len(current)} benchmark medians, "
              f"python {platform.python_version()})")
        return 0
    baseline = load_baseline(args.baseline)
    baseline_python = _baseline_payload(args.baseline).get("python")
    threshold = (args.threshold if args.threshold is not None
                 else baseline_threshold(args.baseline))
    ok, lines = check(current, baseline, threshold=threshold,
                      normalize=not args.no_normalize)
    # compare feature versions only — patch releases don't move perf,
    # and CI pins by major.minor
    def _feature(version: str) -> str:
        return ".".join(version.split(".")[:2])

    if (baseline_python
            and _feature(baseline_python)
            != _feature(platform.python_version())):
        lines.insert(0, (
            f"WARNING: baseline was recorded under python "
            f"{baseline_python}, this run is "
            f"{platform.python_version()} — interpreter speedups are "
            "not uniform, so ratios may reflect the interpreter, not "
            "the code; re-baseline on the gating version"
        ))
    print("\n".join(lines))
    if args.append_history:
        record_id = append_history(
            args.append_history, bench_json=args.bench_json,
            current=current, baseline=baseline, ok=ok,
            threshold=threshold, normalize=not args.no_normalize,
        )
        print(f"gate run appended to {args.append_history} "
              f"(record {record_id})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
