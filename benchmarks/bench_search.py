"""Design-space search benchmarks (``repro.search``).

Tracks the cost of the search subsystem itself: a cold analytic grid
over the MaxSwapLen x scenario study space, and the successive-halving
early-stopping run on the sampled space — including the headline
acceptance behaviour that halving issues measurably fewer engine jobs
than the exhaustive grid while agreeing on the best configuration.
"""

from __future__ import annotations

from repro.analysis.search_study import study_space
from repro.exec import ExecutionEngine
from repro.search import GridStrategy, SuccessiveHalvingStrategy, run_search

#: Full-fidelity budget of the sampled strategy comparison.
BENCH_SHOTS = 2_000


def test_grid_search_analytic(benchmark, scale):
    """Cold exhaustive grid over the analytic study space."""
    space = study_space(scale, shots=0)

    def cold_grid():
        return run_search(space, GridStrategy(),
                          engine=ExecutionEngine(workers=1))

    result = benchmark.pedantic(cold_grid, iterations=1, rounds=1)
    assert len(result.points) == len(space.valid_candidates())
    benchmark.extra_info["engine_jobs"] = result.num_jobs
    benchmark.extra_info["pareto_size"] = len(result.pareto_front())
    benchmark.extra_info["best"] = dict(result.best().assignments)


def test_successive_halving_prunes_jobs(benchmark, scale):
    """Halving vs grid on the sampled space: fewer jobs, same winner.

    Uses BV, whose success rate stays measurable with a few thousand
    shots even at paper scale (deep QFT-64 would sample zero successes
    and tie every candidate at ``-inf``).
    """
    space = study_space(scale, workload="BV", shots=BENCH_SHOTS)
    grid = run_search(space, GridStrategy(),
                      engine=ExecutionEngine(workers=1))

    def cold_halving():
        return run_search(space, SuccessiveHalvingStrategy(),
                          engine=ExecutionEngine(workers=1))

    halving = benchmark.pedantic(cold_halving, iterations=1, rounds=1)
    assert halving.num_jobs < grid.num_jobs
    assert halving.best().assignments == grid.best().assignments
    benchmark.extra_info["grid_jobs"] = grid.num_jobs
    benchmark.extra_info["halving_jobs"] = halving.num_jobs
    benchmark.extra_info["job_savings"] = (
        1.0 - halving.num_jobs / grid.num_jobs
    )
    benchmark.extra_info["best"] = dict(halving.best().assignments)
