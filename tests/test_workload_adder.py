"""Tests for the Cuccaro adder workload."""

import pytest

from repro.exceptions import CircuitError
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.adder import adder_workload, cuccaro_adder


def read_sum(n_bits: int, a: int, b: int) -> int:
    """Run the adder on classical inputs and decode b + carry-out."""
    circuit = cuccaro_adder(n_bits, a_value=a, b_value=b)
    outcome = StatevectorSimulator().most_probable(circuit)
    # Qubit 0 is the leftmost character; b_i lives at qubit 2i+1 and the
    # outgoing carry at the last qubit.
    bits = outcome
    total = 0
    for i in range(n_bits):
        if bits[2 * i + 1] == "1":
            total |= 1 << i
    if bits[2 * n_bits + 1] == "1":
        total |= 1 << n_bits
    return total


class TestCorrectness:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 0), (0, 1), (1, 1), (2, 3),
                                     (3, 3), (5, 6), (7, 7)])
    def test_three_bit_sums(self, a, b):
        assert read_sum(3, a, b) == a + b

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 1)])
    def test_two_bit_sums(self, a, b):
        assert read_sum(2, a, b) == a + b

    def test_a_register_restored(self):
        # The Cuccaro adder leaves register a unchanged.
        circuit = cuccaro_adder(3, a_value=5, b_value=2)
        outcome = StatevectorSimulator().most_probable(circuit)
        a_bits = sum(1 << i for i in range(3) if outcome[2 * i + 2] == "1")
        assert a_bits == 5


class TestStructure:
    def test_qubit_count(self):
        assert cuccaro_adder(31).num_qubits == 64
        assert adder_workload(64).num_qubits == 64

    def test_gate_mix(self):
        ops = cuccaro_adder(4, with_input_prep=False).count_ops()
        assert set(ops) <= {"cx", "ccx"}
        assert ops["ccx"] == 2 * 4

    def test_short_distance_structure(self):
        # With the interleaved layout every interaction spans at most 3 ions.
        circuit = cuccaro_adder(8, with_input_prep=False)
        assert max(g.span for g in circuit if g.num_qubits > 1) <= 3

    def test_workload_padding(self):
        circuit = adder_workload(65)
        assert circuit.num_qubits == 65

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            cuccaro_adder(0)
        with pytest.raises(CircuitError):
            cuccaro_adder(2, a_value=4)
        with pytest.raises(CircuitError):
            adder_workload(3)
